"""A guarded document-centric editing session (the xTagger scenario).

Start from bare text under the root, add markup step by step; the session
guarantees each accepted operation leaves the document completable into a
valid one, and rejects operations that would paint the editor into a
corner.  This is the workflow the paper builds its algorithms for.

Run:  python examples/editor_session.py
"""

from repro import DTDValidator, EditRejected, parse_dtd, parse_xml, to_xml
from repro.editor import EditingSession, InsertMarkup

POEM_DTD = """
<!ELEMENT poem   (title?, stanza+)>
<!ELEMENT title  (#PCDATA)>
<!ELEMENT stanza (line+)>
<!ELEMENT line   (#PCDATA | emph)*>
<!ELEMENT emph   (#PCDATA)>
"""


def show(step: str, session: EditingSession) -> None:
    print(f"{step}:")
    print(f"  {to_xml(session.document)}")
    print(f"  potentially valid: {session.is_potentially_valid()}\n")


def main() -> None:
    dtd = parse_dtd(POEM_DTD)
    # The editor's starting point: raw text inside the root element.
    document = parse_xml(
        "<poem>The quick brown fox jumps over the lazy dog</poem>"
    )
    session = EditingSession(dtd, document)
    show("start (bare text)", session)

    # Wrap the whole text in a line, the line in a stanza.
    session.apply(InsertMarkup(parent=(), start=0, end=1, name="line"))
    show("after wrapping text in <line>", session)

    session.apply(InsertMarkup(parent=(), start=0, end=1, name="stanza"))
    show("after wrapping in <stanza>", session)

    # Mark "quick brown fox" (characters inside the line) — first split is
    # structural: wrap part of the line's text in <emph>.  The editor would
    # first split the text node; here we emphasise the whole line content.
    session.apply(InsertMarkup(parent=(0, 0), start=0, end=1, name="emph"))
    show("after <emph> inside the line", session)

    # A doomed operation: a second <stanza> wrapped around nothing *before*
    # a title would be fine, but wrapping the existing stanza in a <line>
    # can never be completed — lines live inside stanzas, not around them.
    try:
        session.apply(InsertMarkup(parent=(), start=0, end=1, name="line"))
    except EditRejected as error:
        print(f"rejected as hoped: {error}\n")

    print(f"operations applied: {session.stats.applied}, "
          f"rejected: {session.stats.rejected}")
    print(f"final document valid: {DTDValidator(dtd).is_valid(session.document)}")
    print("(valid because every required element is now present)")


if __name__ == "__main__":
    main()
