"""Quickstart: the paper's Example 1, end to end.

Two encodings of "A quick brown fox jumps over a lazy dog" against the
Figure 1 DTD: both are invalid, but one is merely *incomplete* (potentially
valid — more markup can finish it) while the other is broken beyond repair.

Run:  python examples/quickstart.py
"""

from repro import (
    DTDValidator,
    PVChecker,
    complete_document,
    parse_dtd,
    parse_xml,
    to_xml,
)

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""


def main() -> None:
    dtd = parse_dtd(FIGURE1)
    validator = DTDValidator(dtd)
    checker = PVChecker(dtd)

    w = parse_xml(
        "<r><a><b>A quick brown</b><e></e>"
        "<c> fox jumps over a lazy</c> dog</a></r>"
    )
    s = parse_xml(
        "<r><a><b>A quick brown</b>"
        "<c> fox jumps over a lazy</c> dog<e></e></a></r>"
    )

    print("Both encodings carry the same text:",
          repr(w.content()), "\n")

    for name, document in (("w", w), ("s", s)):
        valid = validator.is_valid(document)
        verdict = checker.check_document(document)
        print(f"document {name}:")
        print(f"  valid?             {valid}")
        print(f"  potentially valid? {verdict.potentially_valid}")
        for failure in verdict.failures:
            print(f"    blocked at {failure.path}: content {failure.symbols}")
        print()

    print("s can be completed by inserting markup (the paper's Figure 3):")
    result = complete_document(dtd, s)
    print(" ", to_xml(result.document))
    print(f"  inserted elements: {result.inserted}")
    print(f"  completed document valid? {validator.is_valid(result.document)}")


if __name__ == "__main__":
    main()
