"""Compare the four potential-validity algorithms on one workload.

* the Figure-5 ECRecognizer (the paper's linear-time algorithm; `refined`
  mode fixes the pseudocode's over-acceptances — finding F-A1),
* the exact GSS PVMachine (this reproduction's extension: exact and
  unbounded for every DTD class),
* per-node Earley on the content grammar (the exact but slow reference),
* whole-document Earley on G'_{T,r} (Theorem 1 taken literally).

Run:  python examples/algorithm_comparison.py
"""

import random
import time

from repro import PVChecker
from repro.baselines import EarleyDocumentChecker
from repro.dtd.catalog import paper_figure1
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.delta import delta_tokens


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def main() -> None:
    dtd = paper_figure1()
    rng = random.Random(1)

    print(f"{'tokens':>7s} {'verdict':>8s} {'figure5':>10s} {'machine':>10s} "
          f"{'node-Earley':>12s} {'doc-Earley':>11s}")
    for size in (50, 100, 200, 400):
        generator = DocumentGenerator(dtd, seed=size, max_repeat=max(3, size // 12))
        document = generator.document(size)
        degraded, _ = degrade(document, rng, 0.5)
        tokens = len(delta_tokens(degraded.root))

        figure5 = PVChecker(dtd, algorithm="figure5")
        machine = PVChecker(dtd, algorithm="machine")
        node_earley = PVChecker(dtd, algorithm="earley")
        doc_earley = EarleyDocumentChecker(dtd)

        v1, t1 = timed(lambda: figure5.is_potentially_valid(degraded))
        v2, t2 = timed(lambda: machine.is_potentially_valid(degraded))
        v3, t3 = timed(lambda: node_earley.is_potentially_valid(degraded))
        v4, t4 = timed(lambda: doc_earley.is_potentially_valid(degraded))
        assert v1 == v2 == v3 == v4
        print(f"{tokens:>7d} {str(v1):>8s} {t1:>9.4f}s {t2:>9.4f}s "
              f"{t3:>11.4f}s {t4:>10.4f}s")

    print()
    print("The dedicated recognizers stay flat; the whole-document Earley")
    print("baseline grows fastest — Section 3.3's point, measured.")


if __name__ == "__main__":
    main()
