"""Classify DTDs into the paper's three classes (Definitions 6-8).

Non-recursive DTDs need no special care; PV-weak recursive ones (like
XHTML's mutually-nesting inline elements) recurse only through star-groups;
PV-strong recursive ones can make greedy recognition loop (Figure 7) and
are the reason the ECRecognizer carries a depth budget.

Run:  python examples/classify_dtds.py
"""

from repro import classify_dtd, parse_dtd
from repro.dtd import catalog


def main() -> None:
    print("Catalog classification")
    print("=" * 72)
    for name in catalog.catalog_names():
        report = classify_dtd(catalog.load(name))
        print(f"{name:18s} {report.dtd_class.value:22s} "
              f"m={report.element_count:<3d} k={report.occurrence_count:<4d} "
              f"recursive={','.join(report.recursive_elements) or '-'}")
    print()

    print("The paper's Section 4.3 examples")
    print("=" * 72)
    trivial_strong = parse_dtd(
        "<!ELEMENT a ((a | c), b*)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
    )
    print("('a ((a|c), b*)'):", classify_dtd(trivial_strong).summary())

    weak_via_star = parse_dtd("<!ELEMENT a ((a | b))*><!ELEMENT b EMPTY>")
    print("('a ((a|b))*')  :", classify_dtd(weak_via_star).summary())

    print()
    print("Why it matters: PV-strong recursion = unbounded insertion depth.")
    print("The Figure-5 algorithm needs its depth budget exactly for the")
    print("PV-strong class; the exact GSS machine in this library handles")
    print("it unbounded (the recursion becomes a cycle in the stack graph).")


if __name__ == "__main__":
    main()
