"""A digital-library encoding pipeline on the manuscript DTD.

The paper's motivating domain: the text of a manuscript exists first; the
markup arrives gradually.  This example simulates the full pipeline —

1. take a finished (valid) transcription,
2. run the editorial process *backwards* (Theorem 2: deleting markup keeps
   the document potentially valid) to obtain a realistic mid-edit state,
3. check it per node and report exactly where more markup is still needed,
4. complete it automatically and re-validate.

Run:  python examples/manuscript_pipeline.py
"""

import random

from repro import DTDValidator, PVChecker, complete_document, to_xml
from repro.dtd.catalog import manuscript
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator


def main() -> None:
    dtd = manuscript()
    validator = DTDValidator(dtd)
    checker = PVChecker(dtd)

    finished = DocumentGenerator(dtd, seed=42).document(target_nodes=40)
    print(f"finished transcription: {finished.node_count()} nodes, "
          f"valid={validator.is_valid(finished)}")

    mid_edit, removed = degrade(finished, random.Random(7), fraction=0.6)
    print(f"mid-edit state: removed {removed} tag pairs, "
          f"valid={validator.is_valid(mid_edit)}, "
          f"potentially valid={checker.is_potentially_valid(mid_edit)}")
    print(f"  text preserved: {mid_edit.content() == finished.content()}")

    report = validator.validate(mid_edit)
    print(f"  validator complaints: {len(report.issues)} "
          "(all of them fixable by adding markup)")
    for issue in report.issues[:4]:
        print(f"    {issue}")
    if len(report.issues) > 4:
        print(f"    ... and {len(report.issues) - 4} more")

    result = complete_document(dtd, mid_edit)
    print(f"auto-completion inserted {result.inserted} elements; "
          f"valid={validator.is_valid(result.document)}")
    print(f"  text preserved: {result.document.content() == finished.content()}")
    print()
    print("completed document (first 400 chars):")
    print(" ", to_xml(result.document)[:400], "...")


if __name__ == "__main__":
    main()
