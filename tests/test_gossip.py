"""Tests for coordinator-less membership: delta merges, the gossip
agent's SWIM lifecycle, the pool quarantine race, and the wire compat
guarantees (solo servers and gossip-off rings are byte-identical)."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, counter_value
from repro.server.gossip import GossipAgent
from repro.server.placement import PlacementView, member_label
from repro.server.pool import ConnectionPool

MEMBERS = ["a.sock", "b.sock", "c.sock"]


def entry(label: str, status: str, incarnation: int) -> dict:
    return {"member": label, "status": status, "incarnation": incarnation}


class TestDeltaMerge:
    """PlacementView.merge_delta: the convergence rules of the table."""

    def test_higher_incarnation_wins_regardless_of_status(self):
        view = PlacementView(MEMBERS, epoch=1)
        view.suspect("b.sock")
        assert view.merge_delta([entry("b.sock", "alive", 1)]) == ["b.sock"]
        assert view.member_status("b.sock") == ("alive", 1)
        # ... and a later *down* at a higher incarnation beats that.
        view.merge_delta([entry("b.sock", "down", 2)])
        assert view.member_status("b.sock") == ("down", 2)

    def test_equal_incarnation_later_lifecycle_status_wins(self):
        view = PlacementView(MEMBERS, epoch=1)
        assert view.merge_delta([entry("b.sock", "suspect", 0)])
        assert view.member_status("b.sock") == ("suspect", 0)
        # alive@0 does not supersede suspect@0 (that is what refutation
        # at incarnation + 1 is for).
        assert view.merge_delta([entry("b.sock", "alive", 0)]) == []
        assert view.merge_delta([entry("b.sock", "down", 0)]) == ["b.sock"]
        assert view.merge_delta([entry("b.sock", "suspect", 0)]) == []

    def test_refutation_wins_over_a_wandering_stale_suspicion(self):
        view = PlacementView(MEMBERS, epoch=1)
        view.suspect("b.sock")
        view.merge_delta([entry("b.sock", "alive", 1)])  # the refutation
        # The old rumor keeps gossiping for a while; it must never
        # resurrect the suspicion it lost to.
        assert view.merge_delta([entry("b.sock", "suspect", 0)]) == []
        assert view.member_status("b.sock") == ("alive", 1)

    def test_conflicting_concurrent_deltas_commute(self):
        deltas = [
            [entry("b.sock", "suspect", 0), entry("c.sock", "alive", 2)],
            [entry("b.sock", "alive", 1), entry("c.sock", "down", 2)],
        ]
        tables = []
        for ordering in (deltas, list(reversed(deltas))):
            view = PlacementView(MEMBERS, epoch=1)
            for delta in ordering:
                view.merge_delta(delta)
            tables.append(view.membership())
        assert tables[0] == tables[1]
        assert tables[0]["b.sock"] == ("alive", 1)
        assert tables[0]["c.sock"] == ("down", 2)

    def test_stale_epoch_is_not_adopted(self):
        view = PlacementView(MEMBERS, epoch=5)
        view.merge_delta([entry("b.sock", "suspect", 0)], epoch=2)
        assert view.epoch == 5

    def test_newer_carried_epoch_is_adopted(self):
        view = PlacementView(MEMBERS, epoch=5)
        view.merge_delta([entry("d.sock", "alive", 0)], epoch=9)
        assert view.epoch == 9
        assert "d.sock" in [member_label(m) for m in view.members]

    def test_join_under_a_stale_epoch_mints_a_new_one(self):
        # A joiner announces itself at epoch 1 into an epoch-5 ring: the
        # live set changed, so the merging shard must mint epoch 6 —
        # otherwise reply stamps would never pull clients to the join.
        view = PlacementView(MEMBERS, epoch=5)
        view.merge_delta([entry("d.sock", "alive", 0)], epoch=1)
        assert view.epoch == 6
        assert "d.sock" in [member_label(m) for m in view.members]

    def test_merged_down_leaves_the_ring(self):
        view = PlacementView(MEMBERS, replica_count=1, epoch=1)
        keys = [f"key-{i}" for i in range(100)]
        victim = member_label(view.owners(keys[0])[0])
        view.merge_delta([entry(victim, "down", 0)], epoch=2)
        for key in keys:
            assert member_label(view.owners(key)[0]) != victim
        # Down, not gone: the rumor keeps spreading until purged.
        assert view.member_status(victim) == ("down", 0)
        delta = view.gossip_delta()
        assert any(
            e["member"] == victim and e["status"] == "down"
            for e in delta["members"]
        )

    def test_malformed_entries_are_skipped(self):
        view = PlacementView(MEMBERS, epoch=1)
        assert (
            view.merge_delta(
                [
                    "not-a-dict",
                    {"member": "", "status": "alive", "incarnation": 0},
                    {"member": "d.sock", "status": "zombie", "incarnation": 0},
                    {"member": "d.sock", "status": "alive", "incarnation": -1},
                    {"member": "d.sock", "status": "alive"},
                    {"member": ":::", "status": "alive", "incarnation": 0},
                ]
            )
            == []
        )
        assert view.epoch == 1

    def test_lifecycle_epochs(self):
        # suspect mints nothing (the member is still routable); down,
        # refutation-from-down, join, and purge each mint exactly once.
        view = PlacementView(MEMBERS, epoch=1)
        assert view.suspect("b.sock")
        assert view.epoch == 1
        assert view.confirm_down("b.sock")
        assert view.epoch == 2
        assert view.note_alive("b.sock")
        assert view.member_status("b.sock") == ("alive", 1)
        assert view.epoch == 3
        assert view.note_alive("d.sock")  # join
        assert view.epoch == 4
        assert view.remove_member("d.sock")
        assert view.epoch == 5


class TestPartitionHealing:
    def exchange(self, left: PlacementView, right: PlacementView) -> None:
        right.merge_delta(**self.as_args(left.gossip_delta()))
        left.merge_delta(**self.as_args(right.gossip_delta()))

    @staticmethod
    def as_args(payload: dict) -> dict:
        return {"entries": payload["members"], "epoch": payload["epoch"]}

    def test_two_sides_converge_to_a_single_view(self):
        # A 2+1 partition: each side confirms the other down and mints
        # its own epochs.  On heal, the survivors' tables must merge to
        # one converged view on both sides — with the refutation step
        # (each side re-asserts itself) bringing everyone back alive.
        left = PlacementView(MEMBERS, epoch=1)
        right = PlacementView(MEMBERS, epoch=1)
        left.confirm_down("c.sock")
        right.confirm_down("a.sock")
        right.confirm_down("b.sock")

        for _ in range(4):  # a few gossip rounds
            self.exchange(left, right)
            # Every member defends itself when it learns of a rumor
            # (what each live agent's _defend_self does).
            for side, label in (
                (left, "a.sock"),
                (left, "b.sock"),
                (right, "c.sock"),
            ):
                if side.member_status(label)[0] != "alive":
                    side.note_alive(label)

        self.exchange(left, right)
        assert left.membership() == right.membership()
        assert left.epoch == right.epoch
        assert all(
            status == "alive" for status, _ in left.membership().values()
        )
        assert [member_label(m) for m in left.members] == sorted(MEMBERS)
        assert [member_label(m) for m in right.members] == sorted(MEMBERS)


class TestQuarantine:
    """The suspicion-path race: a mid-request reply must not resurrect
    a member the membership layer marked down."""

    def make_pool(self) -> ConnectionPool:
        class _FakeClient:
            def close(self) -> None:
                pass

        return ConnectionPool(connect=lambda member, timeout: _FakeClient())

    def test_mark_up_cannot_lift_a_quarantine(self):
        pool = self.make_pool()
        # The race: a request is mid-flight on b.sock when gossip
        # declares it down ...
        with pool.lock("b.sock"):
            pool.client("b.sock")
            pool.quarantine("b.sock")
            assert pool.is_down("b.sock")
        # ... and the reply lands a moment later: the success path's
        # mark_up must NOT bring the member back.
        pool.mark_up("b.sock")
        assert pool.is_down("b.sock")
        assert pool.is_quarantined("b.sock")

    def test_a_reconnect_cannot_lift_a_quarantine(self):
        pool = self.make_pool()
        pool.quarantine("b.sock")
        with pool.lock("b.sock"):
            pool.client("b.sock")  # connects fine — the host is up
        assert pool.is_down("b.sock")  # but the verdict stands

    def test_lift_quarantine_restores_the_member(self):
        events: list[str] = []

        class _Sink:
            def write(self, line: str) -> None:
                events.append(json.loads(line)["event"])

            def flush(self) -> None:
                pass

        pool = ConnectionPool(
            connect=lambda member, timeout: None, events=EventLog(_Sink())
        )
        pool.quarantine("b.sock")
        pool.lift_quarantine("b.sock")
        assert not pool.is_down("b.sock")
        assert not pool.is_quarantined("b.sock")
        assert events == ["member-down", "member-up"]
        pool.lift_quarantine("b.sock")  # idempotent
        assert events == ["member-down", "member-up"]

    def test_plain_liveness_cycle_is_unaffected(self):
        pool = self.make_pool()
        pool.mark_down("b.sock")
        pool.mark_up("b.sock")
        assert not pool.is_down("b.sock")


class _Network:
    """A scripted in-memory wire for GossipAgent tests.

    ``peers`` maps member label -> the peer's PlacementView (its gossip
    table answers with it).  ``dead`` members raise on any call;
    ``blocked`` members are unreachable *directly* from the agent but
    count as reachable for indirect probes (a one-way link failure).
    """

    def __init__(self) -> None:
        self.peers: dict[str, PlacementView] = {}
        self.dead: set[str] = set()
        self.blocked: set[str] = set()
        self.probe_relays: list[tuple[str, str]] = []

    def connect(self, member, timeout):
        return _FakeWireClient(self, member_label(member))

    def health(self, label: str, gossip) -> dict:
        if label in self.dead or label in self.blocked:
            raise OSError(f"{label} unreachable")
        view = self.peers[label]
        if isinstance(gossip, dict):
            view.merge_delta(gossip.get("members"), epoch=gossip.get("epoch"))
        return {"ok": True, "op": "health", "gossip": view.gossip_delta()}

    def probe(self, label: str, target: str, gossip) -> dict:
        if label in self.dead or label in self.blocked:
            raise OSError(f"{label} unreachable")
        self.probe_relays.append((label, target))
        view = self.peers[label]
        if isinstance(gossip, dict):
            view.merge_delta(gossip.get("members"), epoch=gossip.get("epoch"))
        return {
            "ok": True,
            "op": "probe",
            "target": target,
            "reachable": target in self.peers and target not in self.dead,
            "gossip": view.gossip_delta(),
        }


class _FakeWireClient:
    def __init__(self, network: _Network, label: str) -> None:
        self.network = network
        self.label = label

    def health(self, gossip=None):
        return self.network.health(self.label, gossip)

    def probe(self, target, gossip=None):
        return self.network.probe(self.label, target, gossip)

    def close(self) -> None:
        pass


class _EventCapture:
    def __init__(self) -> None:
        self.names: list[str] = []

    def write(self, line: str) -> None:
        self.names.append(json.loads(line)["event"])

    def flush(self) -> None:
        pass


def make_agent(
    members=MEMBERS,
    self_label="a.sock",
    network: _Network | None = None,
    **kwargs,
):
    import random

    network = network if network is not None else _Network()
    view = PlacementView(members, replica_count=2, epoch=1)
    for label in members:
        if label != self_label:
            network.peers.setdefault(
                label, PlacementView(members, replica_count=2, epoch=1)
            )
    capture = _EventCapture()
    metrics = MetricsRegistry()
    agent = GossipAgent(
        view,
        self_label,
        connect=network.connect,
        metrics=metrics,
        events=EventLog(capture),
        rng=random.Random(7),
        **kwargs,
    )
    return agent, view, network, capture, metrics


class TestGossipAgent:
    def test_probe_merges_the_peer_table(self):
        agent, view, network, _events, metrics = make_agent(
            members=["a.sock", "b.sock"]
        )
        # The peer knows about a member (and an epoch) we do not.
        network.peers["b.sock"] = PlacementView(
            ["a.sock", "b.sock", "c.sock"], replica_count=2, epoch=3
        )
        agent.step()
        assert view.epoch == 3
        assert view.member_status("c.sock") == ("alive", 0)
        snapshot = metrics.snapshot()
        histogram = next(
            h
            for h in snapshot["histograms"]
            if h["name"] == "repro_gossip_probe_seconds"
        )
        assert histogram["count"] == 1
        gauge = next(
            g for g in snapshot["gauges"] if g["name"] == "repro_view_epoch"
        )
        assert gauge["value"] == 3.0

    def test_reachable_relay_prevents_the_suspicion(self):
        agent, view, network, events, _metrics = make_agent(
            members=["a.sock", "b.sock", "c.sock"]
        )
        network.blocked.add("b.sock")  # one-way failure: only we can't
        for _ in range(6):
            agent.step()
        assert view.member_status("b.sock")[0] == "alive"
        assert "member-suspect" not in events.names
        assert any(target == "b.sock" for _, target in network.probe_relays)

    def test_dead_member_is_suspected_then_confirmed_down(self):
        agent, view, network, events, metrics = make_agent(
            suspect_after=0.0
        )
        network.dead.add("b.sock")
        for _ in range(8):
            agent.step()
        assert view.member_status("b.sock")[0] == "down"
        assert "member-suspect" in events.names
        assert "member-down" in events.names
        snapshot = metrics.snapshot()
        assert counter_value(snapshot, "repro_gossip_suspects_total") == 1
        assert counter_value(snapshot, "repro_gossip_down_total") == 1
        # The ring reshaped under a freshly minted epoch ...
        assert view.epoch > 1
        labels = [member_label(m) for m in view.members]
        assert "b.sock" not in labels
        # ... and the agent's pool holds the sticky verdict.
        assert agent._pool.is_quarantined("b.sock")

    def test_down_member_is_purged_after_the_grace(self):
        agent, view, network, events, _metrics = make_agent(
            suspect_after=0.0, remove_after=0.01
        )
        network.dead.add("b.sock")
        deadline = time.monotonic() + 5.0
        while (
            view.member_status("b.sock") is not None
            and time.monotonic() < deadline
        ):
            agent.step()
            time.sleep(0.005)
        assert view.member_status("b.sock") is None
        assert "member-removed" in events.names

    def test_remove_after_zero_disables_purging(self):
        agent, view, network, _events, _metrics = make_agent(
            suspect_after=0.0, remove_after=0.0
        )
        network.dead.add("b.sock")
        for _ in range(8):
            agent.step()
            time.sleep(0.001)
        assert view.member_status("b.sock") == ("down", 0)

    def test_refutes_rumors_about_itself(self):
        agent, view, _network, events, metrics = make_agent()
        changed = agent.merge_wire(
            {
                "epoch": 5,
                "members": [entry("a.sock", "suspect", 0)],
            }
        )
        assert changed == ["a.sock"]
        assert view.member_status("a.sock") == ("alive", 1)
        assert "member-refuted" in events.names
        assert (
            counter_value(metrics.snapshot(), "repro_gossip_refutes_total")
            == 1
        )

    def test_returning_member_is_unquarantined(self):
        agent, view, network, _events, _metrics = make_agent(
            suspect_after=0.0
        )
        network.dead.add("b.sock")
        for _ in range(6):
            agent.step()
        assert agent._pool.is_quarantined("b.sock")
        network.dead.discard("b.sock")
        # The returned member re-announces at a bumped incarnation (what
        # its own agent's start()/defense does) and the news reaches us.
        agent.merge_wire(
            {"epoch": view.epoch, "members": [entry("b.sock", "alive", 1)]}
        )
        assert view.member_status("b.sock") == ("alive", 1)
        assert not agent._pool.is_quarantined("b.sock")
        assert not agent._pool.is_down("b.sock")

    def test_merge_wire_ignores_garbage(self):
        agent, view, _network, _events, _metrics = make_agent()
        assert agent.merge_wire(None) == []
        assert agent.merge_wire("nope") == []
        assert agent.merge_wire({"members": "nope"}) == []
        assert agent.merge_wire({"epoch": "9", "members": []}) == []
        assert view.epoch == 1

    def test_start_announces_and_stop_joins(self):
        agent, view, _network, _events, _metrics = make_agent(
            members=["b.sock"], self_label="a.sock", interval=0.05
        )
        try:
            agent.start()
            assert view.member_status("a.sock") == ("alive", 0)
        finally:
            agent.stop()
        assert agent._thread is None

    def test_two_live_agents_converge_after_a_partition(self):
        # Two real agents wired back-to-back through fake networks:
        # each side has declared the other down; their probe/merge loops
        # (driven synchronously via step()) must re-converge both views
        # to one all-alive table with a common epoch.
        import random

        view_a = PlacementView(["a.sock", "b.sock"], epoch=1)
        view_b = PlacementView(["a.sock", "b.sock"], epoch=1)
        view_a.confirm_down("b.sock")
        view_b.confirm_down("a.sock")

        net_a, net_b = _Network(), _Network()
        net_a.peers["b.sock"] = view_b  # a's wire reaches b's real view
        net_b.peers["a.sock"] = view_a

        # Each side holds the other *down*, so the probe loop falls back
        # to its seeds — that is exactly how a healed link is rediscovered.
        agent_a = GossipAgent(
            view_a,
            "a.sock",
            seeds=("b.sock",),
            connect=net_a.connect,
            rng=random.Random(1),
        )
        agent_b = GossipAgent(
            view_b,
            "b.sock",
            seeds=("a.sock",),
            connect=net_b.connect,
            rng=random.Random(2),
        )
        for _ in range(6):
            agent_a.step()
            agent_b.step()
        assert view_a.membership() == view_b.membership()
        assert all(
            status == "alive" for status, _ in view_a.membership().values()
        )
        assert view_a.epoch == view_b.epoch


# -- wire integration: servers, stamps, probes, compat ------------------------


from repro.server.client import ServerError, ValidationClient  # noqa: E402
from repro.server.ring import ShardedClient  # noqa: E402
from repro.server.server import ServerThread  # noqa: E402

DTD = "<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>"
DOC = "<r><a>gossip</a></r>"


def schema_text(index: int) -> str:
    return (
        f"<!ELEMENT r{index} (a{index}*)>"
        f"<!ELEMENT a{index} (#PCDATA)>"
    )


def doc_text(index: int) -> str:
    return f"<r{index}><a{index}>x</a{index}></r{index}>"


class TestServerWireCompat:
    def test_solo_server_replies_are_byte_compatible(self, tmp_path):
        # No ring view, no gossip: the reply key set must be exactly the
        # pre-gossip one — no load stamp, no epoch, no gossip table.
        with ServerThread(unix_path=str(tmp_path / "pv.sock")) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                reply = client.check(DTD, DOC)
                assert reply["ok"] is True
                for key in ("load", "epoch", "gossip"):
                    assert key not in reply
                health = client.health()
                assert "gossip" not in health
                replies, trailer = client.check_batch(DTD, [DOC, DOC])
                assert trailer["items"] == 2
                for obj in (*replies, trailer):
                    assert "load" not in obj and "epoch" not in obj

    def test_epoch_stamped_replies_carry_the_load(self, tmp_path):
        with ServerThread(unix_path=str(tmp_path / "pv.sock")) as handle:
            handle.server.set_ring_view(1, [handle.unix_path])
            with ValidationClient.connect_unix(handle.unix_path) as client:
                reply = client.check(DTD, DOC)
                load = reply["load"]
                assert isinstance(load["inflight"], int)
                assert isinstance(load["queue_depth"], int)
                # The stamp is taken as the reply is written, after
                # this request left flight — a settled server reports 0.
                assert load["inflight"] >= 0
                assert reply["epoch"] == 1
                health = client.health()
                assert isinstance(health["load"]["inflight"], int)
                _replies, trailer = client.check_batch(DTD, [DOC, DOC])
                assert isinstance(trailer["load"]["inflight"], int)

    def test_gossip_server_serves_and_merges_tables(self, tmp_path):
        other = str(tmp_path / "other.sock")
        with ServerThread(
            unix_path=str(tmp_path / "pv.sock"),
            gossip=True,
            gossip_interval=30.0,  # the loop stays out of the way
        ) as handle:
            label = handle.unix_path
            with ValidationClient.connect_unix(label) as client:
                health = client.health()
                table = health["gossip"]
                assert table["epoch"] >= 1
                assert [e["member"] for e in table["members"]] == [label]
                # A peer announces another member; the shard merges it,
                # mints a new epoch, and gossips the join onward.
                reply = client.health(
                    gossip={
                        "epoch": table["epoch"],
                        "members": [entry(other, "alive", 0)],
                    }
                )
                merged = reply["gossip"]
                assert merged["epoch"] > table["epoch"]
                assert {e["member"] for e in merged["members"]} == {
                    label,
                    other,
                }
                assert other in reply["members"]

    def test_gossip_off_health_has_no_gossip_key(self, tmp_path):
        with ServerThread(unix_path=str(tmp_path / "pv.sock")) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                reply = client.health(
                    gossip={"epoch": 1, "members": [entry("x.sock", "alive", 0)]}
                )
                assert reply["ok"] is True
                assert "gossip" not in reply

    def test_probe_op_reports_reachability(self, tmp_path):
        with ServerThread(unix_path=str(tmp_path / "a.sock")) as a:
            with ServerThread(unix_path=str(tmp_path / "b.sock")) as b:
                with ValidationClient.connect_unix(a.unix_path) as client:
                    reply = client.probe(b.unix_path)
                    assert reply["ok"] is True
                    assert reply["reachable"] is True
                    assert reply["target"] == b.unix_path
                    dark = client.probe(str(tmp_path / "nobody.sock"))
                    assert dark["reachable"] is False

    def test_probe_requires_a_target(self, tmp_path):
        with ServerThread(unix_path=str(tmp_path / "pv.sock")) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.request({"op": "probe"})
                assert excinfo.value.code == "bad-request"


class TestRingClientCompat:
    @pytest.fixture
    def shard_handles(self, tmp_path):
        handles = [
            ServerThread(
                unix_path=str(tmp_path / f"shard-{i}.sock"), port=0
            ).start()
            for i in range(3)
        ]
        yield handles
        for handle in handles:
            handle.stop()

    def test_primary_first_check_batch_is_unchanged(self, shard_handles):
        # Under the compatibility default the public check_batch IS the
        # single-stream routed path — replica streaming never engages.
        paths = [h.unix_path for h in shard_handles]
        docs = [doc_text(0)] * 40  # > DEFAULT_WINDOW
        with ShardedClient(paths, replica_count=2) as ring:
            assert ring.read_policy == "primary-first"
            replies, trailer = ring.check_batch(schema_text(0), docs)
            again, again_trailer = ring.routed_batch(schema_text(0), docs)
            assert replies == again
            assert trailer["items"] == again_trailer["items"] == len(docs)
            by_member = ring.ring_stats["requests_by_member"]
            assert len(by_member) == 1  # one owner served both streams

    def test_balanced_check_batch_streams_across_replicas(self, shard_handles):
        paths = [h.unix_path for h in shard_handles]
        docs = [doc_text(1)] * 64  # > DEFAULT_WINDOW: scheduler engages
        with ShardedClient(
            paths, replica_count=2, read_policy="least-inflight"
        ) as ring:
            replies, trailer = ring.check_batch(schema_text(1), docs)
            assert trailer["items"] == len(docs)
            assert all(r["potentially_valid"] for r in replies)
            # Both replicas of the schema saw windows.
            by_member = ring.ring_stats["requests_by_member"]
            assert len(by_member) == 2
            # Compile-once held: the seed window did the one compile.
            stats = ring.stats()
            misses = sum(
                s["registry"]["misses"]
                for s in stats["shards"].values()
                if s
            )
            assert misses == 1

    def test_small_balanced_batches_stay_single_stream(self, shard_handles):
        paths = [h.unix_path for h in shard_handles]
        with ShardedClient(
            paths, replica_count=2, read_policy="round-robin"
        ) as ring:
            replies, trailer = ring.check_batch(schema_text(2), [doc_text(2)])
            assert trailer["items"] == 1
            assert replies[0]["potentially_valid"] is True

    def test_ring_replies_feed_server_truth_to_the_router(self, shard_handles):
        paths = [h.unix_path for h in shard_handles]
        # Server truth only flows once the shards hold an epoch-stamped
        # view (stamps ride epoch-carrying replies).
        for handle in shard_handles:
            handle.server.set_ring_view(1, paths, replica_count=2)
        with ShardedClient(
            paths, replica_count=2, read_policy="least-inflight"
        ) as ring:
            reply = ring.check(schema_text(3), doc_text(3))
            assert reply["potentially_valid"] is True
            served = ring.router.requests_by_member
            (label,) = served.keys()
            assert ring.router.reported_load(label) is not None
