"""Tests for the Section 4.2 DAG model, including the Figure 4 golden shapes."""

from __future__ import annotations

from repro.core.dag import ENTRY, build_dag
from repro.dtd import catalog
from repro.dtd.model import PCDATA
from repro.dtd.parser import parse_dtd


def label_set(dag, indices):
    out = []
    for index in indices:
        position = dag.position(index)
        out.append("group" if position.is_group else position.label)
    return sorted(out)


def label_set_tables(tables, indices):
    return sorted(
        "group" if tables.position(i).is_group else tables.position(i).label
        for i in indices
    )


class TestFigure4:
    """Figure 4 shows DAG_a and DAG_d for the Figure 1 DTD."""

    def test_dag_a(self):
        dag_t = build_dag(catalog.paper_figure1())
        dag = dag_t.dag("a")
        # Root children: b (plus c, f reachable only *after* b in the
        # figure's drawing; structurally first = {b} only if b were
        # mandatory, but b? normalizes to b which IS mandatory in the
        # flattened PV model -> first = {b}).
        assert label_set(dag, dag.root_children()) == ["b"]
        by_label = {}
        assert dag.automaton is not None
        for position in dag.automaton.positions:
            by_label[position.label] = position.index
        # b -> {c, f}; c -> {d}; f -> {d}; d -> {} — the two root-to-leaf
        # paths spell A -> BCD and A -> BFD as the paper notes.
        assert label_set(dag, dag.children(by_label["b"])) == ["c", "f"]
        assert label_set(dag, dag.children(by_label["c"])) == ["d"]
        assert label_set(dag, dag.children(by_label["f"])) == ["d"]
        assert label_set(dag, dag.children(by_label["d"])) == []

    def test_dag_d_single_star_group(self):
        dag_t = build_dag(catalog.paper_figure1())
        dag = dag_t.dag("d")
        assert dag.automaton is not None
        assert dag.automaton.size == 1
        group = dag.automaton.positions[0]
        assert group.is_group
        assert group.group == frozenset({PCDATA, "e"})
        # The group is the whole model: first = {group}, follow empty.
        assert dag.root_children() == frozenset({0})
        assert dag.children(0) == frozenset()

    def test_dag_e_empty(self):
        dag_t = build_dag(catalog.paper_figure1())
        dag = dag_t.dag("e")
        assert dag.automaton is None
        assert dag.root_children() == frozenset()
        assert dag.entry_can_finish


class TestCompletionMetadata:
    def test_all_finishable_for_usable_dtd(self):
        dag_t = build_dag(catalog.paper_figure1())
        for element_dag in dag_t:
            assert element_dag.entry_can_finish
            for flag in element_dag.can_finish:
                assert flag

    def test_unproductive_blocks_finish(self):
        dtd = parse_dtd(
            "<!ELEMENT r (ok | bad)><!ELEMENT ok EMPTY><!ELEMENT bad (worse)>"
            "<!ELEMENT worse (bad)>"
        )
        dag_t = build_dag(dtd)
        bad = dag_t.dag("bad")
        # bad's content (worse) can never be silently completed.
        assert not bad.entry_can_finish
        r = dag_t.dag("r")
        assert r.entry_can_finish  # via the ok branch

    def test_cor31_unsound_without_usability(self):
        """(dead?, ok) vs (dead, ok): Corollary 3.1 needs the usability
        assumption.  The flattened (paper) tables drop the '?', making the
        unproductive `dead` mandatory; the exact tables keep it optional."""
        dtd = parse_dtd(
            "<!ELEMENT r (dead?, ok)><!ELEMENT dead (dead)><!ELEMENT ok EMPTY>"
        )
        dag_t = build_dag(dtd)
        r = dag_t.dag("r")
        assert r.automaton is not None
        flags = {
            r.automaton.positions[i].label: r.insertable[i]
            for i in range(r.automaton.size)
        }
        assert flags == {"dead": False, "ok": True}
        # Flattened: first = {dead} (mandatory), no silent path to the end.
        assert label_set(r, r.root_children()) == ["dead"]
        assert not r.entry_can_finish
        # Exact: '?' survives, so `ok` alone completes the model.
        exact = r.exact_tables
        assert exact.automaton is not None
        assert label_set_tables(exact, exact.root_children()) == ["dead", "ok"]
        assert exact.entry_can_finish

    def test_entry_finish_via_group_skip(self):
        dtd = parse_dtd("<!ELEMENT r (x*, y?)><!ELEMENT x EMPTY><!ELEMENT y EMPTY>")
        dag_t = build_dag(dtd)
        assert dag_t.dag("r").entry_can_finish

    def test_total_positions(self):
        dag_t = build_dag(catalog.paper_figure1())
        assert dag_t.total_positions() > 0


class TestEntryChildren:
    def test_entry_children_equal_first(self):
        dag_t = build_dag(catalog.paper_figure1())
        dag = dag_t.dag("a")
        assert dag.children(ENTRY) == dag.root_children()
