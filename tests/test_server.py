"""Tests for the asyncio validation server, protocol, and client."""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import threading

import pytest

from repro.core.coarse import decode_coarse
from repro.server import protocol
from repro.server.client import ServerError, ValidationClient
from repro.server.protocol import ProtocolError, decode_request
from repro.server.server import ServerThread, ValidationServer
from repro.service.registry import SchemaRegistry
from repro.service.store import ArtifactStore

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""

DOC_OK = "<r><a><b>A quick brown</b><c> fox</c> dog<e></e></a></r>"
#: The paper's W: <e> before <c> cannot be completed by insertions alone.
DOC_BAD = "<r><a><b>A quick brown</b><e></e><c> fox</c> dog</a></r>"


# -- protocol unit tests -----------------------------------------------------


class TestProtocol:
    def test_request_roundtrip(self):
        request = decode_request(
            json.dumps(
                {"op": "check", "dtd": FIGURE1, "doc": DOC_OK,
                 "algorithm": "machine", "id": 7}
            )
        )
        assert request.op == "check"
        assert request.algorithm == "machine"
        assert request.id == 7

    def test_bad_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b"this is { not json")
        assert excinfo.value.code == "bad-json"

    def test_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b"[1, 2, 3]")
        assert excinfo.value.code == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps({"op": "frobnicate"}))
        assert excinfo.value.code == "unsupported-op"

    def test_missing_dtd(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps({"op": "check", "doc": DOC_OK}))
        assert "requires 'dtd'" in excinfo.value.message

    def test_missing_doc(self):
        with pytest.raises(ProtocolError):
            decode_request(json.dumps({"op": "validate", "dtd": FIGURE1}))

    def test_stats_needs_nothing(self):
        assert decode_request(json.dumps({"op": "stats"})).op == "stats"

    def test_bad_algorithm(self):
        with pytest.raises(ProtocolError):
            decode_request(
                json.dumps({"op": "check", "dtd": FIGURE1, "doc": DOC_OK,
                            "algorithm": "magic"})
            )

    def test_non_string_field(self):
        with pytest.raises(ProtocolError):
            decode_request(json.dumps({"op": "check", "dtd": 42, "doc": DOC_OK}))

    def test_encode_is_one_line(self):
        encoded = protocol.encode({"ok": True, "nested": {"a": [1, 2]}})
        assert encoded.endswith(b"\n")
        assert encoded.count(b"\n") == 1

    def test_decode_reply_wraps_bad_json(self):
        # Regression: this used to leak a raw json.JSONDecodeError,
        # violating the "failures are structured" contract.
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_reply(b"this is { not json\n")
        assert excinfo.value.code == "bad-reply"

    def test_decode_reply_wraps_bad_utf8(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_reply(b"\xff\xfe{}\n")
        assert excinfo.value.code == "bad-reply"

    def test_decode_reply_requires_ok(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_reply(b'{"fine": true}\n')
        assert excinfo.value.code == "bad-reply"

    def test_decode_batch_item(self):
        item = protocol.decode_batch_item(b'{"doc": "<r/>", "id": 0}')
        assert item.doc == "<r/>" and item.id == 0
        for garbage in (b"nope {", b"[1]", b'{"id": 3}', b'{"doc": 42}'):
            with pytest.raises(ProtocolError) as excinfo:
                protocol.decode_batch_item(garbage)
            assert excinfo.value.code == "bad-item"


# -- live server tests -------------------------------------------------------


@pytest.fixture
def server_handle():
    with ServerThread(host="127.0.0.1", port=0) as handle:
        yield handle


@pytest.fixture
def client(server_handle):
    with ValidationClient.connect(server_handle.tcp_address) as client:
        yield client


class TestServerRoundTrip:
    def test_check_ok(self, client):
        reply = client.check(FIGURE1, DOC_OK)
        assert reply["ok"] is True
        assert reply["potentially_valid"] is True
        assert reply["failures"] == []
        assert reply["elapsed_ms"] >= 0
        assert reply["schema"]["registry"] == "miss"
        assert len(reply["schema"]["fingerprint"]) == 64

    def test_check_not_pv_carries_failures(self, client):
        reply = client.check(FIGURE1, DOC_BAD)
        assert reply["potentially_valid"] is False
        assert reply["failures"]
        assert reply["failures"][0]["element"]

    def test_second_request_is_a_registry_hit(self, client):
        client.check(FIGURE1, DOC_OK)
        assert client.check(FIGURE1, DOC_OK)["schema"]["registry"] == "hit"

    def test_explicit_algorithms_agree(self, client):
        verdicts = {
            algorithm: client.check(FIGURE1, DOC_OK, algorithm=algorithm)[
                "potentially_valid"
            ]
            for algorithm in ("kernel", "machine", "figure5", "earley")
        }
        assert set(verdicts.values()) == {True}

    def test_auto_dispatch_reports_reason(self, client):
        reply = client.check(FIGURE1, DOC_OK, algorithm="auto")
        assert reply["algorithm"] in ("kernel", "machine", "figure5", "earley")
        assert reply["dispatch_reason"]

    def test_id_is_echoed(self, client):
        assert client.check(FIGURE1, DOC_OK, id="req-1")["id"] == "req-1"

    def test_classify(self, client):
        reply = client.classify(FIGURE1)
        assert reply["dtd_class"] == "non-recursive"
        assert reply["element_count"] == 7

    def test_validate(self, client):
        reply = client.validate(FIGURE1, DOC_OK)
        assert reply["valid"] is False  # potentially valid, not yet valid
        assert reply["issues"]

    def test_stats(self, client):
        client.check(FIGURE1, DOC_OK)
        reply = client.stats()
        assert reply["server"]["requests"] >= 2
        assert reply["registry"]["size"] == 1
        assert reply["store"] is None

    def test_unix_socket(self, tmp_path):
        with ServerThread(unix_path=str(tmp_path / "pv.sock")) as handle:
            assert handle.tcp_address is None
            with ValidationClient.connect_unix(handle.unix_path) as client:
                assert client.check(FIGURE1, DOC_OK)["potentially_valid"]


class TestServerErrors:
    """Every defect is a structured reply; the connection survives."""

    def test_malformed_json_then_normal_request(self, client):
        reply = client.send_raw(b"this is definitely { not json\n")
        assert reply["ok"] is False
        assert reply["error"]["code"] == "bad-json"
        # Same socket still serves real requests.
        assert client.check(FIGURE1, DOC_OK)["potentially_valid"] is True

    def test_bad_dtd(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.check("<!ELEMENT broken", DOC_OK)
        assert excinfo.value.code == "bad-dtd"

    def test_bad_document(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.check(FIGURE1, "<r><a></r>")
        assert excinfo.value.code == "bad-document"

    def test_unknown_op(self, client):
        reply = client.send_raw(b'{"op": "frobnicate"}\n')
        assert reply["error"]["code"] == "unsupported-op"

    def test_blank_lines_are_ignored(self, client):
        reply = client.send_raw(b"\n" + protocol.encode({"op": "stats"}))
        assert reply["ok"] is True

    def test_errors_counted_in_stats(self, client):
        with pytest.raises(ServerError):
            client.check("<!ELEMENT broken", DOC_OK)
        assert client.stats()["server"]["errors"] >= 1

    def test_error_replies_echo_the_request_id(self, client):
        reply = client.send_raw(
            protocol.encode(
                {"op": "check", "dtd": "<!ELEMENT broken", "doc": DOC_OK,
                 "id": 42}
            )
        )
        assert reply["ok"] is False
        assert reply["error"]["code"] == "bad-dtd"
        assert reply["id"] == 42

    def test_server_error_carries_the_full_reply_and_id(self, client):
        # Regression: ServerError used to discard the reply object, which
        # made error replies uncorrelatable under pipelining.
        with pytest.raises(ServerError) as excinfo:
            client.check("<!ELEMENT broken", DOC_OK, id="req-7")
        error = excinfo.value
        assert error.code == "bad-dtd"
        assert error.id == "req-7"
        assert error.reply["ok"] is False
        assert error.reply["id"] == "req-7"
        assert error.reply["error"]["code"] == "bad-dtd"


class TestConcurrentClients:
    def test_many_connections_share_one_registry(self):
        registry = SchemaRegistry()
        with ServerThread(host="127.0.0.1", registry=registry) as handle:
            errors: list[Exception] = []

            def worker() -> None:
                try:
                    with ValidationClient.connect(handle.tcp_address) as client:
                        for _ in range(5):
                            reply = client.check(FIGURE1, DOC_OK)
                            assert reply["potentially_valid"] is True
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            with ValidationClient.connect(handle.tcp_address) as client:
                stats = client.stats()
        # One compile total; every other access was a warm hit, so the
        # hit rate climbs toward 1 as connections pile on.
        assert stats["registry"]["misses"] == 1
        assert stats["registry"]["hits"] >= 29
        assert stats["registry"]["hit_rate"] > 0.9
        assert registry.stats.size == 1


class _SlowServer(ValidationServer):
    """Adds a delay inside request handling to widen the in-flight window."""

    def __init__(self, delay: float, **kwargs: object) -> None:
        super().__init__(**kwargs)
        self.delay = delay

    async def _handle_line(self, line: bytes, *args: object) -> dict:
        response = await super()._handle_line(line, *args)
        await asyncio.sleep(self.delay)
        return response


class TestGracefulShutdown:
    def test_inflight_request_is_drained(self):
        handle = ServerThread(_SlowServer(delay=0.6), host="127.0.0.1")
        handle.start()
        client = ValidationClient.connect(handle.tcp_address)
        result: dict = {}

        def send() -> None:
            result.update(client.check(FIGURE1, DOC_OK))

        sender = threading.Thread(target=send)
        try:
            sender.start()
            # Let the request reach the server, then stop while in flight.
            import time

            time.sleep(0.2)
            handle.stop()  # blocks until drained
            sender.join(timeout=5)
            assert not sender.is_alive()
            assert result.get("potentially_valid") is True
        finally:
            client.close()

    def test_new_connections_refused_after_stop(self):
        with ServerThread(host="127.0.0.1") as handle:
            address = handle.tcp_address
            with ValidationClient.connect(address) as client:
                client.check(FIGURE1, DOC_OK)
        with pytest.raises(OSError):
            ValidationClient.connect(address)


class TestStoreBackedServer:
    def test_restart_skips_recompilation(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        with ServerThread(
            host="127.0.0.1", store=ArtifactStore(store_dir)
        ) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                assert client.check(FIGURE1, DOC_OK)["schema"]["registry"] == "miss"
        # "Restart": a brand-new server and registry over the same store.
        with ServerThread(
            host="127.0.0.1", store=ArtifactStore(store_dir)
        ) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                reply = client.check(FIGURE1, DOC_OK)
                stats = client.stats()
        assert reply["schema"]["registry"] == "store"
        assert stats["registry"]["misses"] == 0
        assert stats["registry"]["store_hits"] == 1
        assert stats["registry"]["compile_seconds"] == 0.0

    def test_corrupt_store_recovers_by_recompiling(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        fingerprint = None
        with ServerThread(
            host="127.0.0.1", store=ArtifactStore(store_dir)
        ) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                fingerprint = client.check(FIGURE1, DOC_OK)["schema"]["fingerprint"]
        ArtifactStore(store_dir).path_for(fingerprint).write_bytes(b"garbage")
        store = ArtifactStore(store_dir)
        with ServerThread(host="127.0.0.1", store=store) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                reply = client.check(FIGURE1, DOC_OK)
        assert reply["potentially_valid"] is True
        assert reply["schema"]["registry"] == "miss"  # honest recompile
        assert store.stats.corrupt == 1
        # The recompiled artifact healed the store for the next restart.
        assert store.load(fingerprint) is not None


class TestProcessPoolServer:
    def test_pool_answers_match_inline(self):
        with ServerThread(host="127.0.0.1", workers=2) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                replies = [
                    client.check(FIGURE1, doc, algorithm="machine")
                    for doc in (DOC_OK, DOC_BAD, DOC_OK, DOC_BAD)
                ]
        assert [r["potentially_valid"] for r in replies] == [
            True, False, True, False,
        ]

    def test_pool_bad_document_is_structured(self):
        with ServerThread(host="127.0.0.1", workers=1) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.check(FIGURE1, "<r><a></r>")
                assert excinfo.value.code == "bad-document"
                # And the pool still serves afterwards.
                assert client.check(FIGURE1, DOC_OK)["potentially_valid"]

    def test_broken_pool_is_rebuilt(self):
        import os
        from concurrent.futures import BrokenExecutor

        with ServerThread(host="127.0.0.1", workers=1) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                assert client.check(FIGURE1, DOC_OK)["potentially_valid"]
                # Kill the worker out from under the server, poisoning
                # the executor the way an OOM-kill would.
                with pytest.raises(BrokenExecutor):
                    handle.server._pool.submit(os._exit, 1).result()
                # The next request rebuilds the pool and still answers.
                assert client.check(FIGURE1, DOC_OK)["potentially_valid"]


def _one_shot_server(respond) -> tuple[str, int, threading.Thread]:
    """A fake TCP server: accept one connection, run *respond*, close."""
    listener = socket.create_server(("127.0.0.1", 0))
    host, port = listener.getsockname()

    def serve() -> None:
        conn, _addr = listener.accept()
        try:
            respond(conn)
        finally:
            conn.close()
            listener.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return host, port, thread


class TestClientWireDefects:
    """The client's own structured-failure contract (satellite coverage)."""

    def test_garbage_reply_is_a_protocol_error(self):
        def respond(conn: socket.socket) -> None:
            conn.makefile("rb").readline()
            conn.sendall(b"this is definitely { not json\n")

        host, port, thread = _one_shot_server(respond)
        with ValidationClient.connect_tcp(host, port) as client:
            with pytest.raises(ProtocolError) as excinfo:
                client.request({"op": "stats"})
        thread.join(timeout=5)
        assert excinfo.value.code == "bad-reply"

    def test_mid_reply_hangup_is_a_connection_error(self):
        def respond(conn: socket.socket) -> None:
            conn.makefile("rb").readline()
            conn.sendall(b'{"ok": tru')  # dies with the reply half-written

        host, port, thread = _one_shot_server(respond)
        with ValidationClient.connect_tcp(host, port) as client:
            with pytest.raises(ConnectionError) as excinfo:
                client.request({"op": "stats"})
        thread.join(timeout=5)
        assert "mid-reply" in str(excinfo.value)

    def test_hangup_before_any_reply_is_a_connection_error(self):
        def respond(conn: socket.socket) -> None:
            conn.makefile("rb").readline()  # read the request, say nothing

        host, port, thread = _one_shot_server(respond)
        with ValidationClient.connect_tcp(host, port) as client:
            with pytest.raises(ConnectionError):
                client.request({"op": "stats"})
        thread.join(timeout=5)


class TestOverLimitRequests:
    """MAX_LINE_BYTES exceeded -> structured error, then disconnect."""

    @pytest.fixture
    def small_limit(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 4096)

    def test_overlong_request_gets_error_then_disconnect(self, small_limit):
        with ServerThread(host="127.0.0.1", port=0) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                client.send(
                    {"op": "check", "dtd": FIGURE1, "doc": "<r>" + "x" * 8192}
                )
                reply = client.recv()
                assert reply["ok"] is False
                assert reply["error"]["code"] == "bad-request"
                assert "exceeds" in reply["error"]["message"]
                # The framing is unrecoverable, so the server closes: the
                # documented disconnect.
                with pytest.raises(ConnectionError):
                    client.request({"op": "stats"})

    def test_within_limit_still_fine(self, small_limit):
        with ServerThread(host="127.0.0.1", port=0) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                assert client.check(FIGURE1, DOC_OK)["potentially_valid"]

    def test_overlong_batch_item_gets_error_then_disconnect(self, small_limit):
        with ServerThread(host="127.0.0.1", port=0) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                client.send(
                    {"op": "check-batch", "dtd": FIGURE1, "count": 1},
                    flush=False,
                )
                client.send({"doc": "<r>" + "y" * 8192})
                reply = client.recv()
                assert reply["ok"] is False
                assert reply["error"]["code"] == "bad-request"
                with pytest.raises(ConnectionError):
                    client.request({"op": "stats"})


class TestUnixSocketLifecycle:
    """Stale socket paths must not brick a restarted server (satellite)."""

    def test_stop_unlinks_the_socket_path(self, tmp_path):
        path = tmp_path / "pv.sock"
        with ServerThread(unix_path=str(path)) as handle:
            assert path.exists()
            assert handle.unix_path == str(path)
        assert not path.exists()

    def test_restart_over_a_stale_socket_succeeds(self, tmp_path):
        # Simulate a crash: a bound-then-abandoned socket file with no
        # listener behind it (what SIGKILL leaves on disk).
        path = tmp_path / "pv.sock"
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(str(path))
        stale.close()  # closed without listen/accept and without unlink
        assert path.exists()
        with ServerThread(unix_path=str(path)) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                assert client.check(FIGURE1, DOC_OK)["potentially_valid"]
        assert not path.exists()

    def test_restart_after_restart(self, tmp_path):
        # The original regression: serve, stop, serve again on one path.
        path = str(tmp_path / "pv.sock")
        for _round in range(3):
            with ServerThread(unix_path=path) as handle:
                with ValidationClient.connect_unix(handle.unix_path) as client:
                    assert client.check(FIGURE1, DOC_OK)["ok"]

    def test_live_socket_is_not_stolen(self, tmp_path):
        path = str(tmp_path / "pv.sock")
        with ServerThread(unix_path=path):
            with pytest.raises(OSError):
                ServerThread(unix_path=path).start()
            # And the probe did not kill the live server's socket.
            with ValidationClient.connect_unix(path) as client:
                assert client.check(FIGURE1, DOC_OK)["ok"]

    def test_regular_file_is_never_clobbered(self, tmp_path):
        path = tmp_path / "precious.txt"
        path.write_text("do not delete")
        with pytest.raises(OSError):
            ServerThread(unix_path=str(path)).start()
        assert path.read_text() == "do not delete"


class TestServerConstruction:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ValidationServer(workers=-1)

    def test_unknown_default_algorithm_rejected(self):
        with pytest.raises(ValueError):
            ValidationServer(default_algorithm="quantum")

    def test_needs_an_endpoint(self):
        server = ValidationServer()
        with pytest.raises(ValueError):
            asyncio.run(server.start())

    def test_bind_error_surfaces_from_thread(self):
        with ServerThread(host="127.0.0.1", port=0) as handle:
            _host, port = handle.tcp_address
            with pytest.raises(OSError):
                ServerThread(host="127.0.0.1", port=port).start()


# -- health, ring views, and epochs ------------------------------------------


class TestHealthOp:
    def test_health_without_a_view(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["epoch"] is None
        assert health["members"] is None
        assert health["uptime_seconds"] >= 0.0

    def test_health_reports_the_published_view(self, server_handle, client):
        client.ring_config(3, ["a.sock", "b.sock"], replica_count=2)
        health = client.health()
        assert health["epoch"] == 3
        assert health["members"] == ["a.sock", "b.sock"]
        assert health["replica_count"] == 2


class TestRingConfigOp:
    def test_replies_are_stamped_after_a_view(self, client):
        assert "epoch" not in client.check(FIGURE1, DOC_OK)
        client.ring_config(5, ["a.sock"])
        reply = client.check(FIGURE1, DOC_OK)
        assert reply["epoch"] == 5
        assert client.stats()["server"]["ring_epoch"] == 5

    def test_stale_request_epoch_is_wrong_epoch_with_the_view(self, client):
        client.ring_config(4, ["a.sock", "b.sock"], replica_count=2)
        with pytest.raises(ServerError) as excinfo:
            client.check(FIGURE1, DOC_OK, epoch=2)
        error = excinfo.value.reply["error"]
        assert error["code"] == "wrong-epoch"
        assert error["epoch"] == 4
        assert error["members"] == ["a.sock", "b.sock"]
        assert error["replica_count"] == 2
        # The connection survives: a recoverable protocol error.
        assert client.check(FIGURE1, DOC_OK, epoch=4)["potentially_valid"]

    def test_current_and_future_epochs_are_served(self, client):
        client.ring_config(4, ["a.sock"])
        assert client.check(FIGURE1, DOC_OK, epoch=4)["ok"]
        # A client ahead of this shard (it missed a push) is not gated.
        assert client.check(FIGURE1, DOC_OK, epoch=9)["ok"]

    def test_epochless_requests_are_always_served(self, client):
        client.ring_config(7, ["a.sock"])
        assert client.check(FIGURE1, DOC_OK)["potentially_valid"]

    def test_stale_ring_config_is_rejected(self, client):
        client.ring_config(6, ["a.sock"])
        with pytest.raises(ServerError) as excinfo:
            client.ring_config(2, ["b.sock"])
        assert excinfo.value.code == "wrong-epoch"
        assert excinfo.value.reply["error"]["epoch"] == 6
        # Same epoch re-push is idempotent; newer replaces.
        assert client.ring_config(6, ["a.sock"])["epoch"] == 6
        assert client.ring_config(8, ["b.sock"])["epoch"] == 8
        assert client.health()["members"] == ["b.sock"]

    def test_equal_epoch_with_a_different_view_is_rejected(self, client):
        # Two publishers racing to the same epoch with different member
        # lists must not silently diverge: the tie is rejected so the
        # losing publisher leapfrogs to a superseding epoch.
        client.ring_config(5, ["a.sock", "b.sock"], replica_count=2)
        with pytest.raises(ServerError) as excinfo:
            client.ring_config(5, ["a.sock", "c.sock"], replica_count=2)
        assert excinfo.value.code == "wrong-epoch"
        with pytest.raises(ServerError):
            client.ring_config(5, ["a.sock", "b.sock"], replica_count=1)
        # The held view is untouched by the rejected pushes.
        assert client.health()["members"] == ["a.sock", "b.sock"]

    def test_ring_config_advertises_a_read_policy(self, client):
        client.ring_config(
            3, ["a.sock", "b.sock"], replica_count=2,
            read_policy="round-robin",
        )
        health = client.health()
        assert health["read_policy"] == "round-robin"
        # The wrong-epoch refresh carries it too, so a routing client
        # adopting the view learns the policy from the error alone.
        with pytest.raises(ServerError) as excinfo:
            client.check(FIGURE1, DOC_OK, epoch=1)
        assert excinfo.value.reply["error"]["read_policy"] == "round-robin"

    def test_read_policy_absent_until_advertised(self, client):
        client.ring_config(3, ["a.sock"])
        assert client.health()["read_policy"] is None

    def test_same_epoch_with_a_different_read_policy_is_rejected(self, client):
        client.ring_config(5, ["a.sock"], read_policy="round-robin")
        with pytest.raises(ServerError) as excinfo:
            client.ring_config(5, ["a.sock"], read_policy="least-inflight")
        assert excinfo.value.code == "wrong-epoch"
        assert client.health()["read_policy"] == "round-robin"

    def test_unknown_read_policy_is_bad_request(self, client):
        reply = client.send_raw(
            protocol.encode(
                {"op": "ring-config", "epoch": 1, "members": ["a.sock"],
                 "read_policy": "sticky"}
            )
        )
        assert reply["error"]["code"] == "bad-request"

    def test_ring_config_requires_epoch_and_members(self, client):
        reply = client.send_raw(
            protocol.encode({"op": "ring-config", "epoch": 1})
        )
        assert reply["error"]["code"] == "bad-request"
        reply = client.send_raw(
            protocol.encode({"op": "ring-config", "members": ["a.sock"]})
        )
        assert reply["error"]["code"] == "bad-request"

    def test_batch_header_with_stale_epoch_errors_then_disconnects(
        self, server_handle
    ):
        with ValidationClient.connect(server_handle.tcp_address) as client:
            client.ring_config(4, ["a.sock"])
            with pytest.raises(ServerError) as excinfo:
                client.check_batch(FIGURE1, [DOC_OK], epoch=1)
            assert excinfo.value.code == "wrong-epoch"
            with pytest.raises((ConnectionError, OSError)):
                client.check(FIGURE1, DOC_OK)

    def test_wrong_epoch_happens_before_any_work(self, client):
        client.ring_config(4, ["a.sock"])
        with pytest.raises(ServerError):
            client.check("<!ELEMENT broken", DOC_OK, epoch=1)
        # The stale epoch answered first: the broken DTD was never parsed,
        # so the error code is wrong-epoch, not bad-dtd.
        try:
            client.check("<!ELEMENT broken", DOC_OK, epoch=1)
        except ServerError as error:
            assert error.code == "wrong-epoch"


class TestInflightGauge:
    def test_idle_server_reports_zero_inflight(self, client):
        client.check(FIGURE1, DOC_OK)
        stats = client.stats()
        assert stats["server"]["inflight"] == 0
        assert client.health()["inflight"] == 0

    def test_inflight_counts_a_parked_verdict(self, server_handle):
        # Hold one check in flight on a second connection and observe it
        # through stats on the first — the signal a least-inflight
        # router balances on.
        import threading
        import time

        release = threading.Event()
        server = server_handle.server
        original = server._inline_check

        def slow_check(schema, doc_text, algorithm):
            release.wait(timeout=10)
            return original(schema, doc_text, algorithm)

        server._inline_check = slow_check
        try:
            with ValidationClient.connect(server_handle.tcp_address) as busy:
                busy.send({"op": "check", "dtd": FIGURE1, "doc": DOC_OK})
                with ValidationClient.connect(
                    server_handle.tcp_address
                ) as observer:
                    deadline = time.monotonic() + 5.0
                    seen = 0
                    while time.monotonic() < deadline:
                        seen = observer.stats()["server"]["inflight"]
                        if seen >= 1:
                            break
                        time.sleep(0.01)
                    assert seen >= 1
                    release.set()
                    assert busy.recv()["potentially_valid"] is True
                    assert observer.stats()["server"]["inflight"] == 0
        finally:
            server._inline_check = original
            release.set()


class TestHotFingerprints:
    def test_stats_rank_fingerprints_by_request_count(self, client):
        other = "<!ELEMENT q (z*)><!ELEMENT z EMPTY>"
        for _ in range(3):
            client.check(FIGURE1, DOC_OK)
        client.check(other, "<q/>")
        hot = client.stats()["hot"]
        assert len(hot) == 2
        (top_fp, top_count), (second_fp, second_count) = hot
        assert top_count == 3 and second_count == 1
        assert top_fp == client.check(FIGURE1, DOC_OK)["schema"]["fingerprint"]
        assert top_fp != second_fp

    def test_batch_items_count_toward_heat(self, client):
        client.check_batch(FIGURE1, [DOC_OK] * 5)
        hot = client.stats()["hot"]
        assert hot[0][1] >= 5


class TestAdmissionServer:
    """The coarse admission stage, server-side (``--admission on/audit``)."""

    #: <zz> is undeclared, so embed-reachability rejects it outright.
    REJECT = "<r><zz></zz></r>"

    @staticmethod
    def _handle(**kwargs):
        return ServerThread(host="127.0.0.1", port=0, **kwargs)

    def test_admission_on_short_circuits_a_definite_reject(self):
        with self._handle(admission="on") as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                reply = client.check(FIGURE1, self.REJECT)
                assert reply["algorithm"] == "coarse"
                assert reply["admission"] == "reject"
                assert reply["potentially_valid"] is False
                failure = reply["failures"][0]
                assert (failure["path"], failure["element"]) == ("/r", "r")

    def test_admission_on_escalates_uncertain_documents(self):
        with self._handle(admission="on") as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                reply = client.check(FIGURE1, DOC_OK)
                assert reply["algorithm"] != "coarse"
                assert reply["admission"] == "uncertain"
                assert reply["potentially_valid"] is True

    def test_admission_audit_always_serves_a_real_backend(self):
        with self._handle(admission="audit") as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                reply = client.check(FIGURE1, self.REJECT)
                assert reply["algorithm"] != "coarse"
                assert reply["admission"] == "reject"
                assert reply["potentially_valid"] is False
                assert "admission_mismatch" not in reply

    def test_admission_off_replies_carry_no_admission_field(self, client):
        reply = client.check(FIGURE1, self.REJECT)
        assert "admission" not in reply
        assert reply["algorithm"] != "coarse"

    def test_batch_items_carry_the_admission_outcome(self):
        with self._handle(admission="on") as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                replies, trailer = client.check_batch(
                    FIGURE1, [self.REJECT, DOC_OK]
                )
                assert trailer["errors"] == 0
                assert replies[0]["algorithm"] == "coarse"
                assert replies[0]["admission"] == "reject"
                assert replies[1]["algorithm"] != "coarse"
                assert replies[1]["admission"] == "uncertain"

    def test_admission_outcomes_are_scraped(self):
        with self._handle(admission="on") as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                client.check(FIGURE1, self.REJECT)
                client.check(FIGURE1, DOC_OK)
                reply = client.metrics()
                admitted = {
                    counter["labels"]["outcome"]: counter["value"]
                    for counter in reply["metrics"]["counters"]
                    if counter["name"] == "repro_admission_total"
                }
                assert admitted.get("reject") == 1
                assert admitted.get("uncertain") == 1
                assert "repro_admission_total" in reply["prometheus"]

    def test_pool_workers_admit_too(self):
        """The admission stage rides inside the worker, not the event loop."""
        with self._handle(admission="on", workers=1) as handle:
            with ValidationClient.connect(handle.tcp_address) as client:
                reply = client.check(FIGURE1, self.REJECT)
                assert reply["algorithm"] == "coarse"
                assert reply["admission"] == "reject"

    def test_invalid_admission_mode_is_rejected_at_construction(self):
        with pytest.raises(ValueError):
            ValidationServer(admission="sometimes")


class TestCoarseOp:
    """``get-coarse`` and the ``"coarse": true`` reply stamps."""

    def test_get_coarse_round_trips_the_summary(self, client):
        fingerprint = client.check(FIGURE1, DOC_OK)["schema"]["fingerprint"]
        summary = decode_coarse(client.get_coarse(fingerprint))
        assert summary is not None
        assert summary.root == "r"
        assert set(summary.names) >= {"r", "a", "b", "c", "d", "e", "f"}

    def test_get_coarse_unknown_fingerprint_is_artifact_miss(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.get_coarse("0" * 16)
        assert excinfo.value.code == "artifact-miss"

    def test_check_reply_stamp_decodes(self, client):
        reply = client.check(FIGURE1, DOC_OK, coarse=True)
        blob = base64.b64decode(reply["coarse"].encode("ascii"))
        summary = decode_coarse(blob)
        assert summary is not None and summary.root == "r"

    def test_unstamped_replies_stay_lean(self, client):
        assert "coarse" not in client.check(FIGURE1, DOC_OK)

    def test_batch_trailer_carries_the_stamp_when_asked(self, client):
        replies, trailer = client.check_batch(FIGURE1, [DOC_OK], coarse=True)
        assert len(replies) == 1
        blob = base64.b64decode(trailer["coarse"].encode("ascii"))
        assert decode_coarse(blob) is not None
