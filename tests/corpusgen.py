"""Seeded fuzzing corpora for the coarse-admission test harness.

One place builds every corpus the admission stack is tested against, so
the differential suite (``test_admission_differential.py``), the E18
benchmark, and CI's fuzz job all draw from the same distribution:

* :func:`valid_documents` — seeded valid documents from
  :class:`~repro.workloads.docgen.DocumentGenerator`, with ``deep`` /
  ``wide`` / ``mixed`` shape presets (recursion depth vs sibling fanout
  stress different coarse-summary tables).
* :func:`mutate` — exactly **one** structural mutation applied to a valid
  document: rename to another declared tag, rename to an *alien*
  (undeclared) tag, child insert / delete / swap, or a character-data
  gap toggle.  Single mutations keep the corrupted corpus adjacent to
  the valid one, which is where a too-eager coarse filter would
  misclassify first.
* :func:`mixed_corpus` — the skewed valid/corrupt mix (provenance
  labelled per document) that E18 measures escalation rates on.

Everything is deterministic in ``seed``; nothing here asserts — verdicts
belong to the tests and benchmarks that consume the corpus.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.dtd.model import DTD
from repro.workloads.corrupt import corrupt_inject, corrupt_rename, corrupt_swap
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlText

__all__ = [
    "MUTATIONS",
    "SHAPES",
    "valid_documents",
    "mutate",
    "mixed_corpus",
]

#: Every single-mutation corruption :func:`mutate` knows how to apply.
MUTATIONS = ("rename", "alien", "insert", "delete", "swap", "gap")

#: Generation shape presets: (target_nodes, max_depth, max_repeat).
SHAPES = {
    "mixed": (30, 8, 3),
    "deep": (40, 24, 1),
    "wide": (60, 3, 8),
}

#: The undeclared tag the ``alien`` mutation renames to — no DTD in the
#: catalog declares it, so embed-reachability can never admit it.
ALIEN_TAG = "zz-alien"


def valid_documents(
    dtd: DTD, count: int, seed: int = 0, shape: str = "mixed"
) -> list[XmlDocument]:
    """*count* seeded valid documents of the given shape preset."""
    target_nodes, max_depth, max_repeat = SHAPES[shape]
    generator = DocumentGenerator(dtd, seed=seed, max_repeat=max_repeat)
    return list(
        generator.documents(count, target_nodes=target_nodes, max_depth=max_depth)
    )


# -- single mutations --------------------------------------------------------


def _inner_elements(document: XmlDocument) -> list[XmlElement]:
    return [
        element
        for element in document.root.iter_elements()
        if element.parent is not None
    ]


def _mutate_alien(document: XmlDocument, rng: random.Random) -> XmlDocument | None:
    """Rename one element (the root included) to an undeclared tag."""
    copy = document.copy()
    elements = list(copy.root.iter_elements())
    rng.choice(elements).name = ALIEN_TAG
    return copy


def _mutate_delete(document: XmlDocument, rng: random.Random) -> XmlDocument | None:
    """Remove one non-root element (its subtree goes with it)."""
    copy = document.copy()
    candidates = _inner_elements(copy)
    if not candidates:
        return None
    target = rng.choice(candidates)
    parent = target.parent
    assert parent is not None
    parent.remove(target)
    return copy


def _mutate_gap(document: XmlDocument, rng: random.Random) -> XmlDocument | None:
    """Toggle a character-data run: drop one, or plant one where none is.

    Inserted gaps land *between* element children, so element-only
    content models see an illegal ``Sigma`` token while mixed models
    shrug it off — exactly the asymmetry the coarse gap hints encode.
    """
    copy = document.copy()
    texted = [
        element
        for element in copy.root.iter_elements()
        if any(isinstance(child, XmlText) for child in element.children)
    ]
    if texted and rng.random() < 0.5:
        element = rng.choice(texted)
        for child in list(element.children):
            if isinstance(child, XmlText):
                element.remove(child)
                return copy
    elements = list(copy.root.iter_elements())
    target = rng.choice(elements)
    position = rng.randint(0, len(target.children))
    target.insert(position, XmlText("stray gap"))
    return copy


def mutate(
    document: XmlDocument,
    dtd: DTD,
    rng: random.Random,
    kind: str | None = None,
) -> tuple[XmlDocument, str] | None:
    """Apply exactly one structural mutation to a copy of *document*.

    Returns ``(mutated, kind)``, or ``None`` when the requested kind does
    not apply to this document (e.g. ``swap`` with no adjacent siblings).
    With ``kind=None`` a random applicable mutation is chosen.
    """
    if kind is None:
        for candidate in rng.sample(MUTATIONS, len(MUTATIONS)):
            result = mutate(document, dtd, rng, kind=candidate)
            if result is not None:
                return result
        return None
    names = dtd.element_names()
    if kind == "rename":
        mutated = corrupt_rename(document, rng, names)
    elif kind == "alien":
        mutated = _mutate_alien(document, rng)
    elif kind == "insert":
        mutated = corrupt_inject(document, rng, rng.choice(names))
    elif kind == "delete":
        mutated = _mutate_delete(document, rng)
    elif kind == "swap":
        mutated = corrupt_swap(document, rng)
    elif kind == "gap":
        mutated = _mutate_gap(document, rng)
    else:
        raise ValueError(f"unknown mutation kind {kind!r}")
    if mutated is None:
        return None
    return mutated, kind


# -- the skewed mix ----------------------------------------------------------


def mixed_corpus(
    dtd: DTD,
    count: int,
    seed: int = 0,
    corrupt_fraction: float = 0.5,
    shape: str = "mixed",
) -> list[tuple[XmlDocument, str]]:
    """A seeded ``(document, provenance)`` mix for admission testing.

    Roughly ``corrupt_fraction`` of the corpus carries one mutation
    (provenance = the mutation kind); the rest is generator-valid
    (provenance ``"valid"``).  Mutations that a mixed content model
    forgives may still be potentially valid — provenance records *what
    was done*, never the verdict, which the consumer must compute.
    """
    if not 0.0 <= corrupt_fraction <= 1.0:
        raise ValueError("corrupt_fraction must be a fraction in [0, 1]")
    rng = random.Random(seed)
    documents = valid_documents(dtd, count, seed=seed, shape=shape)
    corpus: list[tuple[XmlDocument, str]] = []
    for document in documents:
        if rng.random() < corrupt_fraction:
            mutated = mutate(document, dtd, rng)
            if mutated is not None:
                corpus.append(mutated)
                continue
        corpus.append((document, "valid"))
    return corpus


def corpus_documents(
    corpus: list[tuple[XmlDocument, str]]
) -> Iterator[XmlDocument]:
    """Just the documents of a labelled corpus, in order."""
    for document, _provenance in corpus:
        yield document
