"""Tests for the random DTD generator."""

from __future__ import annotations

import pytest

from repro.dtd.analysis import DTDClass, analyze
from repro.dtd.parser import parse_dtd
from repro.dtd.random_gen import RandomDTDConfig, random_dtd
from repro.dtd.serialize import dtd_to_text
from repro.validity.validator import DTDValidator
from repro.workloads.docgen import DocumentGenerator


class TestGeneration:
    def test_deterministic(self):
        config = RandomDTDConfig(elements=12, seed=5)
        assert dtd_to_text(random_dtd(config)) == dtd_to_text(random_dtd(config))

    def test_round_trips_through_parser(self):
        for seed in range(5):
            dtd = random_dtd(RandomDTDConfig(elements=10, seed=seed))
            again = parse_dtd(dtd_to_text(dtd), root=dtd.root)
            assert dtd_to_text(again) == dtd_to_text(dtd)

    def test_all_usable_by_construction(self):
        for recursion in ("none", "weak", "strong"):
            for seed in range(4):
                dtd = random_dtd(
                    RandomDTDConfig(elements=10, seed=seed, recursion=recursion)
                )
                analysis = analyze(dtd)
                assert analysis.all_usable, (recursion, seed, analysis.unusable)

    def test_recursion_none(self):
        for seed in range(6):
            dtd = random_dtd(RandomDTDConfig(elements=10, seed=seed))
            assert analyze(dtd).dtd_class is DTDClass.NON_RECURSIVE, seed

    def test_recursion_weak(self):
        for seed in range(6):
            dtd = random_dtd(
                RandomDTDConfig(elements=10, seed=seed, recursion="weak")
            )
            analysis = analyze(dtd)
            assert analysis.recursive_elements, seed
            assert analysis.dtd_class is DTDClass.PV_WEAK_RECURSIVE, seed

    def test_recursion_strong(self):
        for seed in range(6):
            dtd = random_dtd(
                RandomDTDConfig(elements=10, seed=seed, recursion="strong")
            )
            assert analyze(dtd).dtd_class is DTDClass.PV_STRONG_RECURSIVE, seed

    def test_size_scales_k(self):
        small = random_dtd(RandomDTDConfig(elements=6, seed=1))
        large = random_dtd(RandomDTDConfig(elements=60, seed=1))
        assert large.occurrence_count > small.occurrence_count * 3

    def test_too_few_elements_rejected(self):
        with pytest.raises(ValueError):
            random_dtd(RandomDTDConfig(elements=1))


class TestGeneratedAreUsableWorkloads:
    def test_documents_generate_and_validate(self):
        for recursion in ("none", "weak", "strong"):
            dtd = random_dtd(
                RandomDTDConfig(elements=12, seed=3, recursion=recursion)
            )
            validator = DTDValidator(dtd)
            for seed in range(3):
                document = DocumentGenerator(dtd, seed=seed).document(20)
                assert validator.is_valid(document), (recursion, seed)

    def test_checkers_run_on_random_dtds(self):
        import random as stdlib_random

        from repro.core.pv import PVChecker
        from repro.workloads.degrade import degrade

        for recursion in ("none", "weak", "strong"):
            dtd = random_dtd(
                RandomDTDConfig(elements=10, seed=7, recursion=recursion)
            )
            checker = PVChecker(dtd)
            earley = PVChecker(dtd, algorithm="earley")
            rng = stdlib_random.Random(1)
            for seed in range(3):
                document = DocumentGenerator(dtd, seed=seed).document(15)
                degraded, _ = degrade(document, rng, 0.5)
                assert checker.is_potentially_valid(degraded), (recursion, seed)
                assert earley.is_potentially_valid(degraded), (recursion, seed)
