"""Tests for the paper's delta_T and Delta_T operators (Sections 3.1, 4)."""

from __future__ import annotations

from repro.xmlmodel.delta import (
    SIGMA,
    content_symbols,
    delta_symbols,
    delta_tokens,
    end_tag,
    start_tag,
)
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.tree import XmlElement, XmlText


class TestDelta:
    def test_paper_section31_example(self):
        # delta_T(<a><b>A quick brown</b><c> fox ...</c><d> dog<e></e></d></a>)
        #   = <a><b>s</b><c>s</c><d>s<e></e></d></a>
        doc = parse_xml(
            "<a><b>A quick brown</b><c> fox jumps over a lazy</c>"
            "<d> dog<e></e></d></a>"
        )
        assert delta_symbols(doc) == [
            "<a>", "<b>", SIGMA, "</b>", "<c>", SIGMA, "</c>",
            "<d>", SIGMA, "<e>", "</e>", "</d>", "</a>",
        ]

    def test_consecutive_text_collapses(self):
        root = XmlElement("a")
        root.append(XmlText("one"))
        root.append(XmlText("two"))
        assert delta_symbols(root) == ["<a>", SIGMA, "</a>"]

    def test_empty_text_vanishes(self):
        root = XmlElement("a")
        root.append(XmlText(""))
        assert delta_symbols(root) == ["<a>", "</a>"]

    def test_text_across_element_boundary_not_collapsed(self):
        doc = parse_xml("<a>x<b></b>y</a>")
        assert delta_symbols(doc) == ["<a>", SIGMA, "<b>", "</b>", SIGMA, "</a>"]

    def test_whitespace_counts_by_default(self):
        doc = parse_xml("<a> <b></b></a>")
        assert delta_symbols(doc) == ["<a>", SIGMA, "<b>", "</b>", "</a>"]

    def test_whitespace_ignored_when_asked(self):
        doc = parse_xml("<a> <b></b></a>")
        assert delta_symbols(doc, ignore_whitespace=True) == [
            "<a>", "<b>", "</b>", "</a>",
        ]

    def test_delta_tokens_is_tuple(self):
        assert isinstance(delta_tokens(parse_xml("<a></a>")), tuple)

    def test_tag_terminal_helpers(self):
        assert start_tag("div") == "<div>"
        assert end_tag("div") == "</div>"


class TestContentSymbols:
    def test_paper_section4_example(self):
        # Delta_T(<a><b>A quick brown</b><e></e><c> fox ...</c> dog</a>)
        #   = <a><b></b><e></e><c></c>s</a>  -> children symbols b, e, c, s
        doc = parse_xml(
            "<a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c>"
            " dog</a>"
        )
        assert content_symbols(doc.root) == ["b", "e", "c", SIGMA]

    def test_descendants_invisible(self):
        doc = parse_xml("<a><b><deep>x</deep></b></a>")
        assert content_symbols(doc.root) == ["b"]

    def test_empty_element(self):
        doc = parse_xml("<a></a>")
        assert content_symbols(doc.root) == []

    def test_only_text(self):
        doc = parse_xml("<a>words</a>")
        assert content_symbols(doc.root) == [SIGMA]

    def test_adjacent_text_children_collapse(self):
        root = XmlElement("a")
        root.append(XmlText("x"))
        root.append(XmlText("y"))
        root.append(XmlElement("b"))
        root.append(XmlText("z"))
        assert content_symbols(root) == [SIGMA, "b", SIGMA]

    def test_sigma_is_pcdata_sentinel(self):
        from repro.dtd.model import PCDATA

        assert SIGMA == PCDATA
