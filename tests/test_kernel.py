"""The table-driven kernel: tables, machine semantics, artifact transport.

The kernel's correctness story is differential — it reruns the exact
:class:`PVMachine`'s merged-GSS semantics over dense tables, so every
test here pins it against the machine (and the Earley reference) rather
than against hand-derived expectations.  The structural tests cover what
the differential corpus cannot see directly: the compiled table shapes,
the >63-position bitmask regime (where masks stop fitting a machine
word), and the pickle/wire path the artifact store ships tables through.
"""

from __future__ import annotations

import pickle
import random
from itertools import product

import pytest

from repro.core.dag import build_dag
from repro.core.kernel import (
    IMPLEMENTATION,
    NATIVE,
    KernelChecker,
    KernelMachine,
    kernel_machine_for_dtd,
)
from repro.core.machine import PVMachine
from repro.core.pv import PVChecker
from repro.core.tables import CompiledTables, compile_tables
from repro.dtd import catalog
from repro.dtd.model import PCDATA
from repro.dtd.parser import parse_dtd
from repro.service.compiled import compile_schema
from repro.service.store import decode_artifact, encode_artifact
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.delta import SIGMA

DIFFERENTIAL_DTDS = (
    "paper-figure1",
    "example6-T2",
    "play",
    "dictionary",
    "manuscript",
    "tei-lite",
    "docbook-article",
    "with-any",
    "strong-chain",
)

#: A content model with 70 Glushkov positions: bitmasks must run past the
#: 63-bit machine-word boundary (Python ints are arbitrary-width, but the
#: shift/or arithmetic crossing that line is exactly what this pins).
WIDE = "<!ELEMENT r (%s)><!ELEMENT a EMPTY>" % ", ".join(["a?"] * 70)


def _tables(dtd) -> CompiledTables:
    return compile_tables(build_dag(dtd))


class TestCompiledTables:
    def test_symbols_and_ids_are_a_bijection(self):
        tables = _tables(catalog.paper_figure1())
        assert tables.symbols[-1] == PCDATA
        assert tables.sigma_id == len(tables.symbols) - 1
        for index, name in enumerate(tables.symbols):
            assert tables.sid[name] == index
        assert tables.symbols[tables.root_id] == "r"

    def test_element_table_shapes(self):
        tables = _tables(catalog.paper_figure1())
        for element in tables.elements:
            # Slot 0 is the virtual ENTRY closure; one slot per position.
            assert len(element.closures) == element.size + 1
            assert len(element.pos_label) == element.size
            assert len(element.pos_elem) == element.size
            width_mask = (1 << element.size) - 1
            assert element.fin_mask & ~width_mask == 0
            for mask in element.closures:
                assert mask & ~width_mask == 0
            for mask in element.match_masks.values():
                assert mask & ~width_mask == 0
            for index in range(element.size):
                if element.pos_label[index] == tables.sigma_id:
                    assert element.pos_elem[index] == -1

    def test_empty_content_element_has_no_positions(self):
        tables = _tables(catalog.paper_figure1())
        e = tables.element("e")
        assert e.size == 0
        assert e.entry_fin  # EMPTY accepts the empty content immediately

    def test_element_accessor_rejects_undeclared_names(self):
        tables = _tables(catalog.paper_figure1())
        with pytest.raises(KeyError):
            tables.element("nope")

    def test_emissions_memo_never_pickles(self):
        tables = _tables(catalog.paper_figure1())
        machine = KernelMachine(tables, "r")
        machine.recognize(["a"])
        assert tables.emissions  # the run populated the shared memo
        revived = pickle.loads(pickle.dumps(tables))
        assert revived.emissions == {}
        # ...and the revived tables still drive verdicts.
        assert KernelMachine(revived, "r").recognize(["a"])


class TestWideBitmasks:
    def test_positions_exceed_a_machine_word(self):
        tables = _tables(parse_dtd(WIDE))
        assert tables.element("r").size == 70
        assert tables.element("r").fin_mask > (1 << 63)

    def test_kernel_matches_machine_past_63_positions(self):
        dtd = parse_dtd(WIDE)
        tables = _tables(dtd)
        rng = random.Random(13)
        contents = [["a"] * count for count in (0, 1, 63, 64, 69, 70, 71)]
        contents += [
            ["a" if rng.random() < 0.8 else SIGMA for _ in range(length)]
            for length in (5, 40, 66)
        ]
        for content in contents:
            exact = PVMachine.for_dtd(dtd, "r").recognize(content)
            kernel = KernelMachine(tables, "r").recognize(content)
            assert exact == kernel, content


class TestKernelMachineSemantics:
    @pytest.mark.parametrize("name", ("paper-figure1", "example6-T2", "with-any"))
    def test_exhaustive_short_contents_match_the_machine(self, name):
        dtd = catalog.load(name)
        tables = _tables(dtd)
        names = list(dtd.element_names())
        alphabet = names[:4] + [SIGMA]
        for element in names:
            for length in range(4):
                for tokens in product(alphabet, repeat=length):
                    # Delta_T never emits two adjacent sigma tokens.
                    if any(
                        tokens[i] == SIGMA and tokens[i + 1] == SIGMA
                        for i in range(len(tokens) - 1)
                    ):
                        continue
                    exact = PVMachine.for_dtd(dtd, element).recognize(tokens)
                    kernel = KernelMachine(tables, element).recognize(tokens)
                    assert exact == kernel, (name, element, tokens)

    def test_unknown_symbols_reject(self):
        machine = kernel_machine_for_dtd(catalog.paper_figure1())
        assert not machine.recognize(["undeclared-element"])

    def test_machine_for_non_root_element(self):
        machine = kernel_machine_for_dtd(catalog.paper_figure1(), "f")
        assert machine.recognize(["c", "e"])
        assert not machine.recognize(["e", "c"])


@pytest.mark.parametrize("name", DIFFERENTIAL_DTDS)
def test_kernel_machine_earley_agree_on_documents(name):
    """The ladder's exact tiers are verdict-identical document by document."""
    dtd = catalog.load(name)
    checkers = [
        PVChecker(dtd, algorithm=algorithm)
        for algorithm in ("kernel", "machine", "earley")
    ]
    rng = random.Random(2006)
    generator = DocumentGenerator(dtd, seed=2006)
    for index, document in enumerate(
        generator.documents(3, target_nodes=18, max_depth=8)
    ):
        degraded, _count = degrade(document, rng, fraction=0.6)
        for variant in (document, degraded):
            verdicts = [
                checker.is_potentially_valid(variant) for checker in checkers
            ]
            assert verdicts[0] == verdicts[1] == verdicts[2], (name, index)


class TestArtifactTransport:
    def test_tables_survive_the_wire_format(self):
        schema = compile_schema(catalog.manuscript())
        assert schema.has_tables
        blob = encode_artifact(schema)
        revived = decode_artifact(blob, schema.fingerprint)
        assert revived is not None
        # The shipped pickle carries the tables — no rebuild on arrival.
        assert revived.has_tables
        assert revived.tables.symbols == schema.tables.symbols

    def test_revived_artifact_drives_the_kernel(self):
        dtd = catalog.manuscript()
        schema = compile_schema(dtd)
        revived = decode_artifact(encode_artifact(schema), schema.fingerprint)
        direct = PVChecker(dtd, algorithm="kernel", compiled=schema)
        shipped = PVChecker(dtd, algorithm="kernel", compiled=revived)
        generator = DocumentGenerator(dtd, seed=42)
        for document in generator.documents(3, target_nodes=20):
            assert direct.is_potentially_valid(document) == (
                shipped.is_potentially_valid(document)
            )


class TestKernelChecker:
    def test_is_a_pinned_pv_checker(self, doc_w, doc_s):
        checker = KernelChecker(catalog.paper_figure1())
        assert checker.algorithm == "kernel"
        # Example 1: s is valid (hence potentially valid); w is not even
        # potentially valid — every backend agrees on both.
        assert checker.is_potentially_valid(doc_s)
        assert not checker.is_potentially_valid(doc_w)

    def test_from_compiled(self):
        schema = compile_schema(catalog.paper_figure1())
        checker = KernelChecker.from_compiled(schema)
        assert checker.check_content("f", ["c", "e"])

    def test_from_compiled_rejects_other_algorithms(self):
        schema = compile_schema(catalog.paper_figure1())
        with pytest.raises(ValueError):
            KernelChecker.from_compiled(schema, algorithm="machine")


def test_implementation_flags_are_consistent():
    assert IMPLEMENTATION in ("pure", "native")
    assert NATIVE == (IMPLEMENTATION == "native")
