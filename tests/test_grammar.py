"""Tests for CFGs, ECFG expansion, and the paper's grammar constructions."""

from __future__ import annotations

import pytest

from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.errors import GrammarError
from repro.grammar.build import (
    PCDATA_NONTERMINAL,
    START_SYMBOL,
    build_content_cfg,
    build_pv_ecfg,
    build_validity_ecfg,
    content_nonterminal,
    element_nonterminal,
    hat_nonterminal,
)
from repro.grammar.cfg import Grammar
from repro.grammar.ecfg import ecfg_to_cfg
from repro.xmlmodel.delta import SIGMA


class TestGrammarBasics:
    def test_nullable_computation(self):
        grammar = Grammar(
            "S",
            [
                ("S", ("A", "B")),
                ("A", ()),
                ("B", ("b",)),
                ("B", ("A",)),
            ],
        )
        assert grammar.is_nullable("A")
        assert grammar.is_nullable("B")
        assert grammar.is_nullable("S")

    def test_terminals(self):
        grammar = Grammar("S", [("S", ("a", "T")), ("T", ("b",))])
        assert grammar.terminals() == frozenset({"a", "b"})

    def test_missing_start_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", [("T", ("a",))])

    def test_empty_grammar_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", [])

    def test_alternatives_indexed(self):
        grammar = Grammar("S", [("S", ("a",)), ("S", ("b",))])
        assert len(grammar.alternatives("S")) == 2
        assert grammar.alternatives("missing") == ()


class TestValidityGrammar:
    """Example 3: the ECFG G_{T,r} for the Figure 1 DTD."""

    def test_structure(self):
        dtd = catalog.paper_figure1()
        ecfg = build_validity_ecfg(dtd)
        # S, PCDATA, and X/X-hat per element.
        assert ecfg.start == START_SYMBOL
        expected = {START_SYMBOL, PCDATA_NONTERMINAL}
        for name in "rabcdef":
            expected.add(element_nonterminal(name))
            expected.add(hat_nonterminal(name))
        assert ecfg.nonterminals == expected

    def test_element_rule_shape(self):
        dtd = catalog.paper_figure1()
        cfg = ecfg_to_cfg(build_validity_ecfg(dtd))
        # X -> <x> X̂ </x> productions exist verbatim.
        bodies = {
            production.body
            for production in cfg.alternatives(element_nonterminal("a"))
        }
        assert (("<a>", hat_nonterminal("a"), "</a>")) in bodies
        assert len(bodies) == 1  # G (not G') has no X -> X̂

    def test_pcdata_rules(self):
        dtd = catalog.paper_figure1()
        cfg = ecfg_to_cfg(build_validity_ecfg(dtd))
        bodies = {p.body for p in cfg.alternatives(PCDATA_NONTERMINAL)}
        assert bodies == {(SIGMA,), ()}


class TestPVGrammar:
    def test_adds_hat_alternatives(self):
        dtd = catalog.paper_figure1()
        cfg = ecfg_to_cfg(build_pv_ecfg(dtd))
        for name in "rabcdef":
            bodies = {
                production.body
                for production in cfg.alternatives(element_nonterminal(name))
            }
            assert (hat_nonterminal(name),) in bodies, name

    def test_theorem3_every_nonterminal_nullable(self):
        """Theorem 3: for usable DTDs every nonterminal of G' derives ε."""
        for name in (
            "paper-figure1",
            "example5-T1",
            "example6-T2",
            "tei-lite",
            "xhtml-basic",
            "docbook-article",
            "play",
            "dictionary",
            "manuscript",
            "strong-chain",
            "with-any",
        ):
            dtd = catalog.load(name)
            cfg = ecfg_to_cfg(build_pv_ecfg(dtd))
            for nonterminal in cfg.nonterminals:
                assert cfg.is_nullable(nonterminal), (name, nonterminal)

    def test_theorem3_fails_without_usability(self):
        """The usability assumption is necessary: unproductive elements give
        non-nullable nonterminals."""
        dtd = catalog.with_unproductive()
        cfg = ecfg_to_cfg(build_pv_ecfg(dtd))
        assert not cfg.is_nullable(element_nonterminal("bad"))
        assert not cfg.is_nullable(element_nonterminal("worse"))
        assert cfg.is_nullable(element_nonterminal("ok"))

    def test_validity_grammar_is_not_all_nullable(self):
        dtd = catalog.paper_figure1()
        cfg = ecfg_to_cfg(build_validity_ecfg(dtd))
        # In G the element nonterminals always produce their tags.
        assert not cfg.is_nullable(element_nonterminal("a"))


class TestContentGrammar:
    def test_token_and_content_rules(self):
        dtd = catalog.paper_figure1()
        cfg = build_content_cfg(dtd)
        bodies = {p.body for p in cfg.alternatives("C:a")}
        assert ("a",) in bodies
        assert ((content_nonterminal("a"),)) in bodies

    def test_empty_content_rule(self):
        dtd = catalog.paper_figure1()
        cfg = build_content_cfg(dtd)
        assert {p.body for p in cfg.alternatives(content_nonterminal("e"))} == {()}

    def test_content_nullability_matches_productivity(self):
        dtd = catalog.with_unproductive()
        cfg = build_content_cfg(dtd)
        assert cfg.is_nullable(content_nonterminal("ok"))
        assert not cfg.is_nullable(content_nonterminal("bad"))

    def test_any_expands_over_all_elements(self):
        dtd = catalog.with_any()
        cfg = build_content_cfg(dtd)
        # CONTENT:payload derives each element token and sigma.
        from repro.grammar.earley import EarleyRecognizer

        earley = EarleyRecognizer(cfg)
        for token in ("doc", "meta", "widget", SIGMA):
            assert earley.recognizes(
                [token], start=content_nonterminal("payload")
            ), token


class TestECFGExpansion:
    def test_aux_names_cannot_collide(self):
        dtd = parse_dtd("<!ELEMENT x ((a | b))*><!ELEMENT a EMPTY><!ELEMENT b EMPTY>")
        cfg = build_content_cfg(dtd)
        for nonterminal in cfg.nonterminals:
            assert (
                nonterminal.startswith(("C:", "CONTENT:"))
                or "%" in nonterminal
            ), nonterminal
