"""Tests for the faithful Figure-5 ECRecognizer, including Figures 6 and 7."""

from __future__ import annotations


from repro.config import DEFAULT_DEPTH_BOUND
from repro.core.recognizer import ECRecognizer
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.xmlmodel.delta import SIGMA


def recognizer(dtd, element, depth=DEFAULT_DEPTH_BOUND, mode="refined") -> ECRecognizer:
    return ECRecognizer.for_dtd(dtd, element, depth=depth, mode=mode)


class TestFigure6:
    """The published traces on the content of <a> for Example 1's strings."""

    def test_trace_a_rejects_w_content(self, fig1):
        # A: input b, e, c, PCDATA — the algorithm rejects (at token c:
        # "from the active node d no element c can be reached").
        assert recognizer(fig1, "a").recognize(["b", "e", "c", SIGMA]) == "reject"

    def test_trace_a_rejects_exactly_at_c(self, fig1):
        rec = recognizer(fig1, "a")
        assert rec.validate("b") == "accept"
        assert rec.validate("e") == "accept"
        assert rec.validate("c") == "reject"

    def test_trace_b_accepts_s_content(self, fig1):
        # B: input b, c, PCDATA, e — every symbol matches.
        assert recognizer(fig1, "a").recognize(["b", "c", SIGMA, "e"]) == "accept"

    def test_empty_content_always_accepts(self, fig1):
        assert recognizer(fig1, "a").recognize([]) == "accept"

    def test_first_symbol_search(self, fig1):
        # b is the only initial active node of DAG_a, but c and f are
        # reachable by skipping it (line 34-35) in the same round.
        assert recognizer(fig1, "a").validate("c") == "accept"
        assert recognizer(fig1, "a").validate("f") == "accept"
        assert recognizer(fig1, "a").validate("d") == "accept"

    def test_deep_search_into_missing_element(self, fig1):
        # e is reachable only inside d or f: requires a sub-recognizer.
        assert recognizer(fig1, "a").validate("e") == "accept"

    def test_unreachable_symbol_rejects(self, fig1):
        assert recognizer(fig1, "a").validate("a") == "reject"
        assert recognizer(fig1, "a").validate("r") == "reject"


class TestFigure7DepthBound:
    """Example 5/Figure 7: without the depth bound the greedy search on T1
    recurses forever; the depth parameter is the paper's fix."""

    def test_t1_terminates_and_accepts(self, t1):
        rec = recognizer(t1, "a", depth=8)
        assert rec.recognize(["b", "b"]) == "accept"

    def test_t1_depth_zero_still_terminates(self, t1):
        rec = recognizer(t1, "a", depth=0)
        # No deep search allowed; the star-group {b} matches directly.
        assert rec.recognize(["b", "b"]) == "accept"

    def test_recognizer_count_bounded_by_depth(self, t1):
        # Each nested recognizer is created with depth-1 and deep search
        # stops at 0: the chain length is <= depth.
        rec = recognizer(t1, "a", depth=3)
        rec.validate("a")  # token a forces deep search through missing a's
        chain = 0
        node = next(
            (n for n in rec.active if n.recognizer is not None), None
        )
        while node is not None:
            chain += 1
            node = next(
                (n for n in node.recognizer.active if n.recognizer is not None),
                None,
            ) if node.recognizer else None
        assert chain <= 3


class TestExample6:
    def test_t2_corrected_instance(self, t2):
        # Finding F-A2: "b b" is valid outright; "b b b" needs a step.
        assert recognizer(t2, "a", depth=0).recognize(["b", "b"]) == "accept"
        assert recognizer(t2, "a", depth=4).recognize(["b", "b", "b"]) == "accept"

    def test_t2_depth_gates_the_answer(self, t2):
        # With no recursive budget the third b cannot be placed.
        assert recognizer(t2, "a", depth=0).recognize(["b", "b", "b"]) == "reject"


class TestStarGroups:
    def test_group_absorbs_repeatedly(self, fig1):
        rec = recognizer(fig1, "d")
        assert rec.recognize([SIGMA, "e", SIGMA, "e", "e"]) == "accept"

    def test_group_absorbs_by_reachability(self):
        dtd = parse_dtd(
            "<!ELEMENT r (w)*><!ELEMENT w (x)><!ELEMENT x (#PCDATA)>"
        )
        # Token x embeds under a missing w in a fresh star iteration.
        assert recognizer(dtd, "r").recognize(["x", "x", "w"]) == "accept"

    def test_group_rejects_unreachable(self, fig1):
        assert recognizer(fig1, "d").recognize(["c"]) == "reject"


class TestEmptyAndAny:
    def test_empty_element_content(self, fig1):
        rec = recognizer(fig1, "e")
        assert rec.recognize([]) == "accept"
        assert recognizer(fig1, "e").recognize([SIGMA]) == "reject"
        assert recognizer(fig1, "e").recognize(["d"]) == "reject"

    def test_any_content_accepts_everything(self):
        dtd = catalog.with_any()
        rec = recognizer(dtd, "payload")
        assert rec.recognize(["meta", SIGMA, "widget", "doc"]) == "accept"


class TestOrderSensitivity:
    def test_order_enforced(self, fig1):
        assert recognizer(fig1, "a").recognize(["c", "d"]) == "accept"
        # "d c" is still PV (the d embeds under a missing b before the
        # choice slot); "d b" is not — after the trailing d slot nothing
        # can host a b, and no earlier hypothesis leaves room for it.
        assert recognizer(fig1, "a").recognize(["d", "c"]) == "accept"
        assert recognizer(fig1, "a").recognize(["d", "b"]) == "reject"

    def test_choice_slots_reachable_through_missing_b(self, fig1):
        # "c f" as content of a IS potentially valid: wrap the c inside
        # <b><f>c ...</f></b> and let the real f take the (c|f) slot.
        # Symmetrically for "f c" (f inside the missing b, c at the slot).
        assert recognizer(fig1, "a").recognize(["c", "f"]) == "accept"
        assert recognizer(fig1, "a").recognize(["f", "c"]) == "accept"
        # "c e" works too: e embeds inside the trailing d.
        assert recognizer(fig1, "a").recognize(["c", "e"]) == "accept"

    def test_figure5_verbatim_overacceptance_on_b_content(self, fig1):
        """Finding F-A1 (see EXPERIMENTS.md): as content of b = (d | f),
        the sequence "c f" is NOT potentially valid — c forces the single
        slot to be a missing f, and the real f has nowhere to go — but the
        verbatim Figure 5 keeps node f active after its sub-recognizer
        consumed c, then direct-matches the real f against the same,
        already-consumed position.  The refined mode (rule 1) rejects."""
        assert (
            recognizer(fig1, "b", mode="verbatim").recognize(["c", "f"])
            == "accept"
        )  # the published pseudocode over-accepts
        assert recognizer(fig1, "b", mode="refined").recognize(["c", "f"]) == "reject"
        from repro.core.machine import PVMachine

        assert not PVMachine.for_dtd(fig1, "b").recognize(["c", "f"])

    def test_figure5_verbatim_overacceptance_on_a_content(self, fig1):
        """Finding F-A1, second shape: content "d b" of a — the verbatim
        algorithm lets b direct-match a position occupied by the missing-b
        hypothesis that absorbed d."""
        assert (
            recognizer(fig1, "a", mode="verbatim").recognize(["d", "b"])
            == "accept"
        )
        assert recognizer(fig1, "a", mode="refined").recognize(["d", "b"]) == "reject"
