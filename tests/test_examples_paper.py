"""Consolidated golden tests: every worked example and figure in the paper.

Each test names the paper artifact it reproduces; EXPERIMENTS.md indexes
them.  These are the reproduction's ground-truth anchors.
"""

from __future__ import annotations

import pytest

from repro import (
    DTDValidator,
    PVChecker,
    complete_document,
    parse_xml,
    to_xml,
)
from repro.baselines import EarleyDocumentChecker, naive_potential_validity
from repro.core.completion import CompletionError
from repro.dtd import catalog
from repro.dtd.analysis import DTDClass, analyze
from repro.xmlmodel.delta import SIGMA, content_symbols, delta_symbols

from tests.conftest import EXAMPLE1_W_PRIME


class TestFigure1:
    """The sample DTD (Figure 1)."""

    def test_declarations(self, fig1):
        assert fig1.element_names() == ("r", "a", "b", "c", "d", "e", "f")
        assert fig1.root == "r"
        assert fig1["e"].is_empty
        assert fig1["d"].is_mixed
        assert fig1["c"].is_mixed  # (#PCDATA)

    def test_classification(self, fig1):
        assert analyze(fig1).dtd_class is DTDClass.NON_RECURSIVE


class TestExample1:
    """w is invalid beyond repair; s is merely incomplete (Figure 2 trees)."""

    def test_both_are_invalid(self, fig1, doc_w, doc_s):
        validator = DTDValidator(fig1)
        assert not validator.is_valid(doc_w)
        assert not validator.is_valid(doc_s)

    def test_w_not_potentially_valid(self, fig1, doc_w, algorithm):
        assert not PVChecker(fig1, algorithm=algorithm).is_potentially_valid(doc_w)

    def test_s_potentially_valid(self, fig1, doc_s, algorithm):
        assert PVChecker(fig1, algorithm=algorithm).is_potentially_valid(doc_s)

    def test_same_content_different_verdicts(self, doc_w, doc_s):
        # Both encode the same phrase — the difference is purely structural.
        assert doc_w.content() == doc_s.content()
        assert doc_w.content() == "A quick brown fox jumps over a lazy dog"

    def test_dom_shape_figure2(self, doc_w, doc_s):
        a_w = doc_w.root.element_children()[0]
        a_s = doc_s.root.element_children()[0]
        assert content_symbols(a_w) == ["b", "e", "c", SIGMA]
        assert content_symbols(a_s) == ["b", "c", SIGMA, "e"]


class TestExample2:
    """w' witnesses s's potential validity; s is in D*(T,r), w is not."""

    def test_w_prime_is_valid(self, fig1, doc_w_prime):
        assert DTDValidator(fig1).is_valid(doc_w_prime)

    def test_w_prime_extends_s(self, doc_s, doc_w_prime):
        assert doc_s.content() == doc_w_prime.content()

    def test_naive_definition_agrees(self, fig1, doc_w, doc_s):
        # Definitions 2-3 taken literally (bounded Ext search).  s needs
        # exactly two insertions (Figure 3); for w the bounded search is
        # inconclusive-or-false, never True.
        assert naive_potential_validity(fig1, doc_s, max_insertions=2) is True
        assert (
            naive_potential_validity(fig1, doc_w, max_insertions=2, node_limit=4000)
            is not True
        )


class TestFigure3:
    """The extension of Example 1: two <d> insertions make s valid."""

    def test_completion_matches_figure3(self, fig1, doc_s):
        result = complete_document(fig1, doc_s)
        assert result.inserted == 2
        assert to_xml(result.document) == EXAMPLE1_W_PRIME
        assert DTDValidator(fig1).is_valid(result.document)

    def test_completion_refuses_w(self, fig1, doc_w):
        with pytest.raises(CompletionError):
            complete_document(fig1, doc_w)


class TestExample3:
    """The ECFG G_{T,r} for Figure 1 (spot-checked via its language)."""

    def test_validity_language(self, fig1, doc_w, doc_s, doc_w_prime):
        earley = EarleyDocumentChecker(fig1)
        assert not earley.is_valid(doc_w)
        assert not earley.is_valid(doc_s)
        assert earley.is_valid(doc_w_prime)

    def test_delta_of_section31(self):
        doc = parse_xml(
            "<a><b>A quick brown</b><c> fox jumps over a lazy</c>"
            "<d> dog<e></e></d></a>"
        )
        assert delta_symbols(doc) == [
            "<a>", "<b>", SIGMA, "</b>", "<c>", SIGMA, "</c>",
            "<d>", SIGMA, "<e>", "</e>", "</d>", "</a>",
        ]


class TestTheorem1:
    """w ∈ D*(T,r) ⟺ delta_T(w) ∈ L(G'_{T,r})."""

    def test_on_example1(self, fig1, doc_w, doc_s, doc_w_prime):
        earley = EarleyDocumentChecker(fig1)
        assert not earley.is_potentially_valid(doc_w)
        assert earley.is_potentially_valid(doc_s)
        assert earley.is_potentially_valid(doc_w_prime)


class TestSection43Examples:
    def test_trivial_strong_recursive_element(self):
        dtd = catalog.CATALOG["example5-T1"]()
        assert analyze(dtd).dtd_class is DTDClass.PV_STRONG_RECURSIVE

    def test_example5_document_is_valid_and_pv(self, t1, algorithm):
        doc = parse_xml("<a><b></b><b></b></a>")
        assert DTDValidator(t1).is_valid(doc)
        assert PVChecker(t1, algorithm=algorithm).is_potentially_valid(doc)

    def test_example6_document(self, t2, algorithm):
        doc = parse_xml("<a><b></b><b></b></a>")
        assert PVChecker(t2, algorithm=algorithm).is_potentially_valid(doc)

    def test_example6_erratum(self, t2):
        """Finding F-A2 (EXPERIMENTS.md): Example 6 as printed is doubly
        off — <a><b/><b/></a> is already *valid* for T2 (no recursion
        needed), and the printed witness <a><a><b/></a><b/></a> is itself
        invalid (the inner <a> lacks its mandatory second child)."""
        validator = DTDValidator(t2)
        assert validator.is_valid(parse_xml("<a><b></b><b></b></a>"))
        assert not validator.is_valid(parse_xml("<a><a><b></b></a><b></b></a>"))

    def test_example6_corrected_instance(self, t2, algorithm):
        """The corrected minimal instance requiring one recursive step:
        b b b, with witness <a><a><b/><b/></a><b/></a>."""
        doc = parse_xml("<a><b></b><b></b><b></b></a>")
        assert not DTDValidator(t2).is_valid(doc)
        assert PVChecker(t2, algorithm=algorithm).is_potentially_valid(doc)
        witness = parse_xml("<a><a><b></b><b></b></a><b></b></a>")
        assert DTDValidator(t2).is_valid(witness)

    def test_xhtml_nesting_remark(self):
        # Section 1: XHTML's <b>/<i> require recursion-capable structures
        # even though <i><b><i> is rare — and they are PV-weak recursive.
        analysis = analyze(catalog.xhtml_basic())
        assert {"b", "i"} <= set(analysis.recursive_elements)
        assert analysis.dtd_class is DTDClass.PV_WEAK_RECURSIVE
