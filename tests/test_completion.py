"""Tests for constructive completion (Figure 3) and minimal witnesses."""

from __future__ import annotations

import random

import pytest

from repro.core.completion import (
    CompletionError,
    complete_document,
    complete_element,
)
from repro.core.pv import PVChecker
from repro.core.witness import element_costs, minimal_instance
from repro.dtd import catalog
from repro.errors import UnusableElementError
from repro.validity.validator import DTDValidator
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml


class TestWitness:
    def test_figure1_minimal_instances(self, fig1):
        assert to_xml(minimal_instance(fig1, "e")) == "<e></e>"
        assert to_xml(minimal_instance(fig1, "d")) == "<d></d>"
        assert to_xml(minimal_instance(fig1, "c")) == "<c></c>"
        assert to_xml(minimal_instance(fig1, "f")) == "<f><c></c><e></e></f>"
        assert to_xml(minimal_instance(fig1, "a")) == "<a><c></c><d></d></a>"
        assert to_xml(minimal_instance(fig1)) == "<r><a><c></c><d></d></a></r>"

    def test_witnesses_are_valid(self):
        for name in (
            "paper-figure1", "tei-lite", "xhtml-basic", "docbook-article",
            "play", "dictionary", "manuscript", "example5-T1", "example6-T2",
        ):
            dtd = catalog.load(name)
            validator = DTDValidator(dtd)
            for element in dtd.element_names():
                witness = minimal_instance(dtd, element)
                report = validator.validate(witness)
                # Only the root-name check may fail (witness of a non-root).
                structural = [
                    issue for issue in report.issues if issue.path != "/"
                ]
                assert not structural, (name, element, structural)

    def test_costs_are_minimal_node_counts(self, fig1):
        costs = element_costs(fig1)
        assert costs["e"] == 1
        assert costs["f"] == 3        # f + c + e
        assert costs["a"] == 3        # a + (c|f: c=1) + d
        assert costs["r"] == 4        # r + a-subtree

    def test_unproductive_raises(self):
        dtd = catalog.with_unproductive()
        with pytest.raises(UnusableElementError):
            minimal_instance(dtd, "bad")
        assert to_xml(minimal_instance(dtd, "root")) == "<root><ok></ok></root>"


class TestCompletion:
    def test_figure3(self, fig1, doc_s):
        result = complete_document(fig1, doc_s)
        assert result.inserted == 2
        assert DTDValidator(fig1).is_valid(result.document)

    def test_rejects_non_pv(self, fig1, doc_w):
        with pytest.raises(CompletionError) as excinfo:
            complete_document(fig1, doc_w)
        assert excinfo.value.element == "a"

    def test_rejects_wrong_root(self, fig1):
        with pytest.raises(CompletionError):
            complete_document(fig1, parse_xml("<a></a>"))

    def test_preserves_content_and_order(self, fig1, doc_s):
        result = complete_document(fig1, doc_s)
        assert result.document.content() == doc_s.content()

    def test_completion_of_valid_document_is_identity_shaped(self, fig1, doc_w_prime):
        result = complete_document(fig1, doc_w_prime)
        assert result.inserted == 0
        assert to_xml(result.document) == to_xml(doc_w_prime)

    def test_empty_root_completion(self, fig1):
        result = complete_document(fig1, parse_xml("<r></r>"))
        assert DTDValidator(fig1).is_valid(result.document)
        # r -> a -> (c, d) minimal filling.
        assert result.inserted == 3

    def test_round_trip_on_degraded_documents(self):
        """completion(degrade(valid)) is valid and content-preserving, and
        the checker agrees with completion existence."""
        rng = random.Random(2024)
        for name in ("paper-figure1", "play", "dictionary", "manuscript"):
            dtd = catalog.load(name)
            validator = DTDValidator(dtd)
            checker = PVChecker(dtd)
            for seed in range(4):
                document = DocumentGenerator(dtd, seed=seed).document(16)
                degraded, _ = degrade(document, rng, 0.6)
                assert checker.is_potentially_valid(degraded)
                result = complete_document(dtd, degraded)
                assert validator.is_valid(result.document), (name, seed)
                assert result.document.content() == degraded.content()

    def test_completion_existence_matches_checker(self):
        """CompletionError ⟺ checker says not potentially valid."""
        rng = random.Random(7)
        from repro.workloads.corrupt import corrupt_swap

        for name in ("paper-figure1", "play", "dictionary"):
            dtd = catalog.load(name)
            checker = PVChecker(dtd)
            for seed in range(4):
                document = DocumentGenerator(dtd, seed=seed).document(14)
                mutated = corrupt_swap(document, rng)
                if mutated is None:
                    continue
                expected = checker.is_potentially_valid(mutated)
                try:
                    result = complete_document(dtd, mutated)
                    got = True
                    assert DTDValidator(dtd).is_valid(result.document)
                except CompletionError:
                    got = False
                assert got == expected, (name, seed)

    def test_recursive_dtd_completion(self, t2):
        doc = parse_xml("<a><b></b><b></b><b></b></a>")
        result = complete_document(t2, doc)
        assert DTDValidator(t2).is_valid(result.document)

    def test_complete_element_api(self, fig1):
        fragment = parse_xml("<a><b></b><c>text</c></a>").root
        completed, inserted = complete_element(fig1, fragment)
        assert inserted >= 1
        issues = DTDValidator(fig1).validate(completed).issues
        assert all(issue.path == "/" for issue in issues)  # only root-name
