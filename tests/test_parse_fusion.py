"""The fused parse→verdict hot path never changes an answer.

Three seams guard the E19 speedups, and each gets a differential here:

* **Tokenizer** — :func:`repro.xmlmodel.fastlex.tokenize_xml_fast` must
  yield *exactly* the tokens of the reference character lexer — kind,
  name, text, attributes, line, and column — including every syntax
  error's message and position (malformed tags delegate to a positioned
  reference cursor precisely so the diagnostics stay the reference's).
* **Treeless checking** — the streaming kernel pass
  (:func:`repro.core.stream.stream_check_document`, reached through
  ``PVChecker.check_text``) must return the tree checker's verdict
  *failure-for-failure*, and the streaming coarse pass must classify
  every document into the same ``accept``/``reject``/``uncertain``
  outcome (the rejected *node* may differ — tree traversal order is the
  only thing the outcomes never depended on).
* **The memo cache** — :class:`repro.service.cache.VerdictCache` keyed by
  ``(fingerprint, digest, mode)`` must replay verdicts exactly, and the
  surfaces threaded through it (dispatcher, batch, server) must answer
  repeats from it without changing a single verdict field.

Corpora come from :mod:`corpusgen`; ``REPRO_FUZZ_SEED`` and
``REPRO_FUZZ_DOCS`` scale the run exactly as in the admission suite.
"""

from __future__ import annotations

import os

import pytest

import corpusgen
from repro.core.coarse import CoarseChecker
from repro.core.pv import PVChecker
from repro.core.stream import stream_check_document, stream_coarse_check
from repro.dtd import catalog
from repro.errors import ReproError
from repro.service.batch import BatchChecker
from repro.service.cache import VerdictCache
from repro.service.dispatch import BackendDispatcher
from repro.service.registry import DEFAULT_REGISTRY
from repro.xmlmodel.fastlex import (
    PARSER_ENV,
    active_tokenizer,
    parser_backend,
    tokenize_xml_fast,
)
from repro.xmlmodel.lexer import XmlSyntaxError, tokenize_xml
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml

DTD_NAMES = ("paper-figure1", "play", "dictionary", "manuscript", "with-any")

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "2006"))
DOCS_PER_DTD = int(os.environ.get("REPRO_FUZZ_DOCS", "24"))


def _corpus_texts(name: str) -> list[str]:
    dtd = catalog.load(name)
    corpus = corpusgen.mixed_corpus(
        dtd, DOCS_PER_DTD, seed=SEED, corrupt_fraction=0.6
    )
    return [to_xml(document) for document, _provenance in corpus]


# -- tokenizer differential --------------------------------------------------

#: Handcrafted sources covering every lexer construct and quirk: CDATA
#: merging into adjacent text, empty CDATA, entity forms, attribute
#: whitespace freedom, comments/PIs/DOCTYPE, and multi-line positions.
HANDCRAFTED = (
    "<r/>",
    "<r></r>",
    "<r a='1' b=\"two\"/>",
    '<r a="x"b="y"/>',
    "<r>text</r>",
    "<r>a<!--comment-->b</r>",
    "<r><![CDATA[raw <&>]]></r>",
    "<r><![CDATA[]]></r>",
    "<r>pre<![CDATA[mid]]>post</r>",
    "<r>&lt;&gt;&amp;&apos;&quot;</r>",
    "<r>&#65;&#x41;&#x6a;</r>",
    "<r a='&amp;&#x3C;'>x</r>",
    "<?xml version='1.0'?>\n<r/>",
    "<!DOCTYPE r [<!ELEMENT r EMPTY>]>\n<r/>",
    "<!DOCTYPE r SYSTEM 'r.dtd'>\n<r/>",
    "<r>\n  <a>one</a>\n  <a>two</a>\n</r>",
    "<ns:r xmlns:ns='u'><ns:a/></ns:r>",
    "</r >x",
    "  \n\t<r/>\n  ",
    "<r><a/><a></a><a x='y'/></r>",
)

#: Sources the lexer must reject — the fast scanner has to raise the
#: byte-identical message at the byte-identical position.
MALFORMED = (
    "<r",
    "<r a=1/>",
    "<r a='1/>",
    "< r/>",
    "</r x>",
    "<r><a attr></a></r>",
    "<r>&unknown;</r>",
    "<r>&lt</r>",
    "<r>&;</r>",
    "<r>&#xZZ;</r>",
    "<r a='<'/>",
    "<!DOCTYPE r [<!ELEMENT r EMPTY>",
    "<r><!-- never closed </r>",
    "<r><![CDATA[never closed</r>",
    "<r><?pi never closed</r>",
    "<r/",
    "</r/>",
)


def _token_tuple(token):
    return (
        token.kind,
        token.name,
        token.text,
        token.attributes,
        token.line,
        token.column,
    )


@pytest.mark.parametrize("source", HANDCRAFTED)
def test_fast_tokenizer_matches_reference_handcrafted(source):
    fast = [_token_tuple(t) for t in tokenize_xml_fast(source)]
    reference = [_token_tuple(t) for t in tokenize_xml(source)]
    assert fast == reference


@pytest.mark.parametrize("source", MALFORMED)
def test_fast_tokenizer_matches_reference_errors(source):
    # ``&#xZZ;`` raises a bare ValueError in the reference lexer, so the
    # comparison is over exception type + message, with the position
    # checked whenever the error is a positioned syntax error.
    with pytest.raises(Exception) as reference:
        list(tokenize_xml(source))
    with pytest.raises(Exception) as fast:
        list(tokenize_xml_fast(source))
    assert type(fast.value) is type(reference.value)
    assert str(fast.value) == str(reference.value)
    if isinstance(reference.value, XmlSyntaxError):
        assert (fast.value.line, fast.value.column) == (
            reference.value.line,
            reference.value.column,
        )


@pytest.mark.parametrize("name", DTD_NAMES)
def test_fast_tokenizer_matches_reference_on_corpus(name):
    for text in _corpus_texts(name):
        fast = [_token_tuple(t) for t in tokenize_xml_fast(text)]
        reference = [_token_tuple(t) for t in tokenize_xml(text)]
        assert fast == reference, f"token divergence on: {text[:120]!r}"


def test_parser_seam_selects_reference(monkeypatch):
    """``REPRO_PARSER=reference`` routes parsing through the old lexer."""
    monkeypatch.setenv(PARSER_ENV, "reference")
    assert parser_backend() == "reference"
    assert active_tokenizer() is tokenize_xml
    document = parse_xml("<r><a>x</a></r>")
    assert document.root.name == "r"
    monkeypatch.setenv(PARSER_ENV, "fast")
    assert active_tokenizer() is tokenize_xml_fast
    monkeypatch.delenv(PARSER_ENV)
    assert parser_backend() == "fast"


# -- treeless checking differential ------------------------------------------


@pytest.mark.parametrize("name", DTD_NAMES)
def test_stream_kernel_verdicts_identical_to_tree(name):
    """Fused kernel checking == parse-then-check, failure tuples included."""
    dtd = catalog.load(name)
    schema = DEFAULT_REGISTRY.get(dtd)
    checker = PVChecker(dtd, algorithm="kernel")
    for text in _corpus_texts(name):
        streamed = stream_check_document(schema, text)
        treed = checker.check_document(parse_xml(text))
        assert streamed.potentially_valid == treed.potentially_valid
        assert streamed.failures == treed.failures
        assert streamed.depth_limited == treed.depth_limited
        # The public fused entry point takes the same shortcut.
        assert checker.check_text(text).failures == treed.failures


@pytest.mark.parametrize("name", DTD_NAMES)
def test_stream_coarse_outcomes_identical_to_tree(name):
    dtd = catalog.load(name)
    schema = DEFAULT_REGISTRY.get(dtd)
    coarse = CoarseChecker(schema.coarse)
    for text in _corpus_texts(name):
        streamed = stream_coarse_check(schema.coarse, text)
        treed = coarse.check_document(parse_xml(text))
        assert streamed.outcome == treed.outcome, text[:120]
        assert coarse.check_text(text).outcome == treed.outcome


@pytest.mark.parametrize(
    "source",
    (
        "<manuscript><unclosed>",
        "<manuscript></mismatch>",
        "stray text",
        "",
        "<a/><b/>",
    ),
)
def test_stream_checking_raises_reference_errors(source):
    """Malformed input fails the fused path with the parser's exact error."""
    schema = DEFAULT_REGISTRY.get(catalog.manuscript())
    try:
        parse_xml(source)
    except ReproError as error:
        expected = str(error)
    else:  # pragma: no cover - every case above is malformed
        pytest.fail("case is well-formed")
    with pytest.raises(ReproError) as streamed:
        stream_check_document(schema, source)
    assert str(streamed.value) == expected
    with pytest.raises(ReproError) as coarse:
        stream_coarse_check(schema.coarse, source)
    assert str(coarse.value) == expected


# -- the verdict memo cache --------------------------------------------------


def test_verdict_cache_lru_hit_miss_evict():
    cache = VerdictCache(2)
    k1 = cache.key("fp", "<a/>", "kernel")
    k2 = cache.key("fp", "<b/>", "kernel")
    k3 = cache.key("fp", "<c/>", "kernel")
    assert cache.get(k1) is None
    assert not cache.put(k1, "v1")
    assert not cache.put(k2, "v2")
    assert cache.get(k1) == "v1"  # freshens k1: k2 is now LRU
    assert cache.put(k3, "v3")  # evicts k2
    assert cache.get(k2) is None
    assert cache.get(k1) == "v1"
    assert cache.get(k3) == "v3"
    assert cache.stats == {
        "hits": 3,
        "misses": 2,
        "evictions": 1,
        "size": 2,
        "maxsize": 2,
    }


def test_verdict_cache_key_separates_schema_and_mode():
    text = "<r/>"
    assert VerdictCache.key("fp1", text, "kernel") != VerdictCache.key(
        "fp2", text, "kernel"
    )
    assert VerdictCache.key("fp1", text, "kernel") != VerdictCache.key(
        "fp1", text, "machine"
    )
    assert VerdictCache.key("fp1", text, "kernel") == VerdictCache.key(
        "fp1", text, "kernel"
    )


def test_verdict_cache_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        VerdictCache(0)


def test_dispatcher_check_text_uses_cache():
    schema = DEFAULT_REGISTRY.get(catalog.manuscript())
    cache = VerdictCache(16)
    dispatcher = BackendDispatcher(schema, verdict_cache=cache)
    text = to_xml(
        corpusgen.valid_documents(catalog.manuscript(), 1, seed=SEED)[0]
    )
    first, was_cached = dispatcher.check_text(text)
    assert was_cached is False
    replay, was_cached = dispatcher.check_text(text)
    assert was_cached is True
    assert replay is first
    assert cache.stats["hits"] == 1
    # An int size builds the cache internally; no cache means no replay.
    assert BackendDispatcher(schema, verdict_cache=16).verdict_cache is not None
    bare = BackendDispatcher(schema)
    verdict, was_cached = bare.check_text(text)
    assert was_cached is False
    assert verdict.verdict.potentially_valid == first.verdict.potentially_valid


def test_batch_checker_replays_repeats_from_cache():
    dtd = catalog.manuscript()
    schema = DEFAULT_REGISTRY.get(dtd)
    texts = [
        to_xml(document)
        for document in corpusgen.valid_documents(dtd, 3, seed=SEED)
    ]
    cache = VerdictCache(16)
    checker = BatchChecker(schema, algorithm="kernel", verdict_cache=cache)
    baseline = BatchChecker(schema, algorithm="kernel")
    first = checker.check_texts(texts + texts)
    plain = baseline.check_texts(texts + texts)
    assert [item.ok for item in first.items] == [item.ok for item in plain.items]
    assert cache.stats["hits"] == len(texts)
    assert cache.stats["misses"] == len(texts)


def test_server_stamps_cached_replies(tmp_path):
    from repro.server.client import ValidationClient
    from repro.server.server import ServerThread

    dtd_text = "<!ELEMENT r (a*)>\n<!ELEMENT a (#PCDATA)>"
    doc = "<r><a>x</a></r>"
    with ServerThread(
        unix_path=str(tmp_path / "pv.sock"), verdict_cache=8
    ) as handle:
        with ValidationClient.connect_unix(handle.unix_path) as client:
            cold = client.check(dtd_text, doc)
            warm = client.check(dtd_text, doc)
            assert "cached" not in cold
            assert warm.get("cached") is True
            assert warm["potentially_valid"] == cold["potentially_valid"]
            replies, _trailer = client.check_batch(dtd_text, [doc, "<r/>"])
            assert replies[0].get("cached") is True
            assert "cached" not in replies[1]
            stats = client.stats()["server"]["verdict_cache"]
            assert stats["hits"] == 2 and stats["misses"] == 2
            exposition = client.metrics()["prometheus"]
            assert "repro_verdict_cache_total" in exposition
            assert "repro_parse_seconds" in exposition
