"""Tests for the Earley document checker and the naive extension search."""

from __future__ import annotations


from repro.baselines.earley_pv import EarleyDocumentChecker
from repro.baselines.naive import naive_potential_validity
from repro.dtd.parser import parse_dtd
from repro.xmlmodel.parser import parse_xml


class TestEarleyDocumentChecker:
    def test_validity_and_pv_on_knowns(self, fig1, doc_w, doc_s, doc_w_prime):
        checker = EarleyDocumentChecker(fig1)
        assert not checker.is_valid(doc_w)
        assert not checker.is_valid(doc_s)
        assert checker.is_valid(doc_w_prime)
        assert not checker.is_potentially_valid(doc_w)
        assert checker.is_potentially_valid(doc_s)
        assert checker.is_potentially_valid(doc_w_prime)

    def test_wrong_root_rejected(self, fig1):
        checker = EarleyDocumentChecker(fig1)
        assert not checker.is_potentially_valid(parse_xml("<a></a>"))

    def test_undeclared_element_rejected(self, fig1):
        checker = EarleyDocumentChecker(fig1)
        assert not checker.is_potentially_valid(parse_xml("<r><zzz></zzz></r>"))

    def test_unbounded_strong_recursion(self, t2):
        checker = EarleyDocumentChecker(t2)
        document = parse_xml("<a>" + "<b></b>" * 7 + "</a>")
        assert checker.is_potentially_valid(document)
        assert not checker.is_valid(document)


class TestNaive:
    def test_already_valid(self, fig1, doc_w_prime):
        assert naive_potential_validity(fig1, doc_w_prime, max_insertions=0) is True

    def test_wrong_root_false(self, fig1):
        assert naive_potential_validity(fig1, parse_xml("<a></a>")) is False

    def test_undeclared_element_false(self, fig1):
        document = parse_xml("<r><zzz></zzz></r>")
        assert naive_potential_validity(fig1, document) is False

    def test_single_insertion(self):
        dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>")
        document = parse_xml("<a>text</a>")
        assert naive_potential_validity(dtd, document, max_insertions=1) is True

    def test_exhaustive_false_on_tiny_instance(self):
        dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b EMPTY>")
        document = parse_xml("<a><b></b><b></b></a>")  # two b's: unfixable
        assert naive_potential_validity(dtd, document, max_insertions=2) is False

    def test_inconclusive_returns_none(self, fig1, doc_w):
        result = naive_potential_validity(
            fig1, doc_w, max_insertions=1, node_limit=10
        )
        assert result is None

    def test_finds_minimal_two_insertions(self, fig1, doc_s):
        assert naive_potential_validity(fig1, doc_s, max_insertions=2) is True

    def test_agrees_with_machine_on_tiny_docs(self):
        from repro.core.completion import complete_document
        from repro.core.pv import PVChecker

        dtd = parse_dtd(
            "<!ELEMENT a (b?, c)><!ELEMENT b (#PCDATA)><!ELEMENT c (b?)>"
        )
        checker = PVChecker(dtd)
        cases = [
            "<a></a>",
            "<a><c></c></a>",
            "<a><b></b></a>",
            "<a>text</a>",
            "<a><c></c><b></b></a>",
            "<a><b></b><c></c><b></b></a>",
            "<a><c></c><c></c></a>",
        ]
        for source in cases:
            document = parse_xml(source)
            oracle = naive_potential_validity(dtd, document, max_insertions=3)
            verdict = checker.is_potentially_valid(document)
            if oracle is True:
                assert verdict, source
            elif oracle is False and verdict:
                # Only allowed when the needed extension exceeds the bound.
                assert complete_document(dtd, document).inserted > 3, source
