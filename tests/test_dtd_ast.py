"""Unit tests for the content-model AST helpers."""

from __future__ import annotations

import math

import pytest

from repro.dtd.ast import (
    Choice,
    Name,
    Opt,
    PCData,
    Plus,
    Seq,
    Star,
    can_mention,
    children,
    element_names,
    language_nullable,
    mentions_pcdata,
    min_cost_word,
    node_size,
    to_text,
    walk,
)
from repro.dtd.parser import parse_content_spec


def model(text: str):
    return parse_content_spec(text).model


class TestStructure:
    def test_children_of_leaves_empty(self):
        assert children(Name("a")) == ()
        assert children(PCData()) == ()

    def test_children_of_combinators(self):
        seq = Seq((Name("a"), Name("b")))
        assert children(seq) == (Name("a"), Name("b"))
        assert children(Star(seq)) == (seq,)
        assert children(Opt(Name("a"))) == (Name("a"),)
        assert children(Plus(Name("a"))) == (Name("a"),)

    def test_seq_and_choice_require_items(self):
        with pytest.raises(ValueError):
            Seq(())
        with pytest.raises(ValueError):
            Choice(())

    def test_walk_preorder(self):
        tree = model("(a, (b | c))")
        kinds = [type(node).__name__ for node in walk(tree)]
        assert kinds == ["Seq", "Name", "Choice", "Name", "Name"]

    def test_element_names(self):
        assert element_names(model("(a, (b | c), a)")) == {"a", "b", "c"}

    def test_mentions_pcdata(self):
        assert not mentions_pcdata(model("(a, b)"))
        assert mentions_pcdata(Star(Choice((PCData(), Name("a")))))

    def test_node_size_counts_all_nodes(self):
        assert node_size(model("(a, b)")) == 3
        assert node_size(model("(a?, (b | c))")) == 6

    def test_structural_equality_and_hash(self):
        assert model("(a, b)") == model("(a, b)")
        assert model("(a, b)") != model("(a | b)")
        assert hash(model("(a, b)")) == hash(model("(a, b)"))


class TestLanguageNullable:
    def test_star_and_opt_always_nullable(self):
        assert language_nullable(model("(a)*"), lambda _name: False)
        assert language_nullable(model("(a)?"), lambda _name: False)

    def test_seq_requires_all(self):
        nullable = {"a"}.__contains__
        assert not language_nullable(model("(a, b)"), nullable)
        assert language_nullable(model("(a, a)"), nullable)

    def test_choice_requires_any(self):
        nullable = {"a"}.__contains__
        assert language_nullable(model("(a | b)"), nullable)
        assert not language_nullable(model("(b | c)"), nullable)

    def test_plus_follows_item(self):
        nullable = {"a"}.__contains__
        assert language_nullable(model("(a)+"), nullable)
        assert not language_nullable(model("(b)+"), nullable)

    def test_pcdata_counts_as_nullable(self):
        assert language_nullable(PCData(), lambda _name: False)


class TestCanMention:
    def test_direct_name(self):
        assert can_mention(model("(a, b)"), "a", lambda _n: True)

    def test_absent_name(self):
        assert not can_mention(model("(a, b)"), "z", lambda _n: True)

    def test_seq_blocks_when_sibling_not_nullable(self):
        # mention `a` in (a, b): requires b erasable
        nothing = lambda _n: False
        assert not can_mention(model("(a, b)"), "a", nothing)
        assert can_mention(model("(a, b?)"), "a", nothing)
        assert can_mention(model("(a, b*)"), "a", nothing)

    def test_choice_does_not_constrain_other_branch(self):
        nothing = lambda _n: False
        assert can_mention(model("(a | b)"), "a", nothing)

    def test_repetition_single_iteration_suffices(self):
        nothing = lambda _n: False
        assert can_mention(model("(a)*"), "a", nothing)
        assert can_mention(model("(a)+"), "a", nothing)
        assert can_mention(model("((a, b))*"), "a", {"b"}.__contains__)
        assert not can_mention(model("((a, b))*"), "a", nothing)

    def test_pcdata_target(self):
        mixed = Star(Choice((PCData(), Name("a"))))
        assert can_mention(mixed, None, lambda _n: False)
        assert not can_mention(model("(a, b)"), None, lambda _n: True)


class TestMinCostWord:
    def test_sequence_adds(self):
        costs = {"a": 1.0, "b": 2.0}
        assert min_cost_word(model("(a, b)"), costs.__getitem__) == 3.0

    def test_choice_takes_min(self):
        costs = {"a": 5.0, "b": 2.0}
        assert min_cost_word(model("(a | b)"), costs.__getitem__) == 2.0

    def test_star_and_opt_free(self):
        costs = {"a": 5.0}
        assert min_cost_word(model("(a)*"), costs.__getitem__) == 0.0
        assert min_cost_word(model("(a)?"), costs.__getitem__) == 0.0

    def test_plus_pays_once(self):
        costs = {"a": 5.0}
        assert min_cost_word(model("(a)+"), costs.__getitem__) == 5.0

    def test_infinite_propagates_through_seq(self):
        costs = {"a": math.inf, "b": 1.0}
        assert math.isinf(min_cost_word(model("(a, b)"), costs.__getitem__))
        assert min_cost_word(model("(a | b)"), costs.__getitem__) == 1.0

    def test_pcdata_free(self):
        assert min_cost_word(PCData(), lambda _n: math.inf) == 0.0


class TestToText:
    @pytest.mark.parametrize(
        "text",
        [
            "(a, b)",
            "(a | b)",
            "(a?, (b | c), d)",
            "(a, (b | (c, d)))",
            "(a)*",
            "(a, b*)",
            "((a | b))+",
        ],
    )
    def test_round_trip_is_stable(self, text):
        first = to_text(model(text))
        second = to_text(model(first))
        assert first == second

    def test_figure1_example_renders(self):
        assert to_text(model("(b?, (c | f), d)")) == "(b?, (c | f), d)"
