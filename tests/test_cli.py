"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""

DOC_S = (
    "<r><a><b>A quick brown</b><c> fox jumps over a lazy</c>"
    " dog<e></e></a></r>"
)
DOC_W = (
    "<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c>"
    " dog</a></r>"
)


@pytest.fixture
def schema(tmp_path):
    path = tmp_path / "figure1.dtd"
    path.write_text(FIGURE1)
    return str(path)


@pytest.fixture
def doc_s_file(tmp_path):
    path = tmp_path / "s.xml"
    path.write_text(DOC_S)
    return str(path)


@pytest.fixture
def doc_w_file(tmp_path):
    path = tmp_path / "w.xml"
    path.write_text(DOC_W)
    return str(path)


class TestClassify:
    def test_figure1(self, schema, capsys):
        assert main(["classify", schema]) == 0
        out = capsys.readouterr().out
        assert "non-recursive" in out
        assert "m=7" in out

    def test_strong_note(self, tmp_path, capsys):
        path = tmp_path / "t1.dtd"
        path.write_text("<!ELEMENT a (a | b*)><!ELEMENT b EMPTY>")
        assert main(["classify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PV-strong" in out
        assert "depth bound" in out


class TestValidate:
    def test_invalid_document(self, schema, doc_s_file, capsys):
        assert main(["validate", schema, doc_s_file]) == 1
        assert "invalid" in capsys.readouterr().out

    def test_valid_document(self, schema, tmp_path, capsys):
        path = tmp_path / "ok.xml"
        path.write_text("<r><a><c>text</c><d></d></a></r>")
        assert main(["validate", schema, str(path)]) == 0
        assert "valid" in capsys.readouterr().out


class TestCheck:
    def test_potentially_valid(self, schema, doc_s_file, capsys):
        assert main(["check", schema, doc_s_file]) == 0
        assert "potentially valid" in capsys.readouterr().out

    def test_not_potentially_valid(self, schema, doc_w_file, capsys):
        assert main(["check", schema, doc_w_file]) == 1
        out = capsys.readouterr().out
        assert "NOT potentially valid" in out
        assert "/r/a[0]" in out

    @pytest.mark.parametrize("algorithm", ["kernel", "machine", "figure5", "earley"])
    def test_algorithms(self, schema, doc_s_file, algorithm):
        assert main(["check", schema, doc_s_file, "--algorithm", algorithm]) == 0


class TestComplete:
    def test_completes_s(self, schema, doc_s_file, capsys):
        assert main(["complete", schema, doc_s_file]) == 0
        out = capsys.readouterr().out
        assert "<d>A quick brown</d>" in out

    def test_refuses_w(self, schema, doc_w_file, capsys):
        assert main(["complete", schema, doc_w_file]) == 1
        assert "no completion" in capsys.readouterr().err


class TestVersion:
    def test_version_flag(self, capsys):
        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()


class TestServeCli:
    def test_negative_workers(self):
        assert main(["serve", "--workers", "-1"]) == 2

    def test_no_tcp_without_unix(self):
        assert main(["serve", "--no-tcp"]) == 2

    def test_bind_failure_is_runtime_error(self, tmp_path, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        _host, port = blocker.getsockname()
        try:
            # SO_REUSEADDR does not rescue an actively listening port.
            assert main(["serve", "--port", str(port)]) == 1
        finally:
            blocker.close()
        assert "error:" in capsys.readouterr().err

    def test_ring_must_be_positive(self):
        assert main(["serve", "--ring", "0"]) == 2
        assert main(["serve", "--ring", "-2"]) == 2


class TestRingCli:
    def test_ring_and_workers_are_exclusive(self, schema, doc_s_file):
        assert main(
            ["batch", schema, doc_s_file, "--ring", "a.sock",
             "--workers", "2"]
        ) == 2

    def test_empty_ring_address_list_is_usage_error(self, schema, doc_s_file):
        assert main(["batch", schema, doc_s_file, "--ring", ","]) == 2

    def test_ring_port_typo_is_usage_error(self, schema, doc_s_file, capsys):
        status = main(
            ["batch", schema, doc_s_file, "--ring", "127.0.0.1:875O"]
        )
        assert status == 2
        assert "bad ring address" in capsys.readouterr().err

    def test_batch_ring_round_trip(self, schema, doc_s_file, doc_w_file,
                                   tmp_path, capsys):
        from repro.server.server import ServerThread

        handles = [
            ServerThread(unix_path=str(tmp_path / f"shard-{i}.sock"),
                         port=0).start()
            for i in range(2)
        ]
        try:
            ring_arg = ",".join(handle.unix_path for handle in handles)
            status = main(
                ["batch", schema, doc_s_file, doc_w_file,
                 "--ring", ring_arg, "--stats"]
            )
        finally:
            for handle in handles:
                handle.stop()
        captured = capsys.readouterr()
        assert status == 1  # one document is not potentially valid
        assert f"{doc_s_file}: potentially valid" in captured.out
        assert "NOT potentially valid" in captured.out
        assert "on shard" in captured.err
        assert "ring:" in captured.err

    def test_batch_ring_unreachable_shard_is_runtime_error(
        self, schema, doc_s_file, tmp_path, capsys
    ):
        missing = str(tmp_path / "nobody.sock")
        status = main(["batch", schema, doc_s_file, "--ring", missing])
        assert status == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_ring_read_policy_round_trip(
        self, schema, doc_s_file, doc_w_file, tmp_path, capsys
    ):
        from repro.server.server import ServerThread

        handles = [
            ServerThread(unix_path=str(tmp_path / f"shard-{i}.sock"),
                         port=0).start()
            for i in range(2)
        ]
        try:
            ring_arg = ",".join(handle.unix_path for handle in handles)
            status = main(
                ["batch", schema, doc_s_file, doc_w_file,
                 "--ring", ring_arg, "--replicas", "2",
                 "--read-policy", "round-robin", "--stats"]
            )
            # Compile-once held under the balanced policy.
            compiles = sum(
                handle.server.registry.stats.misses for handle in handles
            )
        finally:
            for handle in handles:
                handle.stop()
        captured = capsys.readouterr()
        assert status == 1  # one document is not potentially valid
        assert "policy: round-robin" in captured.err
        assert compiles == 1

    def test_batch_read_policy_requires_ring(self, schema, doc_s_file,
                                             capsys):
        status = main(
            ["batch", schema, doc_s_file, "--read-policy", "round-robin"]
        )
        assert status == 2
        assert "--read-policy requires --ring" in capsys.readouterr().err

    def test_batch_unknown_read_policy_is_usage_error(self, schema,
                                                      doc_s_file):
        status = main(
            ["batch", schema, doc_s_file, "--ring", "a.sock",
             "--read-policy", "sticky"]
        )
        assert status == 2

    def test_cli_read_policies_match_the_protocol(self):
        from repro.cli import _READ_POLICIES
        from repro.server.protocol import READ_POLICIES

        assert _READ_POLICIES == READ_POLICIES

    def test_batch_ring_bad_dtd_is_usage_error(self, tmp_path, doc_s_file,
                                               capsys):
        # The ring client fingerprints the schema locally; a parse error
        # must exit 2 like the local batch path, not traceback.
        bad = tmp_path / "broken.dtd"
        bad.write_text("<!ELEMENT broken")
        status = main(
            ["batch", str(bad), doc_s_file, "--ring",
             str(tmp_path / "unused.sock")]
        )
        assert status == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_ring_starts_n_shards(self, tmp_path):
        # A real `repro serve --ring 2` subprocess: both shards come up
        # on suffixed socket paths, both answer, and SIGINT tears the
        # whole ring down cleanly — unlinking every socket (the stale
        # path regression, exercised through the CLI).
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        import repro
        from repro.server.client import ValidationClient

        base = str(tmp_path / "ring.sock")
        paths = [f"{base}.0", f"{base}.1"]
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--ring", "2",
             "--no-tcp", "--unix", base],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if all(os.path.exists(path) for path in paths):
                    break
                assert process.poll() is None, "serve --ring exited early"
                time.sleep(0.02)
            else:  # pragma: no cover - failure path
                pytest.fail("ring shards did not come up")
            for path in paths:
                with ValidationClient.connect_unix(path) as client:
                    assert client.check(FIGURE1, DOC_S)["potentially_valid"]
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=15) == 0
            assert not any(os.path.exists(path) for path in paths)
        finally:
            if process.poll() is None:  # pragma: no cover - failure path
                process.kill()
                process.wait(timeout=10)


class TestCacheCli:
    @pytest.fixture
    def store_dir(self, tmp_path):
        return str(tmp_path / "artifacts")

    def test_stats_on_empty_store(self, store_dir, capsys):
        assert main(["cache", "stats", "--store", store_dir]) == 0
        assert "0 artifact(s)" in capsys.readouterr().out

    def test_warm_then_stats_then_clear(self, schema, store_dir, capsys):
        assert main(["cache", "warm", schema, "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "(compiled)" in out
        assert main(["cache", "warm", schema, "--store", store_dir]) == 0
        assert "(already stored)" in capsys.readouterr().out
        assert main(["cache", "stats", "--store", store_dir]) == 0
        assert "1 artifact(s)" in capsys.readouterr().out
        assert main(["cache", "clear", "--store", store_dir]) == 0
        assert "removed 1 artifact(s)" in capsys.readouterr().out

    def test_warm_without_schemas_is_usage_error(self, store_dir, capsys):
        assert main(["cache", "warm", "--store", store_dir]) == 2
        assert "schema" in capsys.readouterr().err

    def test_stats_with_schemas_is_usage_error(self, schema, store_dir):
        assert main(["cache", "stats", schema, "--store", store_dir]) == 2

    def test_warm_bad_dtd_is_parse_error(self, tmp_path, store_dir):
        bad = tmp_path / "bad.dtd"
        bad.write_text("<!ELEMENT broken")
        assert main(["cache", "warm", str(bad), "--store", store_dir]) == 2

    def test_warm_unwritable_store_is_runtime_error(self, schema, tmp_path, capsys):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file occupying the store path")
        assert main(["cache", "warm", schema, "--store", str(blocked)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_default_store_dir_honors_env(self, schema, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(["cache", "warm", schema]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        assert "envcache" in capsys.readouterr().out


class TestErrors:
    def test_missing_file(self, schema):
        assert main(["check", schema, "/nonexistent.xml"]) == 2

    def test_bad_dtd(self, tmp_path, doc_s_file):
        path = tmp_path / "bad.dtd"
        path.write_text("<!ELEMENT broken")
        assert main(["check", str(path), doc_s_file]) == 2

    def test_malformed_xml(self, schema, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<r><a></r>")
        assert main(["check", schema, str(path)]) == 2


class TestRingStatusCli:
    def test_all_up_reports_and_exits_zero(self, tmp_path, capsys):
        from repro.server.server import ServerThread

        handles = [
            ServerThread(unix_path=str(tmp_path / f"shard-{i}.sock"),
                         port=0).start()
            for i in range(2)
        ]
        for handle in handles:
            handle.server.set_ring_view(
                4, [h.unix_path for h in handles], 2
            )
        try:
            addrs = ",".join(handle.unix_path for handle in handles)
            status = main(["ring-status", addrs, "--stats"])
        finally:
            for handle in handles:
                handle.stop()
        out = capsys.readouterr().out
        assert status == 0
        assert out.count("up, epoch=4") == 2
        assert "registry:" in out
        # The load/heat observability the least-inflight policy needs.
        assert out.count("inflight: 0") == 2
        assert "hot schemas:" in out

    def test_down_shard_exits_one(self, tmp_path, capsys):
        from repro.server.server import ServerThread

        handle = ServerThread(
            unix_path=str(tmp_path / "up.sock"), port=0
        ).start()
        dead = str(tmp_path / "nobody.sock")
        try:
            status = main(
                ["ring-status", f"{handle.unix_path},{dead}", "--timeout", "2"]
            )
        finally:
            handle.stop()
        out = capsys.readouterr().out
        assert status == 1
        assert "DOWN" in out
        assert "up, epoch=" in out

    def test_epoch_disagreement_warns(self, tmp_path, capsys):
        from repro.server.server import ServerThread

        handles = [
            ServerThread(unix_path=str(tmp_path / f"shard-{i}.sock"),
                         port=0).start()
            for i in range(2)
        ]
        handles[0].server.set_ring_view(1, ["a"], 1)
        handles[1].server.set_ring_view(2, ["a"], 1)
        try:
            addrs = ",".join(handle.unix_path for handle in handles)
            status = main(["ring-status", addrs])
        finally:
            for handle in handles:
                handle.stop()
        captured = capsys.readouterr()
        assert status == 0
        assert "disagree on the ring epoch" in captured.err

    def test_bad_address_is_usage_error(self, capsys):
        assert main(["ring-status", "127.0.0.1:875O"]) == 2
        assert "bad ring address" in capsys.readouterr().err

    def test_empty_address_list_is_usage_error(self):
        assert main(["ring-status", ","]) == 2

    def test_discover_bootstraps_the_ring_from_one_shard(
        self, tmp_path, capsys
    ):
        from repro.server.server import ServerThread

        handles = [
            ServerThread(unix_path=str(tmp_path / f"shard-{i}.sock"),
                         port=0).start()
            for i in range(2)
        ]
        for handle in handles:
            handle.server.set_ring_view(
                4, [h.unix_path for h in handles], 2
            )
        try:
            # One seed address; the full member list comes from its view
            # (no coordinator is running anywhere in this test).
            status = main(
                ["ring-status", "--discover", handles[0].unix_path]
            )
        finally:
            for handle in handles:
                handle.stop()
        out = capsys.readouterr().out
        assert status == 0
        assert out.count("up, epoch=4") == 2

    def test_discover_and_addrs_are_mutually_exclusive(self, capsys):
        status = main(
            ["ring-status", "a.sock", "--discover", "b.sock"]
        )
        assert status == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_no_addrs_and_no_discover_is_usage_error(self, capsys):
        assert main(["ring-status"]) == 2
        assert "--discover" in capsys.readouterr().err

    def test_discover_from_a_dark_seed_is_a_runtime_error(
        self, tmp_path, capsys
    ):
        dead = str(tmp_path / "nobody.sock")
        status = main(["ring-status", "--discover", dead, "--timeout", "2"])
        assert status == 1
        assert "cannot discover" in capsys.readouterr().err


class TestServeReplicasCli:
    def test_replicas_must_fit_the_ring(self):
        assert main(["serve", "--ring", "2", "--replicas", "3"]) == 2
        assert main(["serve", "--ring", "2", "--replicas", "0"]) == 2

    def test_batch_replicas_must_be_positive(self, schema, doc_s_file):
        assert main(
            ["batch", schema, doc_s_file, "--ring", "a.sock",
             "--replicas", "0"]
        ) == 2

    def test_serve_read_policy_requires_a_ring(self, capsys):
        assert main(["serve", "--read-policy", "round-robin"]) == 2
        assert "--read-policy requires" in capsys.readouterr().err
        assert main(
            ["serve", "--ring", "1", "--read-policy", "least-inflight"]
        ) == 2

    def test_serve_ring_publishes_the_view(self, tmp_path):
        # `serve --ring 2 --replicas 2` publishes epoch 1 to both shards:
        # health reports it and replies carry the stamp.
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        import repro
        from repro.server.client import ValidationClient

        base = str(tmp_path / "ring.sock")
        paths = [f"{base}.0", f"{base}.1"]
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--ring", "2",
             "--replicas", "2", "--no-tcp", "--unix", base],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if all(os.path.exists(path) for path in paths):
                    break
                assert process.poll() is None, "serve --ring exited early"
                time.sleep(0.02)
            else:  # pragma: no cover - failure path
                pytest.fail("ring shards did not come up")
            for path in paths:
                with ValidationClient.connect_unix(path) as client:
                    deadline = time.monotonic() + 10
                    while time.monotonic() < deadline:
                        health = client.health()
                        if health["epoch"] is not None:
                            break
                        time.sleep(0.02)
                    assert health["epoch"] == 1
                    assert health["replica_count"] == 2
                    assert sorted(health["members"]) == paths
                    reply = client.check(FIGURE1, DOC_S)
                    assert reply["epoch"] == 1
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=15) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - failure path
                process.kill()
                process.wait(timeout=10)
