"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""

DOC_S = (
    "<r><a><b>A quick brown</b><c> fox jumps over a lazy</c>"
    " dog<e></e></a></r>"
)
DOC_W = (
    "<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c>"
    " dog</a></r>"
)


@pytest.fixture
def schema(tmp_path):
    path = tmp_path / "figure1.dtd"
    path.write_text(FIGURE1)
    return str(path)


@pytest.fixture
def doc_s_file(tmp_path):
    path = tmp_path / "s.xml"
    path.write_text(DOC_S)
    return str(path)


@pytest.fixture
def doc_w_file(tmp_path):
    path = tmp_path / "w.xml"
    path.write_text(DOC_W)
    return str(path)


class TestClassify:
    def test_figure1(self, schema, capsys):
        assert main(["classify", schema]) == 0
        out = capsys.readouterr().out
        assert "non-recursive" in out
        assert "m=7" in out

    def test_strong_note(self, tmp_path, capsys):
        path = tmp_path / "t1.dtd"
        path.write_text("<!ELEMENT a (a | b*)><!ELEMENT b EMPTY>")
        assert main(["classify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PV-strong" in out
        assert "depth bound" in out


class TestValidate:
    def test_invalid_document(self, schema, doc_s_file, capsys):
        assert main(["validate", schema, doc_s_file]) == 1
        assert "invalid" in capsys.readouterr().out

    def test_valid_document(self, schema, tmp_path, capsys):
        path = tmp_path / "ok.xml"
        path.write_text("<r><a><c>text</c><d></d></a></r>")
        assert main(["validate", schema, str(path)]) == 0
        assert "valid" in capsys.readouterr().out


class TestCheck:
    def test_potentially_valid(self, schema, doc_s_file, capsys):
        assert main(["check", schema, doc_s_file]) == 0
        assert "potentially valid" in capsys.readouterr().out

    def test_not_potentially_valid(self, schema, doc_w_file, capsys):
        assert main(["check", schema, doc_w_file]) == 1
        out = capsys.readouterr().out
        assert "NOT potentially valid" in out
        assert "/r/a[0]" in out

    @pytest.mark.parametrize("algorithm", ["machine", "figure5", "earley"])
    def test_algorithms(self, schema, doc_s_file, algorithm):
        assert main(["check", schema, doc_s_file, "--algorithm", algorithm]) == 0


class TestComplete:
    def test_completes_s(self, schema, doc_s_file, capsys):
        assert main(["complete", schema, doc_s_file]) == 0
        out = capsys.readouterr().out
        assert "<d>A quick brown</d>" in out

    def test_refuses_w(self, schema, doc_w_file, capsys):
        assert main(["complete", schema, doc_w_file]) == 1
        assert "no completion" in capsys.readouterr().err


class TestErrors:
    def test_missing_file(self, schema):
        assert main(["check", schema, "/nonexistent.xml"]) == 2

    def test_bad_dtd(self, tmp_path, doc_s_file):
        path = tmp_path / "bad.dtd"
        path.write_text("<!ELEMENT broken")
        assert main(["check", str(path), doc_s_file]) == 2

    def test_malformed_xml(self, schema, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<r><a></r>")
        assert main(["check", schema, str(path)]) == 2
