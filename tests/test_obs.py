"""Tests for the observability layer: metrics, tracing, events, scrapes.

Covers the obs primitives in isolation (histogram bucket math and
quantiles, merge associativity, Prometheus rendering, the event-log
line schema, trace contexts) and the instrumented stack end to end: the
``metrics`` wire op, opt-in tracing across a forced ring failover, the
``--hot-limit`` / ``--slow-ms`` server knobs, registry/store event
counters, and the ring-wide CLI aggregation.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.events import EventLog
from repro.obs.metrics import (
    CATALOG,
    CATALOG_NAMES,
    Counter,
    Histogram,
    MetricsRegistry,
    Stopwatch,
    counter_value,
    histogram_entries,
    histogram_quantile,
    merge_snapshots,
)
from repro.obs.promtext import render, validate_exposition
from repro.obs.trace import TraceContext, new_trace_id
from repro.server.ring import ShardedClient, member_label
from repro.server.server import ValidationServer, ServerThread

DTD = """
<!ELEMENT doc (title, para+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT para (#PCDATA)>
"""
DOC = "<doc><title>t</title><para>p</para></doc>"


def schema_text(index: int) -> str:
    """A family of structurally distinct DTDs (distinct fingerprints)."""
    return (
        f"<!ELEMENT r{index} (a{index}*)>"
        f"<!ELEMENT a{index} (#PCDATA)>"
    )


def doc_text(index: int) -> str:
    return f"<r{index}><a{index}>x</a{index}></r{index}>"


# -- metric primitives -------------------------------------------------------


class TestHistogram:
    def test_observations_land_in_log_buckets(self):
        h = Histogram(bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 0.5):
            h.observe(value)
        entry = h._entry()
        assert entry["counts"] == [1, 1, 1, 1]  # last is the +Inf bucket
        assert entry["count"] == 4
        assert entry["sum"] == pytest.approx(0.5555)

    def test_boundary_value_is_inclusive(self):
        h = Histogram(bounds=(0.001, 0.01))
        h.observe(0.001)
        assert h._entry()["counts"] == [1, 0, 0]

    def test_quantiles_interpolate_inside_the_winning_bucket(self):
        h = Histogram(bounds=(0.1, 0.2, 0.4))
        for _ in range(100):
            h.observe(0.15)
        # All mass in the (0.1, 0.2] bucket: every quantile lands there.
        assert 0.1 <= h.quantile(0.5) <= 0.2
        assert 0.1 <= h.quantile(0.99) <= 0.2
        # p50 sits mid-bucket under linear interpolation.
        assert h.quantile(0.5) == pytest.approx(0.15, abs=0.011)

    def test_inf_bucket_degrades_to_the_largest_finite_bound(self):
        h = Histogram(bounds=(0.1, 0.2))
        h.observe(5.0)
        assert h.quantile(0.99) == pytest.approx(0.2)

    def test_empty_histogram_has_no_quantile(self):
        assert Histogram(bounds=(0.1,)).quantile(0.5) is None

    def test_quantile_range_is_validated(self):
        h = Histogram(bounds=(0.1,))
        h.observe(0.05)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_unsorted_bounds_are_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(0.2, 0.1))


class TestCounterAndStopwatch:
    def test_counters_only_go_up(self):
        c = Counter()
        c.inc()
        c.inc(2)
        assert c.value == 3
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_stopwatch_readings_agree(self):
        watch = Stopwatch()
        first_ms = watch.elapsed_ms
        later_seconds = watch.seconds
        # Both read the same monotonic start; time only moves forward.
        assert 0 <= first_ms <= later_seconds * 1000.0
        assert first_ms == round(first_ms, 3)


class TestMergeSnapshots:
    def snapshot(self, value: int) -> dict:
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", op="check").inc(value)
        h = registry.histogram("repro_request_seconds",
                               bounds=(0.25, 1.0), op="check")
        for _ in range(value):
            h.observe(0.5)  # exactly representable: sums associate exactly
        return registry.snapshot()

    def test_counters_add_and_histograms_add_bucketwise(self):
        merged = merge_snapshots([self.snapshot(2), self.snapshot(3)])
        assert counter_value(merged, "repro_requests_total", op="check") == 5
        entry = histogram_entries(merged, "repro_request_seconds")[0]
        assert entry["count"] == 5
        assert entry["counts"] == [0, 5, 0]

    def test_merge_is_associative(self):
        a, b, c = self.snapshot(1), self.snapshot(2), self.snapshot(4)
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left == right

    def test_merge_is_commutative(self):
        a, b = self.snapshot(1), self.snapshot(2)
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    def test_mismatched_bucket_bounds_are_rejected(self):
        other = MetricsRegistry()
        other.histogram("repro_request_seconds",
                        bounds=(0.5,), op="check").observe(0.1)
        with pytest.raises(ValueError):
            merge_snapshots([self.snapshot(1), other.snapshot()])

    def test_quantile_of_a_merge_equals_quantile_of_the_union(self):
        merged = merge_snapshots([self.snapshot(10), self.snapshot(10)])
        entry = histogram_entries(merged, "repro_request_seconds")[0]
        # All 20 observations sit in the (0.25, 1.0] bucket.
        assert 0.25 <= histogram_quantile(entry, 0.99) <= 1.0


class TestMetricsRegistry:
    def test_same_name_and_labels_share_a_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_requests_total", op="check") is (
            registry.counter("repro_requests_total", op="check")
        )

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_requests_total")

    def test_disabled_registry_hands_out_noops_and_snapshots_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("repro_requests_total", op="check").inc()
        registry.gauge("repro_inflight").set(5)
        registry.histogram("repro_request_seconds", op="check").observe(0.1)
        assert registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }


# -- Prometheus exposition ---------------------------------------------------


class TestPromtext:
    def test_golden_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_batch_items_total").inc(7)
        registry.gauge("repro_inflight").set(2)
        h = registry.histogram("repro_request_seconds",
                               bounds=(0.001, 0.01), op="check")
        h.observe(0.0005)
        h.observe(0.005)
        h.observe(5.0)
        assert render(registry.snapshot()) == (
            "# HELP repro_batch_items_total Documents checked inside "
            "check-batch streams.\n"
            "# TYPE repro_batch_items_total counter\n"
            "repro_batch_items_total 7\n"
            "# HELP repro_inflight Checks currently in flight on this "
            "server.\n"
            "# TYPE repro_inflight gauge\n"
            "repro_inflight 2\n"
            "# HELP repro_request_seconds End-to-end request latency, "
            "by wire op.\n"
            "# TYPE repro_request_seconds histogram\n"
            'repro_request_seconds_bucket{op="check",le="0.001"} 1\n'
            'repro_request_seconds_bucket{op="check",le="0.01"} 2\n'
            'repro_request_seconds_bucket{op="check",le="+Inf"} 3\n'
            'repro_request_seconds_sum{op="check"} 5.0055\n'
            'repro_request_seconds_count{op="check"} 3\n'
        )

    def test_rendering_validates(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", op="check").inc()
        registry.histogram("repro_verdict_seconds", backend="kernel").observe(
            0.002
        )
        text = render(registry.snapshot())
        assert validate_exposition(text) > 0

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_ring_reads_total", member='a"b\\c').inc()
        text = render(registry.snapshot())
        assert validate_exposition(text) == 1
        assert '\\"' in text

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_exposition("no exposition at all\n")
        with pytest.raises(ValueError):
            validate_exposition("repro_requests_total 1")  # no newline


# -- the event log -----------------------------------------------------------


class TestEventLog:
    def test_disabled_by_default(self):
        log = EventLog()
        assert not log.enabled
        log.emit("member-down", member="x")  # a no-op, not an error

    def test_lines_are_json_with_ts_and_event(self):
        lines: list[str] = []
        log = EventLog(lines.append)
        log.emit("failover", member="a.sock", owner="b.sock")
        record = json.loads(lines[0])
        assert record["event"] == "failover"
        assert isinstance(record["ts"], float)
        assert record["member"] == "a.sock"
        assert record["owner"] == "b.sock"

    def test_unserializable_fields_degrade_to_str(self):
        lines: list[str] = []
        EventLog(lines.append).emit("member-up", member={1, 2})
        assert json.loads(lines[0])["event"] == "member-up"

    def test_to_path_appends_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog.to_path(str(path))
        assert log.enabled
        log.emit("epoch-published", epoch=3)
        log.emit("epoch-published", epoch=4)
        log.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["epoch"] for e in events] == [3, 4]


# -- trace contexts ----------------------------------------------------------


class TestTraceContext:
    def test_falsy_trace_makes_no_context(self):
        assert TraceContext.make(False) is None
        assert TraceContext.make(None) is None
        assert TraceContext.make("") is None

    def test_true_draws_an_id_and_strings_become_the_id(self):
        assert len(TraceContext.make(True).id) == 16
        assert TraceContext.make("my-id").id == "my-id"
        assert len(new_trace_id()) == 16

    def test_hops_fold_in_server_spans_and_count_failovers(self):
        ctx = TraceContext("t1")
        first = ctx.begin_hop("dead.sock")
        ctx.fail_hop(first, ConnectionRefusedError("refused"))
        second = ctx.begin_hop("live.sock")
        ctx.end_hop(
            second,
            {"ok": True, "trace": {"id": "t1", "span": {"total_ms": 1.0}}},
        )
        out = ctx.as_dict()
        assert out["id"] == "t1"
        assert out["failovers"] == 1
        assert "error" in out["hops"][0]
        assert out["hops"][1]["span"] == {"total_ms": 1.0}
        assert all("_started" not in hop for hop in out["hops"])


# -- the instrumented server -------------------------------------------------


class TestServerMetricsOp:
    def test_scrape_reflects_served_requests(self, tmp_path, client):
        assert client.check(DTD, DOC)["ok"] is True
        reply = client.metrics()
        assert reply["op"] == "metrics"
        snapshot = reply["metrics"]
        assert counter_value(snapshot, "repro_requests_total", op="check") == 1
        assert counter_value(snapshot, "repro_dispatch_total") >= 1
        entries = histogram_entries(snapshot, "repro_request_seconds")
        assert any(e["count"] for e in entries)
        phases = {
            e["labels"]["phase"]
            for e in histogram_entries(snapshot, "repro_phase_seconds")
            if e["count"]
        }
        assert {"parse", "queue", "verdict"} <= phases
        assert validate_exposition(reply["prometheus"]) > 0

    def test_every_scraped_name_is_in_the_catalog(self, client):
        client.check(DTD, DOC)
        snapshot = client.metrics()["metrics"]
        names = {
            entry["name"]
            for kind in ("counters", "gauges", "histograms")
            for entry in snapshot[kind]
        }
        assert names <= CATALOG_NAMES

    def test_untraced_replies_carry_no_trace(self, client):
        assert "trace" not in client.check(DTD, DOC)

    def test_traced_reply_carries_the_server_span(self, client):
        reply = client.check(DTD, DOC, trace="abc123")
        trace = reply["trace"]
        assert trace["id"] == "abc123"
        span = trace["span"]
        assert span["op"] == "check"
        assert span["total_ms"] >= 0
        assert span["backend"] in ("kernel", "machine", "figure5", "earley")
        assert counter_value(
            client.metrics()["metrics"], "repro_traced_requests_total"
        ) == 1

    def test_traced_batch_items_and_trailer(self, client):
        replies, trailer = client.check_batch(DTD, [DOC, DOC], trace="b-1")
        assert all(r["trace"]["id"] == "b-1" for r in replies)
        assert trailer["trace"]["span"]["items"] == 2
        snapshot = client.metrics()["metrics"]
        assert counter_value(snapshot, "repro_batch_items_total") == 2

    def test_empty_trace_is_a_bad_request(self, client):
        from repro.server.client import ServerError

        with pytest.raises(ServerError) as info:
            client.request({"op": "check", "dtd": DTD, "doc": DOC,
                            "trace": ""})
        assert info.value.code == "bad-request"

    @pytest.fixture()
    def client(self, tmp_path):
        from repro.server.client import ValidationClient

        with ServerThread(
            unix_path=str(tmp_path / "pv.sock"), port=0
        ) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                yield client


class TestServerKnobs:
    def test_hot_limit_bounds_the_stats_hot_list_and_is_reported(
        self, tmp_path
    ):
        from repro.server.client import ValidationClient

        with ServerThread(
            unix_path=str(tmp_path / "pv.sock"), port=0,
            server=ValidationServer(hot_limit=2),
        ) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                for index in range(4):
                    client.check(schema_text(index), doc_text(index))
                stats = client.stats()
        assert stats["server"]["hot_limit"] == 2
        assert len(stats["hot"]) == 2

    def test_slow_ms_zero_counts_and_logs_every_request(self, tmp_path):
        from repro.server.client import ValidationClient

        lines: list[str] = []
        server = ValidationServer(slow_ms=0.0, events=EventLog(lines.append))
        with ServerThread(
            unix_path=str(tmp_path / "pv.sock"), port=0, server=server
        ) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                client.check(DTD, DOC, trace="slow-1")
                snapshot = client.metrics()["metrics"]
        assert counter_value(snapshot, "repro_slow_requests_total") >= 1
        events = [json.loads(line) for line in lines]
        slow = [e for e in events if e["event"] == "slow-request"]
        assert slow and slow[0]["op"] == "check"
        assert slow[0]["trace"] == "slow-1"

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            ValidationServer(hot_limit=0)
        with pytest.raises(ValueError):
            ValidationServer(slow_ms=-1.0)

    def test_stripped_server_serves_but_snapshots_empty(self, tmp_path):
        from repro.server.client import ValidationClient

        server = ValidationServer(metrics=MetricsRegistry(enabled=False))
        with ServerThread(
            unix_path=str(tmp_path / "pv.sock"), port=0, server=server
        ) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                assert client.check(DTD, DOC)["ok"] is True
                reply = client.metrics()
        assert reply["metrics"] == {
            "counters": [], "gauges": [], "histograms": []
        }


class TestRegistryAndStoreEventCounters:
    def test_registry_events_mirror_into_metrics(self):
        from repro.dtd.parser import parse_dtd
        from repro.service.registry import SchemaRegistry

        metrics = MetricsRegistry()
        registry = SchemaRegistry(maxsize=1)
        registry.attach_metrics(metrics)
        registry.get(parse_dtd(schema_text(0)))
        registry.get(parse_dtd(schema_text(0)))
        registry.get(parse_dtd(schema_text(1)))  # evicts schema 0
        snapshot = metrics.snapshot()
        events = "repro_registry_events_total"
        assert counter_value(snapshot, events, event="miss") == 2
        assert counter_value(snapshot, events, event="hit") == 1
        assert counter_value(snapshot, events, event="eviction") == 1

    def test_store_events_mirror_into_metrics(self, tmp_path):
        from repro.dtd.parser import parse_dtd
        from repro.service.compiled import compile_schema
        from repro.service.store import ArtifactStore

        metrics = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store")
        store.attach_observability(metrics=metrics)
        schema = compile_schema(parse_dtd(schema_text(0)))
        store.save(schema)
        assert store.load(schema.fingerprint) is not None
        assert store.load("0" * 64) is None
        snapshot = metrics.snapshot()
        events = "repro_store_events_total"
        assert counter_value(snapshot, events, event="save") == 1
        assert counter_value(snapshot, events, event="hit") == 1
        assert counter_value(snapshot, events, event="miss") == 1


# -- the instrumented ring ---------------------------------------------------


class TestTracedFailover:
    def test_trace_spans_a_forced_failover(self, tmp_path):
        live = ServerThread(
            unix_path=str(tmp_path / "live.sock"), port=0
        ).start()
        live_path = live.unix_path
        dead_path = str(tmp_path / "dead.sock")
        try:
            with ShardedClient([live_path, dead_path], timeout=2.0) as ring:
                index = next(
                    i for i in range(64)
                    if member_label(
                        ring.ring.owner(ring.fingerprint(schema_text(i)))
                    ) == dead_path
                )
                reply = ring.check(
                    schema_text(index), doc_text(index), trace=True
                )
                telemetry = ring.telemetry.snapshot()
        finally:
            live.stop()
        assert reply["ok"] is True
        trace = reply["trace"]
        assert trace["failovers"] == 1
        hops = trace["hops"]
        assert [hop["member"] for hop in hops] == [dead_path, live_path]
        assert "error" in hops[0]
        assert hops[1]["span"]["op"] == "check"
        assert counter_value(telemetry, "repro_ring_failovers_total") == 1
        assert counter_value(
            telemetry, "repro_ring_reads_total", member=live_path
        ) == 1

    def test_failover_and_liveness_events_are_emitted(self, tmp_path):
        lines: list[str] = []
        live = ServerThread(
            unix_path=str(tmp_path / "live.sock"), port=0
        ).start()
        dead_path = str(tmp_path / "dead.sock")
        try:
            with ShardedClient(
                [live.unix_path, dead_path], timeout=2.0,
                events=EventLog(lines.append),
            ) as ring:
                index = next(
                    i for i in range(64)
                    if member_label(
                        ring.ring.owner(ring.fingerprint(schema_text(i)))
                    ) == dead_path
                )
                ring.check(schema_text(index), doc_text(index))
        finally:
            live.stop()
        events = [json.loads(line)["event"] for line in lines]
        assert "member-down" in events
        assert "failover" in events


class TestRingMetricsAggregation:
    def test_ring_wide_scrape_merges_reachable_shards(self, tmp_path):
        shards = [
            ServerThread(
                unix_path=str(tmp_path / f"shard-{i}.sock"), port=0
            ).start()
            for i in range(2)
        ]
        dead_path = str(tmp_path / "dead.sock")
        members = [s.unix_path for s in shards] + [dead_path]
        try:
            with ShardedClient(members, timeout=2.0) as ring:
                for index in range(8):
                    ring.check(schema_text(index), doc_text(index))
                scrape = ring.metrics()
        finally:
            for shard in shards:
                shard.stop()
        assert scrape["shards"][dead_path] is None
        live_snapshots = [
            snapshot for snapshot in scrape["shards"].values()
            if snapshot is not None
        ]
        assert len(live_snapshots) == 2
        total = sum(
            counter_value(s, "repro_requests_total", op="check")
            for s in live_snapshots
        )
        merged_total = counter_value(
            scrape["merged"], "repro_requests_total", op="check"
        )
        assert merged_total == total == 8
        reads = counter_value(scrape["client"], "repro_ring_reads_total")
        assert reads == 8


class TestCoordinatorScrape:
    def test_scrape_metrics_totals_and_deltas(self, tmp_path):
        from repro.server.client import ValidationClient
        from repro.server.coordinator import RingCoordinator

        with ServerThread(
            unix_path=str(tmp_path / "shard.sock"), port=0
        ) as handle:
            coordinator = RingCoordinator([handle.unix_path], timeout=2.0)
            try:
                with ValidationClient.connect_unix(handle.unix_path) as client:
                    client.check(DTD, DOC)
                first = coordinator.scrape_metrics()
                with ValidationClient.connect_unix(handle.unix_path) as client:
                    client.check(DTD, DOC)
                second = coordinator.scrape_metrics()
                status = coordinator.status()
            finally:
                coordinator.stop()
        assert first["totals"]["repro_requests_total"] >= 1
        assert second["deltas"]["repro_requests_total"] == pytest.approx(
            second["totals"]["repro_requests_total"]
            - first["totals"]["repro_requests_total"]
        )
        assert status["metrics_deltas"] == second["deltas"]


# -- the CLI -----------------------------------------------------------------


class TestCliMetrics:
    def ring(self, tmp_path, count=2):
        return [
            ServerThread(
                unix_path=str(tmp_path / f"shard-{i}.sock"), port=0
            ).start()
            for i in range(count)
        ]

    def test_metrics_aggregates_ring_wide(self, tmp_path, capsys):
        from repro.server.client import ValidationClient

        shards = self.ring(tmp_path)
        try:
            with ValidationClient.connect_unix(shards[0].unix_path) as client:
                client.check(DTD, DOC)
            addrs = ",".join(s.unix_path for s in shards)
            assert main(["metrics", addrs]) == 0
            out = capsys.readouterr().out
            assert "ring: requests=" in out
            assert "latency by op:" in out
            assert main(["metrics", addrs, "--prometheus"]) == 0
            prom = capsys.readouterr().out
            assert validate_exposition(prom) > 0
            assert "repro_requests_total" in prom
        finally:
            for shard in shards:
                shard.stop()

    def test_metrics_discovers_the_ring_from_one_shard(
        self, tmp_path, capsys
    ):
        from repro.server.client import ValidationClient

        shards = self.ring(tmp_path)
        for shard in shards:
            shard.server.set_ring_view(
                1, [s.unix_path for s in shards], 2
            )
        try:
            with ValidationClient.connect_unix(shards[0].unix_path) as client:
                client.check(DTD, DOC)
            assert main(["metrics", "--discover", shards[0].unix_path]) == 0
            out = capsys.readouterr().out
            assert "ring: requests=" in out
        finally:
            for shard in shards:
                shard.stop()

    def test_metrics_exits_1_when_a_shard_is_down(self, tmp_path, capsys):
        shards = self.ring(tmp_path, count=1)
        dead = str(tmp_path / "dead.sock")
        try:
            assert main(["metrics", f"{shards[0].unix_path},{dead}"]) == 1
            captured = capsys.readouterr()
            assert "DOWN" in captured.err
            assert "ring: requests=" in captured.out  # survivors still print
        finally:
            shards[0].stop()

    def test_ring_status_metrics_flag(self, tmp_path, capsys):
        shards = self.ring(tmp_path, count=1)
        try:
            assert main(["ring-status", shards[0].unix_path, "--metrics"]) == 0
            assert "ring: requests=" in capsys.readouterr().out
        finally:
            shards[0].stop()

    def test_serve_knob_validation_is_a_usage_error(self, capsys):
        assert main(["serve", "--hot-limit", "0"]) == 2
        assert "--hot-limit" in capsys.readouterr().err
        assert main(["serve", "--slow-ms", "-5"]) == 2
        assert "--slow-ms" in capsys.readouterr().err


# -- catalog hygiene ---------------------------------------------------------


class TestCatalog:
    def test_catalog_names_are_unique(self):
        names = [spec.name for spec in CATALOG]
        assert len(names) == len(set(names))

    def test_catalog_kinds_are_valid(self):
        assert {spec.kind for spec in CATALOG} <= {
            "counter", "gauge", "histogram"
        }
