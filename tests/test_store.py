"""Tests for the persistent on-disk artifact store and its registry hookup."""

from __future__ import annotations

import os

import pytest

from repro.dtd.parser import parse_dtd
from repro.service.compiled import CompiledSchema, compile_schema
from repro.service.registry import SchemaRegistry
from repro.service.store import (
    STORE_FORMAT_VERSION,
    STORE_MAGIC,
    SUPPORTED_FORMAT_VERSIONS,
    ArtifactStore,
    artifact_format_version,
    decode_artifact,
    default_store_dir,
)

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""

PLAY = "<!ELEMENT play (act+)><!ELEMENT act (#PCDATA)>"


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


@pytest.fixture
def schema():
    return compile_schema(parse_dtd(FIGURE1))


class TestSaveLoad:
    def test_roundtrip(self, store, schema):
        path = store.save(schema)
        assert path.exists()
        loaded = store.load(schema.fingerprint)
        assert loaded is not None
        assert loaded.fingerprint == schema.fingerprint
        assert loaded.dtd == schema.dtd
        # The loaded artifact answers verdicts like the original.
        assert loaded.checker().check_content("r", ["a"])

    def test_header_is_versioned(self, store, schema):
        path = store.save(schema)
        first_line = path.read_bytes().split(b"\n", 1)[0]
        assert first_line == f"{STORE_MAGIC} {STORE_FORMAT_VERSION}".encode()

    def test_missing_is_a_miss(self, store):
        assert store.load("0" * 64) is None
        assert store.stats.misses == 1
        assert store.stats.corrupt == 0

    def test_contains_and_fingerprints(self, store, schema):
        assert schema.fingerprint not in store
        store.save(schema)
        assert schema.fingerprint in store
        assert store.fingerprints() == [schema.fingerprint]
        assert len(store) == 1

    def test_save_is_atomic_no_temp_left_behind(self, store, schema):
        store.save(schema)
        leftovers = [
            name
            for name in os.listdir(store.directory)
            if name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_clear(self, store, schema):
        store.save(schema)
        store.save(compile_schema(parse_dtd(PLAY)))
        assert store.clear() == 2
        assert len(store) == 0

    def test_orphaned_temp_files_are_not_artifacts(self, store, schema):
        store.save(schema)
        orphan = store.directory / ".tmp-orphan.pkl"
        orphan.write_bytes(b"a saver died mid-write")
        assert len(store) == 1
        assert store.stats.artifacts == 1
        assert store.fingerprints() == [schema.fingerprint]
        assert store.clear() == 1  # the orphan is swept but not counted
        assert list(store.directory.iterdir()) == []

    def test_stats_counts_bytes(self, store, schema):
        store.save(schema)
        stats = store.stats
        assert stats.artifacts == 1
        assert stats.total_bytes > 0
        assert stats.saves == 1


class TestCorruptionTolerance:
    """Every defect is a miss that falls back to recompilation, never an error."""

    def test_truncated_payload(self, store, schema):
        path = store.save(schema)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert store.load(schema.fingerprint) is None
        assert store.stats.corrupt == 1
        assert not path.exists()  # unlinked so the next save replaces it

    def test_garbage_bytes(self, store, schema):
        path = store.save(schema)
        path.write_bytes(b"\x00\xff garbage, definitely not a pickle \x00")
        assert store.load(schema.fingerprint) is None
        assert store.stats.corrupt == 1

    def test_wrong_magic(self, store, schema):
        path = store.save(schema)
        blob = path.read_bytes()
        path.write_bytes(b"some-other-tool 1\n" + blob.split(b"\n", 1)[1])
        assert store.load(schema.fingerprint) is None

    def test_future_format_version(self, store, schema):
        path = store.save(schema)
        blob = path.read_bytes()
        header = f"{STORE_MAGIC} {STORE_FORMAT_VERSION + 1}\n".encode()
        path.write_bytes(header + blob.split(b"\n", 1)[1])
        assert store.load(schema.fingerprint) is None

    def test_renamed_file_fingerprint_mismatch(self, store, schema):
        """A file whose payload is a different schema does not satisfy a load."""
        store.save(schema)
        other = compile_schema(parse_dtd(PLAY))
        os.replace(
            store.path_for(schema.fingerprint), store.path_for(other.fingerprint)
        )
        assert store.load(other.fingerprint) is None
        assert store.stats.corrupt == 1

    def test_empty_file(self, store, schema):
        path = store.path_for(schema.fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"")
        assert store.load(schema.fingerprint) is None


def _write_old_artifact(
    store: ArtifactStore, schema: CompiledSchema, version: int
) -> None:
    """An authentic older-format file: versioned header, slimmer pickle.

    v1 carried neither the kernel tables nor the coarse summary; v2 added
    the tables but predates the summary.
    """
    import pickle

    old_layout = CompiledSchema(
        dtd=schema.dtd,
        fingerprint=schema.fingerprint,
        analysis=schema.analysis,
        dag=schema.dag,
        compile_seconds=schema.compile_seconds,
        tables=schema.tables if version >= 2 else None,
        coarse=None,
    )
    blob = f"{STORE_MAGIC} {version}\n".encode() + pickle.dumps(
        old_layout, protocol=pickle.HIGHEST_PROTOCOL
    )
    store.directory.mkdir(parents=True, exist_ok=True)
    store.path_for(schema.fingerprint).write_bytes(blob)


def _write_v1_artifact(store: ArtifactStore, schema: CompiledSchema) -> None:
    _write_old_artifact(store, schema, 1)


def _write_v2_artifact(store: ArtifactStore, schema: CompiledSchema) -> None:
    _write_old_artifact(store, schema, 2)


class TestFormatUpgrade:
    """Supported older versions are hits that upgrade in place, not corruption."""

    def test_version_constants_are_coherent(self):
        assert STORE_FORMAT_VERSION in SUPPORTED_FORMAT_VERSIONS
        assert 1 in SUPPORTED_FORMAT_VERSIONS  # v1 artifacts keep loading

    def test_v1_load_is_a_hit_that_upgrades_in_place(self, store, schema):
        _write_v1_artifact(store, schema)
        loaded = store.load(schema.fingerprint)
        assert loaded is not None
        stats = store.stats
        assert stats.hits == 1
        assert stats.corrupt == 0
        assert stats.upgrades == 1
        # The file on disk was rewritten as a full current-version artifact.
        blob = store.path_for(schema.fingerprint).read_bytes()
        assert artifact_format_version(blob) == STORE_FORMAT_VERSION
        revived = decode_artifact(blob, schema.fingerprint)
        assert revived is not None and revived.has_tables

    def test_upgraded_artifact_serves_the_kernel_backend(self, store, schema):
        _write_v1_artifact(store, schema)
        loaded = store.load(schema.fingerprint)
        assert loaded.checker("kernel").check_content("r", ["a"])

    def test_second_v1_load_after_upgrade_is_a_plain_hit(self, store, schema):
        _write_v1_artifact(store, schema)
        store.load(schema.fingerprint)
        store.load(schema.fingerprint)
        stats = store.stats
        assert stats.hits == 2
        assert stats.upgrades == 1  # the rewrite stuck; no second upgrade

    def test_upgrades_are_logged_once_per_store(self, store, schema, caplog):
        _write_v1_artifact(store, schema)
        other = compile_schema(parse_dtd(PLAY))
        _write_v1_artifact(store, other)
        with caplog.at_level("INFO", logger="repro.service.store"):
            assert store.load(schema.fingerprint) is not None
            assert store.load(other.fingerprint) is not None
        upgrade_logs = [
            record for record in caplog.records if "upgraded artifact" in record.message
        ]
        assert len(upgrade_logs) == 1
        assert store.stats.upgrades == 2  # both counted, one logged

    def test_artifact_format_version_is_purely_syntactic(self, schema):
        from repro.service.store import encode_artifact

        assert artifact_format_version(encode_artifact(schema)) == (
            STORE_FORMAT_VERSION
        )
        # A future version still reports its number (distinguishable from
        # garbage), it just is not loadable.
        future = f"{STORE_MAGIC} {STORE_FORMAT_VERSION + 7}\npayload".encode()
        assert artifact_format_version(future) == STORE_FORMAT_VERSION + 7
        assert artifact_format_version(b"not a header") is None
        assert artifact_format_version(b"") is None

    def test_registry_snapshot_counts_store_upgrades(self, tmp_path, schema):
        store = ArtifactStore(tmp_path / "artifacts")
        _write_v1_artifact(store, schema)
        registry = SchemaRegistry(store=store)
        registry.get(schema.dtd)
        assert registry.stats.store_upgrades == 1
        assert registry.stats.misses == 0  # the v1 file prevented a compile

    def test_v1_upgrade_builds_tables_and_coarse(self, store, schema):
        """A v1 file upgrades straight to v3: both derived payloads built."""
        _write_v1_artifact(store, schema)
        assert store.load(schema.fingerprint) is not None
        blob = store.path_for(schema.fingerprint).read_bytes()
        assert artifact_format_version(blob) == STORE_FORMAT_VERSION
        revived = decode_artifact(blob, schema.fingerprint)
        assert revived is not None
        assert revived.has_tables and revived.has_coarse

    def test_v2_load_is_a_hit_that_upgrades_in_place(self, store, schema):
        _write_v2_artifact(store, schema)
        loaded = store.load(schema.fingerprint)
        assert loaded is not None
        stats = store.stats
        assert stats.hits == 1
        assert stats.corrupt == 0
        assert stats.upgrades == 1
        # The rewritten file is a full v3 artifact: the tables the v2
        # layout already had, plus the coarse summary it lacked.
        blob = store.path_for(schema.fingerprint).read_bytes()
        assert artifact_format_version(blob) == STORE_FORMAT_VERSION
        revived = decode_artifact(blob, schema.fingerprint)
        assert revived is not None
        assert revived.has_tables and revived.has_coarse

    def test_v2_upgrade_serves_admission_without_recompiling(self, store, schema):
        from repro.core.coarse import CoarseChecker
        from repro.xmlmodel.parser import parse_xml

        _write_v2_artifact(store, schema)
        loaded = store.load(schema.fingerprint)
        verdict = CoarseChecker(loaded.coarse).check_document(parse_xml("<x/>"))
        assert verdict.outcome == "reject"

    def test_second_v2_load_after_upgrade_is_a_plain_hit(self, store, schema):
        _write_v2_artifact(store, schema)
        store.load(schema.fingerprint)
        store.load(schema.fingerprint)
        stats = store.stats
        assert stats.hits == 2
        assert stats.upgrades == 1  # the rewrite stuck; no second upgrade


class TestRingHandoff:
    """A v3 artifact handed to a shard that has only v2 on disk."""

    def test_v3_handoff_replaces_a_v2_only_store(self, tmp_path, schema):
        from repro.core.coarse import decode_coarse
        from repro.server.client import ValidationClient
        from repro.server.server import ServerThread
        from repro.service.store import encode_artifact

        recipient_store = ArtifactStore(tmp_path / "recipient")
        _write_v2_artifact(recipient_store, schema)
        # The donor's wire blob is the current v3 format (one encoding for
        # disk and wire); hand it to a shard whose disk still says v2.
        blob = encode_artifact(schema)
        with ServerThread(
            unix_path=str(tmp_path / "recipient.sock"),
            port=0,
            store=recipient_store,
        ) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                put = client.put_artifact(schema.fingerprint, blob)
                assert put["stored"] == "registry+store"
                # The seeded shard serves the coarse summary immediately —
                # no recompile, no reliance on the stale v2 file.
                summary = decode_coarse(client.get_coarse(schema.fingerprint))
        assert summary is not None
        assert summary.root == schema.dtd.root
        disk = recipient_store.path_for(schema.fingerprint).read_bytes()
        assert artifact_format_version(disk) == STORE_FORMAT_VERSION
        revived = decode_artifact(disk, schema.fingerprint)
        assert revived is not None and revived.has_coarse

    def test_v2_only_shard_upgrades_on_first_coarse_request(self, tmp_path, schema):
        """Without a hand-off, get-coarse off a v2 file upgrades in place."""
        from repro.core.coarse import decode_coarse
        from repro.server.client import ValidationClient
        from repro.server.server import ServerThread

        shard_store = ArtifactStore(tmp_path / "v2-only")
        _write_v2_artifact(shard_store, schema)
        with ServerThread(
            unix_path=str(tmp_path / "v2.sock"), port=0, store=shard_store
        ) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                summary = decode_coarse(client.get_coarse(schema.fingerprint))
        assert summary is not None and summary.root == schema.dtd.root
        assert shard_store.stats.upgrades == 1
        disk = shard_store.path_for(schema.fingerprint).read_bytes()
        assert artifact_format_version(disk) == STORE_FORMAT_VERSION


class TestRegistryIntegration:
    def test_compile_writes_through(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        registry = SchemaRegistry(store=store)
        schema = registry.get(parse_dtd(FIGURE1))
        assert schema.fingerprint in store
        assert registry.stats.misses == 1
        assert store.stats.saves == 1

    def test_restart_loads_without_compiling(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        first = SchemaRegistry(store=ArtifactStore(store_dir))
        compiled = first.get(parse_dtd(FIGURE1))
        # A "restarted process": fresh registry, fresh store handle.
        second = SchemaRegistry(store=ArtifactStore(store_dir))
        loaded = second.get(parse_dtd(FIGURE1))
        stats = second.stats
        assert loaded.fingerprint == compiled.fingerprint
        assert stats.misses == 0  # no compile happened
        assert stats.store_hits == 1
        assert stats.compile_seconds == 0.0
        assert stats.hit_rate == 1.0

    def test_corrupt_store_falls_back_to_recompile(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        first = SchemaRegistry(store=ArtifactStore(store_dir))
        compiled = first.get(parse_dtd(FIGURE1))
        path = ArtifactStore(store_dir).path_for(compiled.fingerprint)
        path.write_bytes(b"truncated" * 3)
        store = ArtifactStore(store_dir)
        registry = SchemaRegistry(store=store)
        recompiled = registry.get(parse_dtd(FIGURE1))
        assert recompiled.fingerprint == compiled.fingerprint
        assert registry.stats.misses == 1  # honest recompile
        assert store.stats.corrupt == 1
        # ... and the recompile was written back, healing the store.
        assert store.load(compiled.fingerprint) is not None

    def test_unwritable_store_degrades_to_memory(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the store directory should be")
        registry = SchemaRegistry(store=ArtifactStore(target))
        schema = registry.get(parse_dtd(FIGURE1))  # save fails silently
        assert registry.stats.misses == 1
        assert registry.lookup(schema.fingerprint) is schema

    def test_attach_store_later(self, tmp_path):
        registry = SchemaRegistry()
        registry.get(parse_dtd(FIGURE1))
        store = ArtifactStore(tmp_path / "artifacts")
        registry.attach_store(store)
        registry.get(parse_dtd(PLAY))
        assert len(store) == 1  # only the post-attach compile is persisted


class TestRegistrySeeding:
    def test_put_counts_neither_hit_nor_miss(self):
        registry = SchemaRegistry()
        schema = compile_schema(parse_dtd(FIGURE1))
        assert registry.put(schema) is schema
        stats = registry.stats
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 1)

    def test_put_keeps_existing_artifact(self):
        registry = SchemaRegistry()
        original = registry.get(parse_dtd(FIGURE1))
        clone = compile_schema(parse_dtd(FIGURE1))
        assert registry.put(clone) is original

    def test_counted_lookup(self):
        registry = SchemaRegistry()
        schema = registry.get(parse_dtd(FIGURE1))
        registry.lookup(schema.fingerprint, count=True)
        registry.lookup("f" * 64, count=True)  # miss: left for get() to count
        registry.lookup(schema.fingerprint)  # peek: not counted
        stats = registry.stats
        assert stats.hits == 1
        assert stats.misses == 1  # only the compile; no double counting


class TestDefaultStoreDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert default_store_dir() == tmp_path / "cache"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_store_dir() == tmp_path / "xdg" / "repro-pv" / "artifacts"
