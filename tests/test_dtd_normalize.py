"""Tests for Corollary 3.1 normalization and Definition 4 star-groups."""

from __future__ import annotations


from repro.dtd.ast import Name, Seq, Star, to_text
from repro.dtd.model import PCDATA
from repro.dtd.normalize import normalize_node, normalized_content
from repro.dtd.parser import parse_content_spec, parse_dtd
from repro.dtd.stargroups import (
    StarGroup,
    find_star_groups,
    flatten,
    flattened_content,
)


def normalized(text: str):
    return normalize_node(parse_content_spec(text).model)


class TestNormalize:
    def test_opt_removed(self):
        assert to_text(normalized("(a?, b)")) == "(a, b)"

    def test_plus_becomes_star(self):
        assert to_text(normalized("(a+, b)")) == "(a*, b)"

    def test_nested(self):
        assert to_text(normalized("((a? | b+))*")) == "((a | b*))*"

    def test_leaves_untouched(self):
        assert to_text(normalized("(a, (b | c))")) == "(a, (b | c))"

    def test_position_count_preserved(self):
        from repro.dtd.ast import element_names

        original = parse_content_spec("(a?, (b | c)+, d*)").model
        result = normalize_node(original)
        assert element_names(result) == element_names(original)

    def test_normalized_content_empty(self):
        dtd = parse_dtd("<!ELEMENT x EMPTY>")
        assert normalized_content(dtd, "x") is None

    def test_normalized_content_mixed(self):
        dtd = parse_dtd("<!ELEMENT x (#PCDATA | y)*><!ELEMENT y EMPTY>")
        node = normalized_content(dtd, "x")
        assert isinstance(node, Star)


class TestStarGroups:
    def test_paper_example(self):
        # The paper's Definition 4 example: in (a, (b* | (c, d*, e)*)) the
        # star-groups are b* and (c, d*, e)*; d* is not one.
        node = normalized("(a, (b* | (c, d*, e)*))")
        groups = [to_text(group) for group in find_star_groups(node)]
        assert groups == ["b*", "(c, d*, e)*"]

    def test_no_groups(self):
        assert find_star_groups(normalized("(a, (b | c))")) == []

    def test_whole_model_as_group(self):
        groups = find_star_groups(normalized("((a, b))*"))
        assert len(groups) == 1

    def test_plus_normalizes_into_group(self):
        groups = find_star_groups(normalized("(a+)"))
        assert [to_text(group) for group in groups] == ["a*"]


class TestFlatten:
    def test_group_members_include_nested(self):
        flat = flatten(normalized("(a, (c, d*, e)*)"))
        assert isinstance(flat, Seq)
        name, group = flat.items
        assert name == Name("a")
        assert isinstance(group, StarGroup)
        assert group.members == frozenset({"c", "d", "e"})

    def test_mixed_content_group_carries_pcdata(self):
        dtd = parse_dtd("<!ELEMENT d (#PCDATA | e)*><!ELEMENT e EMPTY>")
        flat = flattened_content(dtd, "d")
        assert isinstance(flat, StarGroup)
        assert flat.members == frozenset({PCDATA, "e"})

    def test_empty_content_flattens_to_none(self):
        dtd = parse_dtd("<!ELEMENT e EMPTY>")
        assert flattened_content(dtd, "e") is None

    def test_any_content_flattens_to_full_group(self):
        dtd = parse_dtd("<!ELEMENT x ANY><!ELEMENT y EMPTY>")
        flat = flattened_content(dtd, "x")
        assert isinstance(flat, StarGroup)
        assert flat.members == frozenset({"x", "y", PCDATA})

    def test_structure_outside_groups_preserved(self):
        flat = flatten(normalized("(a?, (c | f), d)"))
        assert to_text_flat(flat) == "(a, (c | f), d)"

    def test_figure1_a_flattens_without_groups(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b?, (c | f), d)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
            "<!ELEMENT d EMPTY><!ELEMENT f EMPTY>"
        )
        flat = flattened_content(dtd, "a")
        assert to_text_flat(flat) == "(b, (c | f), d)"


def to_text_flat(node) -> str:
    """Minimal renderer for flattened nodes (groups rendered as {members})."""
    from repro.dtd.ast import Choice

    if isinstance(node, StarGroup):
        return "{" + ",".join(sorted(node.members)) + "}*"
    if isinstance(node, Name):
        return node.name
    if isinstance(node, Seq):
        return "(" + ", ".join(to_text_flat(item) for item in node.items) + ")"
    if isinstance(node, Choice):
        return "(" + " | ".join(to_text_flat(item) for item in node.items) + ")"
    raise TypeError(node)
