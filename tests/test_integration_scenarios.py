"""Cross-layer integration scenarios: the full pipeline, end to end."""

from __future__ import annotations

import random

import pytest

from repro import (
    DTDValidator,
    PVChecker,
    complete_document,
    parse_dtd,
    parse_xml,
    to_xml,
)
from repro.core.suggest import MarkupSuggester
from repro.dtd import catalog
from repro.editor import EditingSession, InsertMarkup
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.workloads.editscript import markup_script


class TestFullPipeline:
    """generate -> validate -> degrade -> check -> complete -> validate."""

    @pytest.mark.parametrize(
        "name", ["paper-figure1", "play", "dictionary", "manuscript", "tei-lite"]
    )
    def test_lifecycle(self, name):
        dtd = catalog.load(name)
        validator = DTDValidator(dtd)
        checker = PVChecker(dtd)
        rng = random.Random(4)
        document = DocumentGenerator(dtd, seed=8).document(25)
        assert validator.is_valid(document)
        degraded, removed = degrade(document, rng, 0.7)
        if removed:
            assert not validator.is_valid(degraded) or True  # may stay valid
        assert checker.is_potentially_valid(degraded)
        completed = complete_document(dtd, degraded)
        assert validator.is_valid(completed.document)
        assert completed.document.content() == document.content()

    def test_round_trip_through_serialization(self):
        """The degraded document survives serialize/parse and the verdicts
        are invariant under the round trip."""
        dtd = catalog.manuscript()
        checker = PVChecker(dtd)
        rng = random.Random(5)
        document = DocumentGenerator(dtd, seed=10).document(30)
        degraded, _ = degrade(document, rng, 0.5)
        reparsed = parse_xml(to_xml(degraded))
        assert to_xml(reparsed) == to_xml(degraded)
        assert checker.is_potentially_valid(degraded) == checker.is_potentially_valid(
            reparsed
        )


class TestSuggestionDrivenEditing:
    """An 'assisted editor': repeatedly apply suggested wraps; the session
    must accept every suggestion (they were checked), and the document must
    remain potentially valid throughout."""

    def test_suggestions_always_apply(self):
        dtd = parse_dtd(
            """
            <!ELEMENT doc (head?, body)>
            <!ELEMENT head (#PCDATA)>
            <!ELEMENT body (para+)>
            <!ELEMENT para (#PCDATA | note)*>
            <!ELEMENT note (#PCDATA)>
            """
        )
        document = parse_xml("<doc>some raw text to mark up</doc>")
        session = EditingSession(dtd, document)
        suggester = MarkupSuggester(dtd)
        rng = random.Random(3)
        for _round in range(4):
            root = session.root()
            options = suggester.all_wraps(root, max_span=2)
            if not options:
                break
            choice = rng.choice(options)
            assert session.apply(
                InsertMarkup(
                    parent=(), start=choice.start, end=choice.end, name=choice.name
                )
            )
            assert session.is_potentially_valid()

    def test_assisted_completion_converges(self):
        """Suggest+apply until valid (tiny schema): the guard plus the
        completion engine agree on the endpoint."""
        dtd = parse_dtd(
            "<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>"
        )
        document = parse_xml("<a>text</a>")
        session = EditingSession(dtd, document)
        suggester = MarkupSuggester(dtd)
        validator = DTDValidator(dtd)
        for _ in range(3):
            if validator.is_valid(session.document):
                break
            wraps = suggester.all_wraps(session.root())
            assert wraps, "guard promised completability"
            best = wraps[0]
            session.apply(
                InsertMarkup(parent=(), start=best.start, end=best.end, name=best.name)
            )
        assert validator.is_valid(session.document)


class TestScriptedSessionAgainstCompletion:
    def test_script_and_completion_commute(self):
        """Replaying a script and then completing equals completing the
        skeleton (both reach valid documents with identical content)."""
        dtd = catalog.play()
        rng = random.Random(11)
        document = DocumentGenerator(dtd, seed=21).document(18)
        skeleton, script = markup_script(document, rng)
        completed_direct = complete_document(dtd, skeleton)
        assert DTDValidator(dtd).is_valid(completed_direct.document)
        assert completed_direct.document.content() == document.content()

        session = EditingSession(dtd, skeleton.copy())
        for operation in script:
            session.apply(operation)
        assert to_xml(session.document) == to_xml(document)
