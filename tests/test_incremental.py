"""Tests for update-time checks (Sections 3.2/4.1): locality and O(1) rules."""

from __future__ import annotations

import random


from repro.core.incremental import IncrementalChecker, prop3_char_insert_ok
from repro.core.pv import PVChecker
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.tree import XmlElement, XmlText


class TestMarkupInsert:
    def test_wrap_accepted_when_pv_preserved(self, fig1, doc_s):
        checker = IncrementalChecker(fig1)
        a = doc_s.root.element_children()[0]
        # Wrap "A quick brown" (inside b) in d — the Figure 3 insertion.
        b = a.element_children()[0]
        assert checker.check_markup_insert(b, 0, 1, "d")

    def test_wrap_rejected_when_it_breaks_pv(self, fig1, doc_s):
        checker = IncrementalChecker(fig1)
        a = doc_s.root.element_children()[0]
        # Wrapping everything in an e (EMPTY content) is hopeless.
        assert not checker.check_markup_insert(a, 0, len(a.children), "e")

    def test_wrap_unknown_element_rejected(self, fig1, doc_s):
        checker = IncrementalChecker(fig1)
        assert not checker.check_markup_insert(doc_s.root, 0, 1, "ghost")

    def test_empty_range_wrap(self, fig1):
        doc = parse_xml("<r><a><c>t</c><d></d></a></r>")
        checker = IncrementalChecker(fig1)
        a = doc.root.element_children()[0]
        # Inserting an empty <b> before c is fine ((b?, (c|f), d)); even an
        # empty <e> works (it embeds under the missing b via d).  An <a>
        # cannot: a never occurs inside a.
        assert checker.check_markup_insert(a, 0, 0, "b")
        assert checker.check_markup_insert(a, 0, 0, "e")
        assert not checker.check_markup_insert(a, 0, 0, "a")
        # After d, nothing can be opened anymore.
        assert not checker.check_markup_insert(a, 2, 2, "e")

    def test_locality_equals_full_recheck(self):
        """On a PV document, the two local ECPV checks of Section 4 are
        equivalent to a full document re-check."""
        rng = random.Random(13)
        for name in ("paper-figure1", "play", "manuscript", "tei-lite"):
            dtd = catalog.load(name)
            incremental = IncrementalChecker(dtd)
            full = PVChecker(dtd)
            document = DocumentGenerator(dtd, seed=31).document(20)
            degraded, _ = degrade(document, rng, 0.5)
            assert full.is_potentially_valid(degraded)
            names = dtd.element_names()
            for _ in range(25):
                elements = list(degraded.iter_elements())
                parent = rng.choice(elements)
                count = len(parent.children)
                start = rng.randint(0, count)
                end = rng.randint(start, count)
                name_choice = rng.choice(names)
                local = incremental.check_markup_insert(
                    parent, start, end, name_choice
                )
                trial = _apply_wrap_on_copy(degraded, parent, start, end, name_choice)
                global_verdict = full.is_potentially_valid(trial)
                assert local == global_verdict, (name, name_choice, start, end)


def _apply_wrap_on_copy(document, parent, start, end, name):
    """Clone the document, perform the wrap on the clone, return the clone."""
    elements = list(document.iter_elements())
    index = next(i for i, e in enumerate(elements) if e is parent)
    clone = document.copy()
    clone_parent = list(clone.iter_elements())[index]
    clone_parent.wrap_children(start, end, name)
    return clone


class TestCharacterData:
    def test_update_always_allowed(self, fig1, doc_s):
        checker = IncrementalChecker(fig1)
        a = doc_s.root.element_children()[0]
        assert checker.check_text_update(a, 0)
        assert checker.check_text_delete(a, 0)

    def test_fast_rule_is_reachability(self, fig1):
        checker = IncrementalChecker(fig1)
        assert checker.check_text_insert_fast(XmlElement("a"))   # a ⤳ PCDATA
        assert checker.check_text_insert_fast(XmlElement("d"))
        assert not checker.check_text_insert_fast(XmlElement("e"))

    def test_exact_in_mixed_parent(self, fig1):
        doc = parse_xml("<r><a><b></b><c></c><d><e></e></d></a></r>")
        checker = IncrementalChecker(fig1)
        d = doc.root.element_children()[0].element_children()[2]
        # d is mixed: text legal at every index.
        for index in range(len(d.children) + 1):
            assert checker.check_text_insert(d, index)

    def test_exact_positional_in_children_parent(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b, c)><!ELEMENT b (#PCDATA)><!ELEMENT c EMPTY>"
        )
        checker = IncrementalChecker(dtd)
        # With the b slot open, text before <c/> can become a fresh <b>'s
        # content; after <c/> nothing can host it.
        partial = parse_xml("<a><c></c></a>").root
        assert checker.check_text_insert(partial, 0)
        assert not checker.check_text_insert(partial, 1)
        # With both slots filled, no position accepts new text: inserted
        # text cannot be moved inside the *existing* <b>.
        full = parse_xml("<a><b></b><c></c></a>").root
        for index in range(3):
            assert not checker.check_text_insert(full, index), index

    def test_adjacent_to_text_is_update_like(self, fig1):
        # Children-content parent with existing text: extending the run is
        # always fine.
        doc = parse_xml("<r><a>existing<c>t</c><d></d></a></r>")
        checker = IncrementalChecker(fig1)
        a = doc.root.element_children()[0]
        assert isinstance(a.children[0], XmlText)
        assert checker.check_text_insert(a, 0)
        assert checker.check_text_insert(a, 1)

    def test_prop3_rule_verbatim(self, fig1):
        assert prop3_char_insert_ok(fig1, "a")
        assert prop3_char_insert_ok(fig1, "b")
        assert not prop3_char_insert_ok(fig1, "e")

    def test_markup_delete_always_true(self, fig1, doc_s):
        checker = IncrementalChecker(fig1)
        a = doc_s.root.element_children()[0]
        b = a.element_children()[0]
        assert checker.check_markup_delete(a, b)
