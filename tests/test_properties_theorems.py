"""Property-based tests (hypothesis) for the paper's theorems.

* Theorem 1 — PV ⟺ ``delta_T(w) ∈ L(G')`` (via the Earley baseline);
* Theorem 2 — closure under markup deletion and character-data updates;
* Corollary 3.1 / Proposition 1 — normalization and star-group flattening
  preserve the PV language (flattened-DAG recognizer vs original-model
  machine on usable DTDs);
* Proposition 2 — single-token embedding ⟺ reachability;
* Proposition 3 — the O(1) character-data rule (exact for mixed content).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.machine import PVMachine
from repro.core.pv import PVChecker
from repro.core.recognizer import ECRecognizer
from repro.dtd import catalog
from repro.dtd.analysis import analyze
from repro.dtd.model import PCDATA
from repro.validity.validator import DTDValidator
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.delta import SIGMA
from repro.xmlmodel.tree import XmlText

USABLE_DTDS = (
    "paper-figure1",
    "example5-T1",
    "example6-T2",
    "play",
    "dictionary",
    "manuscript",
    "tei-lite",
)

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def dtd_and_document(draw, names=USABLE_DTDS, target_nodes=14):
    name = draw(st.sampled_from(names))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    dtd = catalog.load(name)
    document = DocumentGenerator(dtd, seed=seed).document(
        target_nodes=target_nodes, max_depth=7
    )
    return dtd, document, seed


class TestTheorem2:
    """PV is closed under markup deletions and character-data updates."""

    @_settings
    @given(data=dtd_and_document(), fraction=st.floats(0.1, 1.0))
    def test_deletion_closure(self, data, fraction):
        dtd, document, seed = data
        assert DTDValidator(dtd).is_valid(document)
        degraded, _removed = degrade(document, random.Random(seed), fraction)
        assert PVChecker(dtd).is_potentially_valid(degraded)

    @_settings
    @given(data=dtd_and_document(), new_text=st.text(alphabet="xyz ", max_size=8))
    def test_character_update_closure(self, data, new_text):
        dtd, document, seed = data
        degraded, _ = degrade(document, random.Random(seed), 0.5)
        checker = PVChecker(dtd)
        before = checker.is_potentially_valid(degraded)
        texts = [
            node
            for element in degraded.iter_elements()
            for node in element.children
            if isinstance(node, XmlText) and node.text
        ]
        if not texts:
            return
        victim = random.Random(seed).choice(texts)
        # A non-emptying update: delta_T still sees one sigma there.
        victim.text = new_text or "x"
        assert checker.is_potentially_valid(degraded) == before

    @_settings
    @given(data=dtd_and_document())
    def test_text_deletion_closure(self, data):
        dtd, document, seed = data
        degraded, _ = degrade(document, random.Random(seed), 0.5)
        checker = PVChecker(dtd)
        if not checker.is_potentially_valid(degraded):
            return
        texts = [
            node
            for element in degraded.iter_elements()
            for node in element.children
            if isinstance(node, XmlText)
        ]
        if not texts:
            return
        victim = random.Random(seed + 1).choice(texts)
        assert victim.parent is not None
        victim.parent.remove(victim)
        assert checker.is_potentially_valid(degraded)


class TestTheorem1:
    """Per-node checking matches G' membership of the delta string."""

    @_settings
    @given(data=dtd_and_document(target_nodes=10))
    def test_machine_equals_whole_document_earley(self, data):
        from repro.baselines.earley_pv import EarleyDocumentChecker

        dtd, document, seed = data
        degraded, _ = degrade(document, random.Random(seed), 0.7)
        machine_verdict = PVChecker(dtd).is_potentially_valid(degraded)
        earley_verdict = EarleyDocumentChecker(dtd).is_potentially_valid(degraded)
        assert machine_verdict == earley_verdict


class TestCorollary31Proposition1:
    """The flattened-DAG recognizer (Cor 3.1 + Prop 1 models) agrees with
    the original-model machine on usable DTDs."""

    @_settings
    @given(
        name=st.sampled_from(USABLE_DTDS),
        seed=st.integers(0, 5_000),
        length=st.integers(0, 4),
    )
    def test_flattened_equals_original(self, name, seed, length):
        dtd = catalog.load(name)
        rng = random.Random(seed)
        alphabet = list(dtd.element_names()) + [SIGMA]
        element = rng.choice(dtd.element_names())
        tokens: list[str] = []
        for _ in range(length):
            token = rng.choice(alphabet)
            if tokens and tokens[-1] == SIGMA and token == SIGMA:
                continue
            tokens.append(token)
        exact = PVMachine.for_dtd(dtd, element).recognize(tokens)
        flattened = ECRecognizer.for_dtd(dtd, element, depth=24).accepts(tokens)
        assert exact == flattened, (name, element, tokens)


class TestProposition2:
    """Single-token contents: embedding ⟺ reachability in R_T."""

    @_settings
    @given(name=st.sampled_from(USABLE_DTDS))
    def test_single_token_matches_lookup(self, name):
        dtd = catalog.load(name)
        analysis = analyze(dtd)
        for element in dtd.element_names():
            for token in list(dtd.element_names()) + [SIGMA]:
                expected = analysis.lookup(element, token) or _direct_position(
                    dtd, element, token
                )
                verdict = PVMachine.for_dtd(dtd, element).recognize([token])
                assert verdict == expected, (name, element, token)


def _direct_position(dtd, element, token) -> bool:
    """Token matches a direct position of the content model (not nested)."""
    regex = dtd.content_regex(element)
    if regex is None:
        return False
    from repro.dtd import ast

    if token == SIGMA:
        return ast.mentions_pcdata(regex)
    return token in ast.element_names(regex)


class TestProposition3:
    """The O(1) character-data rule, including its documented caveat."""

    def test_rule_exact_for_mixed_parents(self):
        for name in USABLE_DTDS:
            dtd = catalog.load(name)
            analysis = analyze(dtd)
            for decl in dtd:
                if decl.allows_pcdata_directly():
                    # Mixed content: rule and truth coincide (text legal
                    # everywhere) — and the lookup table must agree.
                    assert analysis.lookup(decl.name, PCDATA) or not decl.is_mixed

    def test_caveat_counterexample(self):
        """a ⤳ PCDATA holds transitively, yet text after <c/> in
        <a><b/><c/></a> cannot be wrapped: the paper's O(1) rule is
        necessary but not sufficient for children-content parents."""
        from repro.dtd.parser import parse_dtd
        from repro.core.incremental import IncrementalChecker, prop3_char_insert_ok
        from repro.xmlmodel.parser import parse_xml

        dtd = parse_dtd(
            "<!ELEMENT a (b, c)><!ELEMENT b (#PCDATA)><!ELEMENT c EMPTY>"
        )
        assert prop3_char_insert_ok(dtd, "a")  # the paper's rule says yes
        checker = IncrementalChecker(dtd)

        # Strong form: with both children present, no position can host
        # new text (it cannot be moved inside the existing <b>), yet the
        # O(1) rule still answers yes.
        full = parse_xml("<a><b></b><c></c></a>").root
        for index in range(3):
            assert not checker.check_text_insert(full, index), index

        # Positional form: with the b-slot still open, text before <c/>
        # can be wrapped into a fresh <b>, text after it cannot.
        partial = parse_xml("<a><c></c></a>").root
        assert checker.check_text_insert(partial, 0)
        assert not checker.check_text_insert(partial, 1)


class TestValidityImpliesPV:
    @_settings
    @given(data=dtd_and_document())
    def test_valid_documents_are_potentially_valid(self, data):
        dtd, document, _seed = data
        assert PVChecker(dtd).is_potentially_valid(document)
