"""Tests for DTD lexing, parsing, and serialization."""

from __future__ import annotations

import pytest

from repro.dtd.ast import Choice, Name, Opt, Seq, Star, to_text
from repro.dtd.model import (
    AnyContent,
    ChildrenContent,
    EmptyContent,
    MixedContent,
)
from repro.dtd.parser import parse_content_spec, parse_dtd
from repro.dtd.serialize import decl_to_text, dtd_to_text
from repro.errors import (
    DTDSemanticError,
    DTDSyntaxError,
    UnknownElementError,
)

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""


class TestParsing:
    def test_figure1_parses(self):
        dtd = parse_dtd(FIGURE1)
        assert dtd.element_names() == ("r", "a", "b", "c", "d", "e", "f")
        assert dtd.root == "r"

    def test_root_defaults_to_first_declaration(self):
        dtd = parse_dtd("<!ELEMENT x (y?)><!ELEMENT y EMPTY>")
        assert dtd.root == "x"

    def test_explicit_root(self):
        dtd = parse_dtd("<!ELEMENT x (y?)><!ELEMENT y EMPTY>", root="y")
        assert dtd.root == "y"

    def test_unknown_root_rejected(self):
        with pytest.raises(UnknownElementError):
            parse_dtd("<!ELEMENT x EMPTY>", root="zzz")

    def test_empty_and_any(self):
        dtd = parse_dtd("<!ELEMENT x ANY><!ELEMENT y EMPTY>")
        assert isinstance(dtd["x"].content, AnyContent)
        assert isinstance(dtd["y"].content, EmptyContent)

    def test_mixed_with_names(self):
        dtd = parse_dtd("<!ELEMENT x (#PCDATA | y | z)*><!ELEMENT y EMPTY><!ELEMENT z EMPTY>")
        content = dtd["x"].content
        assert isinstance(content, MixedContent)
        assert content.names == ("y", "z")

    def test_bare_pcdata(self):
        dtd = parse_dtd("<!ELEMENT x (#PCDATA)>")
        content = dtd["x"].content
        assert isinstance(content, MixedContent)
        assert content.names == ()

    def test_pcdata_star_allowed(self):
        dtd = parse_dtd("<!ELEMENT x (#PCDATA)*>")
        assert isinstance(dtd["x"].content, MixedContent)

    def test_mixed_without_star_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("<!ELEMENT x (#PCDATA | y)><!ELEMENT y EMPTY>")

    def test_duplicate_mixed_name_rejected(self):
        with pytest.raises(DTDSemanticError):
            parse_dtd("<!ELEMENT x (#PCDATA | y | y)*><!ELEMENT y EMPTY>")

    def test_children_structure(self):
        spec = parse_content_spec("(b?, (c | f), d)")
        assert isinstance(spec, ChildrenContent)
        assert spec.model == Seq(
            (Opt(Name("b")), Choice((Name("c"), Name("f"))), Name("d"))
        )

    def test_occurrence_operators(self):
        spec = parse_content_spec("(a*, b+, c?)")
        assert to_text(spec.model) == "(a*, b+, c?)"

    def test_nested_groups(self):
        spec = parse_content_spec("((a | b), (c, d)*)")
        assert to_text(spec.model) == "((a | b), (c, d)*)"

    def test_attlist_and_comments_skipped(self):
        source = """
        <!-- a comment -->
        <!ELEMENT x (y)>
        <!ATTLIST x id CDATA #IMPLIED>
        <!ELEMENT y EMPTY>
        <!ENTITY % stuff "ignored">
        """
        dtd = parse_dtd(source)
        assert dtd.element_names() == ("x", "y")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(DTDSemanticError):
            parse_dtd("<!ELEMENT x EMPTY><!ELEMENT x EMPTY>")

    def test_undeclared_reference_rejected(self):
        with pytest.raises(DTDSemanticError):
            parse_dtd("<!ELEMENT x (ghost)>")

    def test_empty_dtd_rejected(self):
        with pytest.raises(DTDSemanticError):
            parse_dtd("   <!-- nothing -->   ")

    @pytest.mark.parametrize(
        "source",
        [
            "<!ELEMENT x (y",            # unterminated group
            "<!ELEMENT x (y)",           # missing '>'
            "<!ELEMENT (y)>",            # missing name
            "<!ELEMENT x (y,|z)>",       # bad separator
            "<!ELEMENT x (y | z, w)>",   # mixed separators in one group
            "<!ELEMENT x y>",            # bare name content
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(DTDSyntaxError):
            parse_dtd(source + "<!ELEMENT y EMPTY><!ELEMENT z EMPTY><!ELEMENT w EMPTY>")

    def test_pcdata_in_children_rejected(self):
        from repro.dtd.ast import PCData

        ChildrenContent(Seq((Name("a"), Star(Choice((Name("b"),))))))  # fine
        with pytest.raises(DTDSemanticError):
            ChildrenContent(Seq((PCData(),)))


class TestSerialization:
    def test_figure1_round_trip(self):
        dtd = parse_dtd(FIGURE1)
        text = dtd_to_text(dtd)
        again = parse_dtd(text)
        assert again == dtd
        assert dtd_to_text(again) == text

    def test_decl_rendering(self):
        dtd = parse_dtd(FIGURE1)
        assert decl_to_text(dtd["e"]) == "<!ELEMENT e EMPTY>"
        assert decl_to_text(dtd["d"]) == "<!ELEMENT d (#PCDATA | e)*>"
        assert decl_to_text(dtd["c"]) == "<!ELEMENT c (#PCDATA)>"
        assert decl_to_text(dtd["a"]) == "<!ELEMENT a (b?, (c | f), d)>"

    def test_any_round_trip(self):
        dtd = parse_dtd("<!ELEMENT x ANY><!ELEMENT y (#PCDATA)>")
        assert parse_dtd(dtd_to_text(dtd)) == dtd


class TestSizeMeasures:
    def test_element_count_m(self):
        assert parse_dtd(FIGURE1).element_count == 7

    def test_occurrence_count_k_figure1(self):
        # r:(a+) -> 1; a:(b?,(c|f),d) -> 4; b:(d|f) -> 2; c:#PCDATA -> 1;
        # d:(#PCDATA|e)* -> 2; e:EMPTY -> 0; f:(c,e) -> 2  => k = 12
        assert parse_dtd(FIGURE1).occurrence_count == 12

    def test_k_at_least_m_minus_empties(self):
        dtd = parse_dtd(FIGURE1)
        assert dtd.occurrence_count >= dtd.element_count - 1
