"""Tests for the replica-aware CorpusScheduler (satellite coverage).

Three behaviors the ISSUE names explicitly: a skewed corpus spreads
over a schema's R owners, a replica dying mid-corpus re-queues its
windows onto survivors with zero failed checks, and ``primary-first``
reproduces the classic placement byte-for-byte.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.server.ring import ShardedClient, member_label
from repro.server.server import ServerThread

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""
DOC_OK = "<r><a><b>A quick brown</b><c> fox</c> dog<e></e></a></r>"
DOC_BAD = "<r><a><b>A quick brown</b><e></e><c> fox</c> dog</a></r>"


def schema_text(index: int) -> str:
    return (
        f"<!ELEMENT r{index} (a{index}*)>"
        f"<!ELEMENT a{index} (#PCDATA)>"
    )


def doc_text(index: int) -> str:
    return f"<r{index}><a{index}>x</a{index}></r{index}>"


@pytest.fixture
def shard_handles(tmp_path):
    handles = [
        ServerThread(unix_path=str(tmp_path / f"shard-{i}.sock"), port=0).start()
        for i in range(3)
    ]
    yield handles
    for handle in handles:
        handle.stop()


@pytest.fixture
def shard_paths(shard_handles):
    return [handle.unix_path for handle in shard_handles]


def total_misses(handles) -> int:
    return sum(handle.server.registry.stats.misses for handle in handles)


def hot_count(handle, fingerprint: str) -> int:
    hot = dict(handle.server._hot_counts)
    return hot.get(fingerprint, 0)


class TestBalancedSpread:
    def test_skewed_corpus_spreads_over_the_replica_set(
        self, shard_handles, shard_paths
    ):
        # One hot schema, many documents: under round-robin the windows
        # must land on both owners — and compile exactly once ring-wide.
        docs = [DOC_OK, DOC_BAD] * 12
        with ShardedClient(
            shard_paths, replica_count=2, read_policy="round-robin"
        ) as ring:
            results = ring.check_corpus([(FIGURE1, docs)], window=3)
            fingerprint = ring.fingerprint(FIGURE1)
            owners = [member_label(m) for m in ring.ring.owners(fingerprint)]
            stats = ring.ring_stats
        replies, trailer = results[0]
        assert trailer["ok"] is True
        assert trailer["items"] == len(docs)
        assert trailer["errors"] == 0
        assert trailer["windows"] > 1
        verdicts = [r["potentially_valid"] for r in replies]
        assert verdicts == [True, False] * 12  # document order preserved
        # Both owners served schema traffic (the hot counter counts items
        # per fingerprint per shard).
        served = {
            path: hot_count(handle, fingerprint)
            for path, handle in zip(shard_paths, shard_handles)
        }
        assert all(served[owner] > 0 for owner in owners)
        for path in shard_paths:
            if path not in owners:
                assert served[path] == 0  # non-replicas never touched
        # Compile-once held despite the spread: the seed window compiled
        # (or handed off) once, the fan-out warmed the second owner.
        assert total_misses(shard_handles) == 1
        assert stats["compiles_observed"] == 1

    def test_least_inflight_also_spreads_and_compiles_once(
        self, shard_handles, shard_paths
    ):
        docs = [DOC_OK] * 18
        with ShardedClient(
            shard_paths, replica_count=2, read_policy="least-inflight"
        ) as ring:
            results = ring.check_corpus([(FIGURE1, docs)], window=2)
        replies, trailer = results[0]
        assert trailer["items"] == 18 and trailer["errors"] == 0
        assert all(r["potentially_valid"] for r in replies)
        assert total_misses(shard_handles) == 1

    def test_multi_schema_balanced_corpus_compiles_each_once(
        self, shard_handles, shard_paths
    ):
        batches = [(schema_text(i), [doc_text(i)] * 8) for i in range(6)]
        with ShardedClient(
            shard_paths, replica_count=2, read_policy="round-robin"
        ) as ring:
            results = ring.check_corpus(batches, window=2)
        assert len(results) == 6
        for index, (replies, trailer) in enumerate(results):
            assert trailer["items"] == 8
            assert all(r["potentially_valid"] for r in replies)
        assert total_misses(shard_handles) == 6

    def test_balanced_spread_across_two_clients_stays_compile_once(
        self, shard_handles, shard_paths
    ):
        # A second client (fresh holder knowledge) spreading the same
        # schema must hand artifacts off, never recompile: the seed
        # window teaches it a holder before any window lands cold.
        docs = [DOC_OK] * 12
        with ShardedClient(shard_paths, replica_count=1) as first:
            first.check_batch(FIGURE1, docs[:2])
        assert total_misses(shard_handles) == 1
        with ShardedClient(
            shard_paths, replica_count=2, read_policy="round-robin"
        ) as second:
            results = second.check_corpus([(FIGURE1, docs)], window=3)
        replies, trailer = results[0]
        assert trailer["errors"] == 0
        assert all(r["potentially_valid"] for r in replies)
        assert total_misses(shard_handles) == 1  # hand-off, not recompile

    def test_empty_docs_batch(self, shard_paths):
        with ShardedClient(
            shard_paths, replica_count=2, read_policy="round-robin"
        ) as ring:
            results = ring.check_corpus([(FIGURE1, [])])
        replies, trailer = results[0]
        assert replies == []
        assert trailer["items"] == 0

    def test_unknown_corpus_policy_is_rejected_loudly(self, shard_paths):
        # A typo must raise, not silently pick the balanced path.
        with ShardedClient(shard_paths) as ring:
            with pytest.raises(ValueError):
                ring.check_corpus(
                    [(FIGURE1, [DOC_OK])], read_policy="primary_first"
                )

    def test_balanced_trailer_reports_wall_clock_and_server_time(
        self, shard_paths
    ):
        docs = [DOC_OK] * 12
        with ShardedClient(
            shard_paths, replica_count=2, read_policy="round-robin"
        ) as ring:
            results = ring.check_corpus([(FIGURE1, docs)], window=3)
        _replies, trailer = results[0]
        # elapsed_ms is the batch wall clock; the concurrent per-window
        # server time (which can exceed it) rides along as server_ms.
        assert trailer["elapsed_ms"] > 0
        assert trailer["server_ms"] > 0
        assert trailer["windows"] > 1

    def test_bad_dtd_raises_early_under_every_policy(self, shard_paths):
        from repro.server.protocol import ProtocolError

        with ShardedClient(shard_paths, replica_count=2) as ring:
            for policy in ("primary-first", "round-robin", "least-inflight"):
                with pytest.raises(ProtocolError) as excinfo:
                    ring.check_corpus(
                        [("<!ELEMENT broken", [DOC_OK])], read_policy=policy
                    )
                assert excinfo.value.code == "bad-dtd"
            assert ring.ring_stats["requests_by_member"] == {}


class TestReplicaDeathMidCorpus:
    def test_dead_replica_requeues_windows_onto_survivors(
        self, shard_handles, shard_paths
    ):
        # Warm the schema so both owners hold the artifact, then kill a
        # replica the client still believes is up: its windows must be
        # re-queued onto the survivor — zero failed checks, zero
        # recompiles.
        docs = [DOC_OK, DOC_BAD] * 10
        with ShardedClient(
            shard_paths, replica_count=2, read_policy="round-robin"
        ) as ring:
            ring.check(FIGURE1, DOC_OK)  # compile + fan-out to both owners
            fingerprint = ring.fingerprint(FIGURE1)
            owners = [member_label(m) for m in ring.ring.owners(fingerprint)]
            victim = owners[0]
            shard_handles[shard_paths.index(victim)].stop()
            results = ring.check_corpus([(FIGURE1, docs)], window=2)
            stats = ring.ring_stats
        replies, trailer = results[0]
        assert trailer["ok"] is True
        assert trailer["errors"] == 0
        verdicts = [r["potentially_valid"] for r in replies]
        assert verdicts == [True, False] * 10  # zero failed checks
        assert victim in stats["down"]
        # The survivor answered from its fanned-out artifact: the one
        # honest compile is still the only one.
        survivors = [
            handle
            for path, handle in zip(shard_paths, shard_handles)
            if path != victim
        ]
        assert sum(h.server.registry.stats.misses for h in survivors) <= 1
        assert stats["compiles_observed"] == 1

    def test_every_member_down_is_a_failure_entry_not_a_hang(self, tmp_path):
        dead = [str(tmp_path / f"nobody-{i}.sock") for i in range(2)]
        ring = ShardedClient(
            dead, replica_count=2, read_policy="round-robin", timeout=2.0
        )
        results = ring.check_corpus([(FIGURE1, [DOC_OK] * 4)], window=2)
        replies, trailer = results[0]
        assert replies is None
        assert trailer["ok"] is False
        assert trailer["error"]["code"] == "unreachable"


class TestPrimaryFirstCompat:
    def test_primary_first_reproduces_the_classic_placement(
        self, shard_handles, shard_paths
    ):
        # Byte-for-byte compat: every batch is served by its primary
        # owner (one routed check-batch per batch, no windows), and the
        # per-member request distribution equals the primary grouping.
        batches = [(schema_text(i), [doc_text(i)] * 4) for i in range(8)]
        with ShardedClient(shard_paths, replica_count=2) as ring:
            assert ring.read_policy == "primary-first"
            expected = Counter(
                member_label(ring.ring.owner(ring.fingerprint(dtd)))
                for dtd, _docs in batches
            )
            results = ring.check_corpus(batches)
            stats = ring.ring_stats
        for index, (replies, trailer) in enumerate(results):
            assert trailer["items"] == 4
            assert "windows" not in trailer  # the server trailer, verbatim
            assert all(r["potentially_valid"] for r in replies)
        assert stats["requests_by_member"] == dict(expected)
        assert stats["failovers"] == 0

    def test_explicit_policy_override_per_corpus(
        self, shard_handles, shard_paths
    ):
        # A round-robin client can still run one corpus primary-first.
        docs = [DOC_OK] * 8
        with ShardedClient(
            shard_paths, replica_count=2, read_policy="round-robin"
        ) as ring:
            results = ring.check_corpus(
                [(FIGURE1, docs)], read_policy="primary-first"
            )
            fingerprint = ring.fingerprint(FIGURE1)
            primary = member_label(ring.ring.owner(fingerprint))
            stats = ring.ring_stats
        _replies, trailer = results[0]
        assert trailer["items"] == 8
        assert "windows" not in trailer
        assert stats["requests_by_member"] == {primary: 1}
