"""Shared fixtures: the paper's DTDs and documents, checker factories."""

from __future__ import annotations

import random

import pytest

from repro import PVChecker, parse_xml
from repro.dtd import catalog
from repro.xmlmodel.tree import XmlDocument

# The paper's Example 1 strings, verbatim (whitespace included).
EXAMPLE1_W = (
    "<r><a><b>A quick brown</b><e></e><c> fox jumps over a lazy</c> dog</a></r>"
)
EXAMPLE1_S = (
    "<r><a><b>A quick brown</b><c> fox jumps over a lazy</c> dog<e></e></a></r>"
)
EXAMPLE1_W_PRIME = (
    "<r><a><b><d>A quick brown</d></b><c> fox jumps over a lazy</c>"
    "<d> dog<e></e></d></a></r>"
)

ALGORITHMS = ("kernel", "machine", "figure5", "earley")

#: Catalog DTDs that satisfy the paper's standing assumptions (all usable)
#: and are practical for differential testing.
DIFFERENTIAL_DTDS = (
    "paper-figure1",
    "example5-T1",
    "example6-T2",
    "tei-lite",
    "xhtml-basic",
    "docbook-article",
    "play",
    "dictionary",
    "manuscript",
    "strong-chain",
    "with-any",
)


@pytest.fixture
def fig1():
    return catalog.paper_figure1()


@pytest.fixture
def t1():
    return catalog.example5_t1()


@pytest.fixture
def t2():
    return catalog.example6_t2()


@pytest.fixture
def doc_w() -> XmlDocument:
    return parse_xml(EXAMPLE1_W)


@pytest.fixture
def doc_s() -> XmlDocument:
    return parse_xml(EXAMPLE1_S)


@pytest.fixture
def doc_w_prime() -> XmlDocument:
    return parse_xml(EXAMPLE1_W_PRIME)


@pytest.fixture(params=ALGORITHMS)
def algorithm(request) -> str:
    return request.param


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20060411)  # ICDE 2006 vintage


def checker(dtd, algorithm: str = "machine", **kwargs) -> PVChecker:
    return PVChecker(dtd, algorithm=algorithm, **kwargs)
