"""Tests for the exact PVMachine."""

from __future__ import annotations


from repro.core.machine import PVMachine
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.xmlmodel.delta import SIGMA


def machine(dtd, element, depth=None) -> PVMachine:
    """Default: the exact unbounded (merged GSS) machine."""
    return PVMachine.for_dtd(dtd, element, depth=depth)


class TestPaperContent:
    def test_example1_contents(self, fig1):
        assert not machine(fig1, "a").recognize(["b", "e", "c", SIGMA])
        assert machine(fig1, "a").recognize(["b", "c", SIGMA, "e"])

    def test_empty_content(self, fig1):
        assert machine(fig1, "a").recognize([])
        assert machine(fig1, "e").recognize([])

    def test_empty_element_absorbs_nothing(self, fig1):
        assert not machine(fig1, "e").recognize([SIGMA])
        assert not machine(fig1, "e").recognize(["d"])

    def test_t2_example6_corrected(self, t2):
        # Erratum (finding F-A2): "b b" is valid T2 content outright, so it
        # is PV at any depth; the minimal instance needing one recursive
        # step is "b b b".
        assert machine(t2, "a", depth=0).recognize(["b", "b"])
        assert machine(t2, "a", depth=1).recognize(["b", "b", "b"])
        assert not machine(t2, "a", depth=0).recognize(["b", "b", "b"])

    def test_t1_terminates(self, t1):
        assert machine(t1, "a", depth=8).recognize(["b", "b"])
        assert machine(t1, "a", depth=8).recognize(["a"])


class TestDepthSensitivity:
    def test_t2_chain_needs_depth_per_extra_b(self, t2):
        # b^n as content of a: the innermost (real or missing) a holds two
        # b's and each additional b costs one nesting level, so b^n needs
        # exactly n-2 hypothesized missing a's.
        for count in range(3, 7):
            tokens = ["b"] * count
            assert machine(t2, "a", depth=count - 2).recognize(tokens), count
            assert not machine(t2, "a", depth=count - 3).recognize(tokens), count

    def test_non_recursive_insensitive_to_extra_depth(self, fig1):
        tokens = ["b", "c", SIGMA, "e"]
        for depth in (8, 64):
            assert machine(fig1, "a", depth=depth).recognize(tokens)


class TestStepAPI:
    def test_step_reports_rejection_point(self, fig1):
        engine = machine(fig1, "a")
        assert engine.step("b")
        assert engine.step("e")
        assert not engine.step("c")
        assert engine.rejected_at == 2
        assert not engine.step("d")  # stays rejected
        assert not engine.accepts_now()

    def test_accepts_now_midway(self, fig1):
        engine = machine(fig1, "a")
        assert engine.accepts_now()  # empty content is PV
        engine.step("b")
        assert engine.accepts_now()
        engine.step("c")
        assert engine.accepts_now()


class TestUnproductiveGuards:
    """Exactness beyond the paper's usability assumption."""

    def test_optional_unproductive_is_skippable(self):
        dtd = parse_dtd(
            "<!ELEMENT r (dead?, ok)><!ELEMENT dead (dead)><!ELEMENT ok EMPTY>"
        )
        assert machine(dtd, "r").recognize(["ok"])
        assert machine(dtd, "r").recognize([])

    def test_mandatory_unproductive_blocks(self):
        dtd = parse_dtd(
            "<!ELEMENT r (dead, ok)><!ELEMENT dead (dead)><!ELEMENT ok EMPTY>"
        )
        # ok alone: the word still needs `dead`, which cannot be completed.
        assert not machine(dtd, "r").recognize(["ok"])
        assert not machine(dtd, "r").recognize([])
        # but an actual <dead> token fills the slot (its own content is
        # checked at its own node, not here).
        assert machine(dtd, "r").recognize(["dead", "ok"])

    def test_no_descend_into_unhelpful_missing_element(self):
        dtd = parse_dtd(
            "<!ELEMENT r (mid?)><!ELEMENT mid (x, dead)>"
            "<!ELEMENT x EMPTY><!ELEMENT dead (dead)>"
        )
        # x embeds under mid only alongside `dead`: not completable.
        assert not machine(dtd, "r").recognize(["x"])

    def test_plus_not_erasable_without_productive_body(self):
        dtd = parse_dtd("<!ELEMENT r (dead+)><!ELEMENT dead (dead)>")
        assert not machine(dtd, "r").recognize([])

    def test_star_of_unproductive_is_erasable(self):
        dtd = parse_dtd("<!ELEMENT r (dead*)><!ELEMENT dead (dead)>")
        assert machine(dtd, "r").recognize([])
        assert not machine(dtd, "r").recognize([SIGMA])


class TestOriginalModelExactness:
    """The machine runs on the original models: ?/+ semantics intact."""

    def test_plus_semantics_for_pv(self, fig1):
        # r = (a+): zero a's is still PV (insert one later) because a is
        # productive — Cor 3.1 is sound here.
        assert machine(fig1, "r").recognize([])
        assert machine(fig1, "r").recognize(["a", "a", "a"])

    def test_sigma_direct_in_pcdata_only_content(self, fig1):
        assert machine(fig1, "c").recognize([SIGMA])
        assert machine(fig1, "c").recognize([])
        assert not machine(fig1, "c").recognize(["e"])

    def test_mixed_interleave(self, fig1):
        assert machine(fig1, "d").recognize([SIGMA, "e", SIGMA, "e"])

    def test_any_content(self):
        dtd = catalog.with_any()
        assert machine(dtd, "payload").recognize(["doc", SIGMA, "widget"])


class TestChainVsMerged:
    """For non-PV-strong DTDs, chain mode with depth m+1 is exact, so the
    two modes must agree; for PV-strong DTDs merged mode is the unbounded
    truth and chain mode converges to it as the budget grows."""

    def test_agreement_on_non_recursive(self, fig1):
        import itertools

        alphabet = list(fig1.element_names()) + [SIGMA]
        depth = fig1.element_count + 1
        for element in ("a", "b", "r"):
            for tokens in itertools.product(alphabet, repeat=2):
                if tokens[0] == SIGMA and tokens[1] == SIGMA:
                    continue
                merged = machine(fig1, element).recognize(tokens)
                chain = machine(fig1, element, depth=depth).recognize(tokens)
                assert merged == chain, (element, tokens)

    def test_chain_converges_to_merged_on_strong(self, t2):
        tokens = ["b"] * 6
        assert machine(t2, "a").recognize(tokens)  # unbounded truth
        verdicts = [
            machine(t2, "a", depth=depth).recognize(tokens) for depth in range(7)
        ]
        # Monotone in depth, reaching the unbounded verdict.
        assert verdicts == sorted(verdicts)
        assert verdicts[-1] is True


class TestDeepEmbedding:
    def test_chain_descent(self):
        dtd = catalog.deep_chain(8)
        # c8's content (text) can surface at the top through 8 missing levels.
        assert machine(dtd, "c0", depth=10).recognize([SIGMA])
        assert not machine(dtd, "c0", depth=4).recognize([SIGMA])

    def test_leaf_direct(self):
        dtd = catalog.deep_chain(8)
        assert machine(dtd, "c0", depth=10).recognize(["leaf"])
        assert machine(dtd, "c0", depth=10).recognize(["c5", "leaf"])
        assert not machine(dtd, "c0", depth=10).recognize(["leaf", "c5"])
