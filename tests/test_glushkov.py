"""Tests for the Glushkov position automaton."""

from __future__ import annotations

from repro.dtd.model import PCDATA
from repro.dtd.normalize import normalize_node
from repro.dtd.parser import parse_content_spec
from repro.dtd.stargroups import flatten
from repro.grammar.glushkov import build_glushkov


def automaton(text: str):
    return build_glushkov(parse_content_spec(text).model)


def labels(auto, indices):
    return sorted(
        auto.positions[i].label if auto.positions[i].label else "<group>"
        for i in indices
    )


class TestFirstLastFollow:
    def test_sequence(self):
        auto = automaton("(a, b, c)")
        assert labels(auto, auto.first) == ["a"]
        assert labels(auto, auto.last) == ["c"]
        assert not auto.nullable

    def test_optional_head(self):
        auto = automaton("(a?, b)")
        assert labels(auto, auto.first) == ["a", "b"]
        assert labels(auto, auto.last) == ["b"]

    def test_optional_tail(self):
        auto = automaton("(a, b?)")
        assert labels(auto, auto.last) == ["a", "b"]

    def test_choice(self):
        auto = automaton("(a | b)")
        assert labels(auto, auto.first) == ["a", "b"]
        assert labels(auto, auto.last) == ["a", "b"]

    def test_star_follow_loops(self):
        auto = automaton("(a)*")
        assert auto.nullable
        position = next(iter(auto.first))
        assert position in auto.follow[position]

    def test_plus_not_nullable(self):
        auto = automaton("(a)+")
        assert not auto.nullable

    def test_figure1_a_model(self):
        auto = automaton("(b?, (c | f), d)")
        assert labels(auto, auto.first) == ["b", "c", "f"]
        by_label = {auto.positions[i].label: i for i in range(auto.size)}
        assert labels(auto, auto.follow[by_label["b"]]) == ["c", "f"]
        assert labels(auto, auto.follow[by_label["c"]]) == ["d"]
        assert labels(auto, auto.follow[by_label["f"]]) == ["d"]
        assert labels(auto, auto.follow[by_label["d"]]) == []
        assert labels(auto, auto.last) == ["d"]

    def test_nullable_seq_of_options(self):
        auto = automaton("(a?, b?)")
        assert auto.nullable
        assert labels(auto, auto.first) == ["a", "b"]

    def test_mixed_model_pcdata_position(self):
        spec = parse_content_spec("(a)")  # placeholder; build mixed manually
        del spec
        from repro.dtd.ast import Choice, PCData, Star, Name

        auto = build_glushkov(Star(Choice((PCData(), Name("e")))))
        assert auto.nullable
        position_labels = {p.label for p in auto.positions}
        assert position_labels == {PCDATA, "e"}


class TestFlattenedAutomaton:
    def test_group_positions_acyclic(self):
        flat = flatten(normalize_node(parse_content_spec("(a*, b)").model))
        auto = build_glushkov(flat)
        group = next(p for p in auto.positions if p.is_group)
        assert group.index not in auto.follow[group.index]
        assert group.group == frozenset({"a"})

    def test_group_matches_members(self):
        flat = flatten(normalize_node(parse_content_spec("((a | b))*").model))
        auto = build_glushkov(flat)
        group = auto.positions[0]
        assert group.matches_directly("a")
        assert group.matches_directly("b")
        assert not group.matches_directly("z")

    def test_simple_position_matching(self):
        auto = automaton("(a, b)")
        first = auto.positions[next(iter(auto.first))]
        assert first.matches_directly("a")
        assert not first.matches_directly("b")
