"""Tests for the standard DTD validator (D(T,r) membership)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.earley_pv import EarleyDocumentChecker
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.validity.validator import DTDValidator
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.parser import parse_xml


class TestFigure1Documents:
    def test_paper_valid_extension(self, fig1, doc_w_prime):
        assert DTDValidator(fig1).is_valid(doc_w_prime)

    def test_paper_invalid_documents(self, fig1, doc_w, doc_s):
        validator = DTDValidator(fig1)
        assert not validator.is_valid(doc_w)
        assert not validator.is_valid(doc_s)

    def test_issue_paths_reported(self, fig1, doc_w):
        report = DTDValidator(fig1).validate(doc_w)
        assert not report.valid
        assert any("/r/a[0]" in issue.path for issue in report.issues)


class TestContentRules:
    def test_empty_means_empty(self):
        dtd = parse_dtd("<!ELEMENT a (e)><!ELEMENT e EMPTY>")
        validator = DTDValidator(dtd)
        assert validator.is_valid(parse_xml("<a><e></e></a>"))
        assert not validator.is_valid(parse_xml("<a><e>text</e></a>"))
        assert not validator.is_valid(parse_xml("<a><e><e></e></e></a>"))

    def test_children_content_forbids_text(self):
        dtd = parse_dtd("<!ELEMENT a (e)><!ELEMENT e EMPTY>")
        validator = DTDValidator(dtd)
        assert not validator.is_valid(parse_xml("<a>text<e></e></a>"))

    def test_children_content_allows_whitespace(self):
        dtd = parse_dtd("<!ELEMENT a (e)><!ELEMENT e EMPTY>")
        validator = DTDValidator(dtd)
        assert validator.is_valid(parse_xml("<a>\n  <e></e>\n</a>"))

    def test_mixed_allows_text_everywhere(self):
        dtd = parse_dtd("<!ELEMENT a (#PCDATA | e)*><!ELEMENT e EMPTY>")
        validator = DTDValidator(dtd)
        assert validator.is_valid(parse_xml("<a>x<e></e>y<e></e>z</a>"))
        assert validator.is_valid(parse_xml("<a></a>"))

    def test_mixed_restricts_element_names(self):
        dtd = parse_dtd(
            "<!ELEMENT a (#PCDATA | e)*><!ELEMENT e EMPTY><!ELEMENT f EMPTY>"
        )
        validator = DTDValidator(dtd)
        assert not validator.is_valid(parse_xml("<a><f></f></a>"))

    def test_any_allows_everything_declared(self):
        dtd = catalog.with_any()
        validator = DTDValidator(dtd)
        assert validator.is_valid(
            parse_xml("<doc><meta>m</meta><payload>x<widget></widget></payload></doc>")
        )

    def test_undeclared_element_invalid(self, fig1):
        assert not DTDValidator(fig1).is_valid(parse_xml("<r><ghost></ghost></r>"))

    def test_wrong_root_invalid(self, fig1):
        assert not DTDValidator(fig1).is_valid(parse_xml("<a><c>t</c><d></d></a>"))

    def test_plus_requires_one(self):
        dtd = parse_dtd("<!ELEMENT a (e+)><!ELEMENT e EMPTY>")
        validator = DTDValidator(dtd)
        assert not validator.is_valid(parse_xml("<a></a>"))
        assert validator.is_valid(parse_xml("<a><e></e></a>"))
        assert validator.is_valid(parse_xml("<a><e></e><e></e></a>"))

    def test_order_matters(self):
        dtd = parse_dtd("<!ELEMENT a (x, y)><!ELEMENT x EMPTY><!ELEMENT y EMPTY>")
        validator = DTDValidator(dtd)
        assert validator.is_valid(parse_xml("<a><x></x><y></y></a>"))
        assert not validator.is_valid(parse_xml("<a><y></y><x></x></a>"))


class TestAgainstEarley:
    """Differential: the structural validator vs G_{T,r} membership."""

    @pytest.mark.parametrize(
        "name", ["paper-figure1", "play", "dictionary", "example6-T2"]
    )
    def test_generated_docs_agree(self, name):
        dtd = catalog.load(name)
        earley = EarleyDocumentChecker(dtd)
        validator = DTDValidator(dtd)
        generator = DocumentGenerator(dtd, seed=42)
        rng = random.Random(7)
        for document in generator.documents(6, target_nodes=14):
            assert validator.is_valid(document)
            assert earley.is_valid(document)
            # Mutate: swapping adjacent different children usually breaks it;
            # whatever the outcome, the two validators must agree.
            from repro.workloads.corrupt import corrupt_swap

            mutated = corrupt_swap(document, rng)
            if mutated is not None:
                assert validator.is_valid(mutated) == earley.is_valid(mutated)

    def test_generated_documents_for_all_catalog_dtds(self):
        for name in (
            "paper-figure1", "tei-lite", "xhtml-basic", "docbook-article",
            "play", "dictionary", "manuscript", "with-any",
        ):
            dtd = catalog.load(name)
            validator = DTDValidator(dtd)
            for seed in range(3):
                document = DocumentGenerator(dtd, seed=seed).document(30)
                assert validator.is_valid(document), (name, seed)
