"""Tests for the DTD catalog and the classification reports."""

from __future__ import annotations

import pytest

from repro.core.classify import classify_dtd
from repro.dtd import catalog
from repro.dtd.analysis import DTDClass

EXPECTED_CLASSES = {
    "paper-figure1": DTDClass.NON_RECURSIVE,
    "example5-T1": DTDClass.PV_STRONG_RECURSIVE,
    "example6-T2": DTDClass.PV_STRONG_RECURSIVE,
    "tei-lite": DTDClass.PV_WEAK_RECURSIVE,
    "xhtml-basic": DTDClass.PV_WEAK_RECURSIVE,
    "docbook-article": DTDClass.PV_WEAK_RECURSIVE,
    "play": DTDClass.NON_RECURSIVE,
    "dictionary": DTDClass.NON_RECURSIVE,
    "manuscript": DTDClass.NON_RECURSIVE,
    "strong-chain": DTDClass.PV_STRONG_RECURSIVE,
    # bad -> (worse) -> (bad) is a (sentential) self-derivation through
    # non-star-group positions even though neither element is productive.
    "with-unproductive": DTDClass.PV_STRONG_RECURSIVE,
    "with-any": DTDClass.PV_WEAK_RECURSIVE,
}


def test_registry_covers_expected():
    assert set(catalog.catalog_names()) == set(EXPECTED_CLASSES)


@pytest.mark.parametrize("name", sorted(EXPECTED_CLASSES))
def test_loads_and_classifies(name):
    dtd = catalog.load(name)
    report = classify_dtd(dtd)
    assert report.dtd_class is EXPECTED_CLASSES[name], report.summary()
    assert report.element_count == len(dtd)
    assert report.occurrence_count >= 0


def test_load_unknown_raises():
    with pytest.raises(KeyError):
        catalog.load("nope")


def test_fresh_instances():
    assert catalog.load("play") is not catalog.load("play")
    assert catalog.load("play") == catalog.load("play")


def test_deep_chain_parametrized():
    dtd = catalog.deep_chain(5)
    assert dtd.element_count == 7  # c0..c5 + leaf
    assert classify_dtd(dtd).dtd_class is DTDClass.NON_RECURSIVE


def test_classification_report_fields():
    report = classify_dtd(catalog.example5_t1())
    assert report.is_recursive
    assert report.needs_depth_bound
    assert report.strong_recursive_elements == ("a",)
    assert "PV-strong" in report.summary()

    report2 = classify_dtd(catalog.play())
    assert not report2.is_recursive
    assert not report2.needs_depth_bound


def test_unusable_reported():
    report = classify_dtd(catalog.with_unproductive())
    assert set(report.unusable_elements) == {"bad", "worse"}
