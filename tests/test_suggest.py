"""Tests for markup suggestions (the editor-UX layer)."""

from __future__ import annotations


from repro.core.suggest import MarkupSuggester, WrapSuggestion
from repro.dtd import catalog
from repro.xmlmodel.parser import parse_xml


class TestWrapsForRange:
    def test_figure3_suggestions(self, fig1, doc_s):
        """On Example 1's s, the suggester offers the Figure 3 repairs
        (plus the other genuinely completable alternatives)."""
        suggester = MarkupSuggester(fig1)
        a = doc_s.root.element_children()[0]
        b = a.element_children()[0]
        # Inside <b>: d wraps the text directly (Figure 3's choice); c and
        # f work too — c's text is legal and either embeds under a missing
        # f for b's (d | f) slot.
        names = set(suggester.wraps_for_range(b, 0, 1))
        assert "d" in names
        assert names == {"c", "d", "f"}
        # Wrapping " dog"<e/> (children 2..4 of a) in d is the second
        # Figure 3 insertion.
        assert "d" in suggester.wraps_for_range(a, 2, 4)

    def test_no_suggestions_when_hopeless(self, fig1, doc_s):
        suggester = MarkupSuggester(fig1)
        a = doc_s.root.element_children()[0]
        # Wrapping the whole a-content leaves nothing for (b?,(c|f),d):
        # only... b can host (d|f)? the content is b,c,s,e - no single
        # element hosts that sequence.
        assert suggester.wraps_for_range(a, 0, 4) == []

    def test_empty_range_inserts(self, fig1):
        doc = parse_xml("<r><a><c>t</c><d></d></a></r>")
        suggester = MarkupSuggester(fig1)
        a = doc.root.element_children()[0]
        # Before c: an empty <b> fills the b? slot; even an empty <e> is
        # admissible (it embeds under the missing b via d).  An <a> is not:
        # a never occurs inside a.
        names = suggester.wraps_for_range(a, 0, 0)
        assert "b" in names
        assert "e" in names
        assert "a" not in names
        assert "r" not in names

    def test_soundness_against_incremental(self, fig1, doc_s):
        """Everything suggested must pass the exact incremental check, and
        everything that passes must be suggested (over all names)."""
        from repro.core.incremental import IncrementalChecker

        suggester = MarkupSuggester(fig1)
        incremental = IncrementalChecker(fig1)
        a = doc_s.root.element_children()[0]
        for start in range(len(a.children) + 1):
            for end in range(start, len(a.children) + 1):
                suggested = set(suggester.wraps_for_range(a, start, end))
                truth = {
                    name
                    for name in fig1.element_names()
                    if incremental.check_markup_insert(a, start, end, name)
                }
                assert suggested == truth, (start, end)


class TestAllWraps:
    def test_exhaustive_on_small_node(self, fig1):
        doc = parse_xml("<r><a><c>t</c><d></d></a></r>")
        suggester = MarkupSuggester(fig1)
        a = doc.root.element_children()[0]
        suggestions = suggester.all_wraps(a)
        assert WrapSuggestion("b", 0, 0) in suggestions
        # Every suggestion names a declared element and a sane range.
        for suggestion in suggestions:
            assert suggestion.name in fig1
            assert 0 <= suggestion.start <= suggestion.end <= len(a.children)

    def test_max_span(self, fig1, doc_s):
        suggester = MarkupSuggester(fig1)
        a = doc_s.root.element_children()[0]
        narrow = suggester.all_wraps(a, max_span=1)
        for suggestion in narrow:
            assert suggestion.end - suggestion.start <= 1


class TestTextInsertionPoints:
    def test_mixed_parent_everywhere(self, fig1):
        doc = parse_xml("<r><a><c>t</c><d><e></e></d></a></r>")
        suggester = MarkupSuggester(fig1)
        d = doc.root.element_children()[0].element_children()[1]
        assert suggester.text_insertion_points(d) == [0, 1]

    def test_children_parent_positional(self):
        from repro.dtd.parser import parse_dtd

        dtd = parse_dtd(
            "<!ELEMENT a (b, c)><!ELEMENT b (#PCDATA)><!ELEMENT c EMPTY>"
        )
        suggester = MarkupSuggester(dtd)
        # With the b slot open, only the position before <c/> can host
        # text (wrappable into a fresh b).
        partial = parse_xml("<a><c></c></a>")
        assert suggester.text_insertion_points(partial.root) == [0]
        # With both slots filled, nowhere: text cannot be moved inside the
        # existing <b>.
        full = parse_xml("<a><b></b><c></c></a>")
        assert suggester.text_insertion_points(full.root) == []


class TestRealisticDTD:
    def test_manuscript_suggestions(self):
        dtd = catalog.manuscript()
        doc = parse_xml(
            "<manuscript><msheader><title>t</title><repository>r</repository>"
            "<shelfmark>s</shelfmark></msheader>"
            "<folio><column><textline>some damaged text</textline>"
            "</column></folio></manuscript>"
        )
        suggester = MarkupSuggester(dtd)
        textline = next(
            e for e in doc.iter_elements() if e.name == "textline"
        )
        names = set(suggester.wraps_for_range(textline, 0, 1))
        # All the inline transcription layers apply to a text run.
        assert {"damage", "add", "del", "corr", "abbr", "gloss"} <= names
        # Structural elements do not.
        assert "folio" not in names
