"""Differential tests: all checkers must agree (or their divergences are pinned).

The exactness ladder:

* ``PVMachine`` (merged, unbounded)  — exact for all DTDs,
* per-node content-grammar Earley    — exact reference (Theorem 1 per node),
* whole-document Earley on ``G'``    — Theorem 1 verbatim,
* Figure-5 ECRecognizer (refined)    — the paper's algorithm + prose rules,
* naive bounded ``Ext(w, T)`` search — Definitions 2-3 literally.

Random valid documents, their Theorem-2 degradations, and structure-breaking
corruptions are pushed through all of them.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.earley_pv import EarleyDocumentChecker
from repro.core.pv import PVChecker
from repro.dtd import catalog
from repro.workloads.corrupt import corrupt_inject, corrupt_rename, corrupt_swap
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator

DTD_NAMES = (
    "paper-figure1",
    "example6-T2",
    "play",
    "dictionary",
    "manuscript",
    "tei-lite",
    "docbook-article",
    "with-any",
)


def _variants(dtd, seed: int):
    """Generate a mixed bag of documents: valid, degraded, corrupted."""
    rng = random.Random(seed)
    generator = DocumentGenerator(dtd, seed=seed)
    for document in generator.documents(3, target_nodes=18, max_depth=8):
        yield document
        degraded, _count = degrade(document, rng, fraction=0.6)
        yield degraded
        swapped = corrupt_swap(document, rng)
        if swapped is not None:
            yield swapped
        renamed = corrupt_rename(document, rng, dtd.element_names())
        if renamed is not None:
            yield renamed
        yield corrupt_inject(document, rng, rng.choice(dtd.element_names()))


@pytest.mark.parametrize("name", DTD_NAMES)
def test_machine_agrees_with_earley_per_node(name):
    dtd = catalog.load(name)
    machine_checker = PVChecker(dtd, algorithm="machine")
    earley_checker = PVChecker(dtd, algorithm="earley")
    for index, document in enumerate(_variants(dtd, seed=101)):
        machine_verdict = machine_checker.is_potentially_valid(document)
        earley_verdict = earley_checker.is_potentially_valid(document)
        assert machine_verdict == earley_verdict, (name, index)


@pytest.mark.parametrize("name", DTD_NAMES)
def test_per_node_agrees_with_whole_document_earley(name):
    """Section 4's reduction: node-wise ECPV == whole-document G' parsing."""
    dtd = catalog.load(name)
    machine_checker = PVChecker(dtd, algorithm="machine")
    whole = EarleyDocumentChecker(dtd)
    for index, document in enumerate(_variants(dtd, seed=77)):
        node_wise = machine_checker.is_potentially_valid(document)
        document_wise = whole.is_potentially_valid(document)
        assert node_wise == document_wise, (name, index)


@pytest.mark.parametrize("name", DTD_NAMES)
def test_figure5_refined_agrees_on_workloads(name):
    """The refined Figure-5 recognizer matches the exact machine on all
    generated workloads.  (Verbatim mode has pinned divergences, F-A1.)"""
    dtd = catalog.load(name)
    machine_checker = PVChecker(dtd, algorithm="machine")
    figure5_checker = PVChecker(dtd, algorithm="figure5")
    for index, document in enumerate(_variants(dtd, seed=55)):
        machine_verdict = machine_checker.is_potentially_valid(document)
        figure5_verdict = figure5_checker.is_potentially_valid(document)
        assert machine_verdict == figure5_verdict, (name, index)


@pytest.mark.parametrize("name", ("paper-figure1", "example6-T2", "play"))
def test_naive_oracle_consistency(name):
    """Soundness against Definitions 2-3: whenever the bounded naive search
    finds a valid extension, every checker must say yes; whenever it
    refutes the bounded question, the checker may only say yes if the
    completion genuinely needs more insertions than the bound."""
    dtd = catalog.load(name)
    from repro.baselines.naive import naive_potential_validity
    from repro.core.completion import CompletionError, complete_document

    bound = 3
    machine_checker = PVChecker(dtd, algorithm="machine")
    rng = random.Random(9)
    generator = DocumentGenerator(dtd, seed=5)
    for document in generator.documents(4, target_nodes=6, max_depth=4):
        for candidate in (
            document,
            degrade(document, rng, fraction=0.8)[0],
            corrupt_inject(document, rng, rng.choice(dtd.element_names())),
        ):
            oracle = naive_potential_validity(
                dtd, candidate, max_insertions=bound, node_limit=60_000
            )
            verdict = machine_checker.is_potentially_valid(candidate)
            if oracle is True:
                assert verdict, candidate
            elif oracle is False:
                if verdict:
                    # The checker found it PV: there must be a completion,
                    # and it must need more insertions than the bound
                    # (note: completion is not guaranteed minimal, so this
                    # is a one-sided consistency check).
                    result = complete_document(dtd, candidate)
                    assert result.inserted > bound, (name, result.inserted)
                else:
                    with pytest.raises(CompletionError):
                        complete_document(dtd, candidate)


def test_content_level_exhaustive_small_alphabet(fig1):
    """Exhaustive differential over all content sequences up to length 3
    for every element of the Figure 1 DTD: machine == per-node Earley."""
    from itertools import product

    from repro.grammar.build import build_content_cfg, content_nonterminal
    from repro.grammar.earley import EarleyRecognizer
    from repro.core.machine import PVMachine
    from repro.xmlmodel.delta import SIGMA

    alphabet = list(fig1.element_names()) + [SIGMA]
    earley = EarleyRecognizer(build_content_cfg(fig1))
    mismatches = []
    for element in fig1.element_names():
        start = content_nonterminal(element)
        for length in range(0, 3):
            for tokens in product(alphabet, repeat=length):
                # Delta never yields adjacent sigmas.
                if any(
                    tokens[i] == SIGMA and tokens[i + 1] == SIGMA
                    for i in range(len(tokens) - 1)
                ):
                    continue
                exact = PVMachine.for_dtd(fig1, element).recognize(tokens)
                reference = earley.recognizes(list(tokens), start=start)
                if exact != reference:
                    mismatches.append((element, tokens, exact, reference))
    assert not mismatches, mismatches[:10]


def test_content_level_exhaustive_t2(t2):
    from itertools import product

    from repro.grammar.build import build_content_cfg, content_nonterminal
    from repro.grammar.earley import EarleyRecognizer
    from repro.core.machine import PVMachine

    alphabet = ["a", "b"]
    earley = EarleyRecognizer(build_content_cfg(t2))
    for element in alphabet:
        start = content_nonterminal(element)
        for length in range(0, 5):
            for tokens in product(alphabet, repeat=length):
                exact = PVMachine.for_dtd(t2, element).recognize(tokens)
                reference = earley.recognizes(list(tokens), start=start)
                assert exact == reference, (element, tokens)
