"""Hypothesis round-trip properties for the XML and DTD substrates."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dtd.parser import parse_dtd
from repro.dtd.serialize import dtd_to_text
from repro.dtd.random_gen import RandomDTDConfig, random_dtd
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.tree import XmlElement, XmlText

_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_names = st.sampled_from(["a", "b", "c", "item", "note", "x1", "y-z", "w.v"])
_texts = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x2FF),
    min_size=1,
    max_size=12,
)


@st.composite
def elements(draw, depth=3):
    """Random element trees with mixed text/element children."""
    name = draw(_names)
    element = XmlElement(name)
    if depth > 0:
        count = draw(st.integers(0, 3))
        for _ in range(count):
            if draw(st.booleans()):
                element.append(XmlText(draw(_texts)))
            else:
                element.append(draw(elements(depth=depth - 1)))
    attr_count = draw(st.integers(0, 2))
    for index in range(attr_count):
        element.attributes[f"at{index}"] = draw(_texts)
    return element


class TestXmlRoundTrip:
    @_settings
    @given(tree=elements())
    def test_serialize_parse_round_trip(self, tree):
        serialized = to_xml(tree)
        reparsed = parse_xml(serialized).root
        assert to_xml(reparsed) == serialized

    @_settings
    @given(tree=elements())
    def test_content_preserved(self, tree):
        reparsed = parse_xml(to_xml(tree)).root
        # Adjacent text nodes may merge on reparse; content is invariant.
        assert reparsed.content() == tree.content()

    @_settings
    @given(tree=elements())
    def test_self_closing_form_equivalent(self, tree):
        compact = to_xml(tree, self_closing=True)
        expanded = to_xml(parse_xml(compact).root)
        assert expanded == to_xml(tree)

    @_settings
    @given(tree=elements())
    def test_copy_equals_original(self, tree):
        assert to_xml(tree.copy()) == to_xml(tree)

    @_settings
    @given(tree=elements(), start=st.integers(0, 3), width=st.integers(0, 3))
    def test_wrap_unwrap_inverse(self, tree, start, width):
        count = len(tree.children)
        lo = min(start, count)
        hi = min(lo + width, count)
        before = to_xml(tree)
        wrapper = tree.wrap_children(lo, hi, "wrapper")
        tree.unwrap_child(wrapper)
        assert to_xml(tree) == before


class TestDtdRoundTrip:
    @_settings
    @given(
        elements_count=st.integers(4, 20),
        seed=st.integers(0, 999),
        recursion=st.sampled_from(["none", "weak", "strong"]),
    )
    def test_serialize_parse_round_trip(self, elements_count, seed, recursion):
        dtd = random_dtd(
            RandomDTDConfig(elements=elements_count, seed=seed, recursion=recursion)
        )
        text = dtd_to_text(dtd)
        reparsed = parse_dtd(text, root=dtd.root)
        assert dtd_to_text(reparsed) == text
        assert reparsed.element_names() == dtd.element_names()
        assert reparsed.occurrence_count == dtd.occurrence_count
