"""Tests for configuration resolution and the error hierarchy."""

from __future__ import annotations

import pytest

from repro.config import CheckerConfig, DEFAULT_CONFIG, DEFAULT_DEPTH_BOUND
from repro import errors


class TestCheckerConfig:
    def test_defaults(self):
        assert DEFAULT_CONFIG.depth_bound is None
        assert not DEFAULT_CONFIG.strict_depth
        assert not DEFAULT_CONFIG.require_usable

    def test_resolved_depth_explicit(self):
        config = CheckerConfig(depth_bound=7)
        assert config.resolved_depth(100, is_pv_strong=True) == 7

    def test_resolved_depth_derived_for_non_strong(self):
        config = CheckerConfig()
        assert config.resolved_depth(10, is_pv_strong=False) == 11

    def test_resolved_depth_default_for_strong(self):
        config = CheckerConfig()
        assert config.resolved_depth(10, is_pv_strong=True) == DEFAULT_DEPTH_BOUND

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.depth_bound = 3  # type: ignore[misc]


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "DTDError",
            "DTDSyntaxError",
            "DTDSemanticError",
            "UnknownElementError",
            "UnusableElementError",
            "XmlError",
            "XmlSyntaxError",
            "XmlStructureError",
            "GrammarError",
            "PVError",
            "DepthBoundExceeded",
            "EditRejected",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_dtd_syntax_error_position(self):
        error = errors.DTDSyntaxError("bad token", position=42)
        assert "42" in str(error)
        assert error.position == 42

    def test_xml_syntax_error_location(self):
        error = errors.XmlSyntaxError("oops", line=3, column=9)
        assert "line 3" in str(error)

    def test_unknown_element_error(self):
        error = errors.UnknownElementError("ghost")
        assert error.name == "ghost"
        assert "ghost" in str(error)

    def test_unusable_element_error_lists_names(self):
        error = errors.UnusableElementError(("b", "a"))
        assert "a, b" in str(error)

    def test_depth_bound_exceeded(self):
        error = errors.DepthBoundExceeded(5)
        assert error.depth == 5

    def test_edit_rejected_reason(self):
        error = errors.EditRejected("would break PV")
        assert error.reason == "would break PV"
