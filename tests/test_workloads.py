"""Tests for the workload generators."""

from __future__ import annotations

import random

import pytest

from repro.dtd import catalog
from repro.errors import UnusableElementError
from repro.validity.validator import DTDValidator
from repro.workloads.corrupt import corrupt_inject, corrupt_rename, corrupt_swap
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.workloads.textgen import WORDS, phrase, words
from repro.xmlmodel.serialize import to_xml

ALL_GENERATABLE = (
    "paper-figure1",
    "example5-T1",
    "example6-T2",
    "tei-lite",
    "xhtml-basic",
    "docbook-article",
    "play",
    "dictionary",
    "manuscript",
    "strong-chain",
    "with-any",
)


class TestTextGen:
    def test_deterministic(self):
        assert words(random.Random(1), 5) == words(random.Random(1), 5)

    def test_phrase_never_blank(self):
        rng = random.Random(3)
        for _ in range(100):
            assert phrase(rng).strip()

    def test_vocabulary_is_markup_safe(self):
        for word in WORDS:
            assert "<" not in word and "&" not in word


class TestDocGen:
    @pytest.mark.parametrize("name", ALL_GENERATABLE)
    def test_always_valid(self, name):
        dtd = catalog.load(name)
        validator = DTDValidator(dtd)
        for seed in range(5):
            document = DocumentGenerator(dtd, seed=seed).document(25)
            report = validator.validate(document)
            assert report.valid, (name, seed, report.issues[:3])

    def test_deterministic_given_seed(self):
        dtd = catalog.play()
        first = DocumentGenerator(dtd, seed=9).document(30)
        second = DocumentGenerator(dtd, seed=9).document(30)
        assert to_xml(first) == to_xml(second)

    def test_size_scales_with_budget(self):
        dtd = catalog.manuscript()
        small = DocumentGenerator(dtd, seed=1).document(target_nodes=10)
        large = DocumentGenerator(dtd, seed=1).document(target_nodes=300)
        assert large.node_count() > small.node_count() * 2

    def test_depth_bound_respected_loosely(self):
        dtd = catalog.xhtml_basic()
        document = DocumentGenerator(dtd, seed=4).document(
            target_nodes=200, max_depth=5
        )
        # Frugal completion may add a few levels beyond the soft bound, but
        # not many.
        assert document.depth() <= 5 + 4

    def test_unproductive_root_raises(self):
        dtd = catalog.with_unproductive()
        bad = catalog.parse_dtd if False else None
        del bad
        from repro.dtd.parser import parse_dtd

        broken = parse_dtd(
            "<!ELEMENT bad (worse)><!ELEMENT worse (bad)>", root="bad"
        )
        with pytest.raises(UnusableElementError):
            DocumentGenerator(broken)

    def test_documents_iterator(self):
        dtd = catalog.play()
        docs = list(DocumentGenerator(dtd, seed=2).documents(3, 15))
        assert len(docs) == 3
        assert len({to_xml(d) for d in docs}) >= 2  # independent draws


class TestDegrade:
    def test_degraded_preserves_content(self):
        dtd = catalog.manuscript()
        document = DocumentGenerator(dtd, seed=6).document(30)
        degraded, removed = degrade(document, random.Random(1), 0.5)
        assert degraded.content() == document.content()
        assert removed > 0

    def test_source_untouched(self):
        dtd = catalog.play()
        document = DocumentGenerator(dtd, seed=6).document(20)
        before = to_xml(document)
        degrade(document, random.Random(1), 0.9)
        assert to_xml(document) == before

    def test_keep_set_respected(self):
        dtd = catalog.play()
        document = DocumentGenerator(dtd, seed=8).document(30)
        degraded, _ = degrade(
            document, random.Random(2), 1.0, keep=frozenset({"speech"})
        )
        original = sum(1 for e in document.iter_elements() if e.name == "speech")
        remaining = sum(1 for e in degraded.iter_elements() if e.name == "speech")
        assert remaining == original

    def test_full_degradation_leaves_root(self):
        dtd = catalog.play()
        document = DocumentGenerator(dtd, seed=8).document(25)
        degraded, _ = degrade(document, random.Random(3), 1.0)
        assert degraded.root.name == "play"
        assert all(
            e is degraded.root or e.parent is degraded.root
            for e in degraded.iter_elements()
        ) or degraded.root.element_children() == []


class TestCorrupt:
    def test_swap_changes_order(self):
        dtd = catalog.play()
        document = DocumentGenerator(dtd, seed=11).document(25)
        mutated = corrupt_swap(document, random.Random(4))
        assert mutated is not None
        assert to_xml(mutated) != to_xml(document)

    def test_rename_changes_one_element(self):
        dtd = catalog.play()
        document = DocumentGenerator(dtd, seed=11).document(20)
        mutated = corrupt_rename(document, random.Random(5), dtd.element_names())
        assert mutated is not None
        original_names = sorted(e.name for e in document.iter_elements())
        mutated_names = sorted(e.name for e in mutated.iter_elements())
        assert original_names != mutated_names

    def test_inject_adds_one(self):
        dtd = catalog.play()
        document = DocumentGenerator(dtd, seed=11).document(20)
        mutated = corrupt_inject(document, random.Random(6), "play")
        count = sum(1 for _ in mutated.iter_elements())
        assert count == sum(1 for _ in document.iter_elements()) + 1

    def test_swap_none_when_impossible(self):
        from repro.xmlmodel.parser import parse_xml

        document = parse_xml("<a><b></b></a>")
        assert corrupt_swap(document, random.Random(1)) is None
