"""Tests for the placement core: PlacementView epochs, memo, disciplines."""

from __future__ import annotations

import pytest

from repro.server.placement import PlacementView, ShardRing, member_label
from repro.server.protocol import ProtocolError

MEMBERS = ["a.sock", "b.sock", "c.sock"]


class TestOwnersMemo:
    def test_owners_match_the_ring(self):
        view = PlacementView(MEMBERS, replica_count=2)
        ring = ShardRing(MEMBERS, replica_count=2)
        for key in (f"key-{i}" for i in range(50)):
            assert view.owners(key) == ring.owners(key)

    def test_memo_returns_a_copy(self):
        view = PlacementView(MEMBERS, replica_count=2)
        first = view.owners("key")
        first.append("mutated")
        assert view.owners("key") == view.ring.owners("key")

    def test_adoption_invalidates_the_memo(self):
        # The memo must never serve placement computed under an older
        # view — that is the bug class where a health-chased epoch bump
        # leaves a stale route to a removed member.
        view = PlacementView(MEMBERS, replica_count=1, epoch=1)
        keys = [f"key-{i}" for i in range(200)]
        before = {k: view.owners(k) for k in keys}  # memo warm
        removed = before[keys[0]][0]
        survivors = [m for m in MEMBERS if m != removed]
        assert view.adopt(survivors, epoch=2)
        for key in keys:
            assert removed not in view.owners(key)

    def test_direct_ring_mutation_invalidates_the_memo(self):
        # Tests and embedders drive scale events by mutating the ring in
        # place; the memo keys on the ring's version and must follow.
        view = PlacementView(MEMBERS, replica_count=1)
        keys = [f"key-{i}" for i in range(200)]
        before = {k: view.owners(k)[0] for k in keys}  # memo warm
        victim = before[keys[0]]
        view.ring.remove(victim)
        for key in keys:
            assert view.owners(key)[0] != victim

    def test_preference_survives_concurrent_membership_churn(self):
        # Routed calls race scale events by design (the ring property
        # invites direct mutation): a reader mid-walk must see either
        # the old or the new view, never crash on a half-applied one.
        import threading

        view = PlacementView(MEMBERS, replica_count=2)
        errors: list[Exception] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                try:
                    preference = view.preference("hot-key")
                    assert preference, "empty preference"
                    view.owners("hot-key")
                except Exception as error:  # noqa: BLE001 - collected
                    errors.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(300):
            view.ring.remove("c.sock")
            view.ring.add("c.sock")
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]

    def test_publish_invalidates_the_memo(self):
        view = PlacementView(MEMBERS, replica_count=1, epoch=1)
        keys = [f"key-{i}" for i in range(200)]
        owners_before = {k: view.owners(k)[0] for k in keys}
        removed = owners_before[keys[0]]
        survivors = [m for m in MEMBERS if m != removed]
        view.publish(2, survivors, replica_count=1)
        for key in keys:
            assert view.owners(key)[0] != removed


class TestClientDiscipline:
    def test_older_epoch_is_ignored(self):
        view = PlacementView(MEMBERS, epoch=5)
        assert view.adopt(["x.sock"], epoch=4) is False
        assert view.epoch == 5
        assert [member_label(m) for m in view.members] == sorted(MEMBERS)

    def test_equal_and_newer_epochs_are_adopted(self):
        view = PlacementView(MEMBERS, epoch=5)
        assert view.adopt(MEMBERS[:2], epoch=5)
        assert view.adopt(MEMBERS[:1], epoch=6)
        assert view.epoch == 6
        assert view.refreshes == 2

    def test_empty_member_list_is_ignored(self):
        view = PlacementView(MEMBERS, epoch=1)
        assert view.adopt([], epoch=9) is False
        assert view.epoch == 1
        assert len(view) == 3

    def test_epochless_adopt_rebuilds_without_stamping(self):
        view = PlacementView(MEMBERS)
        assert view.adopt(MEMBERS[:2])
        assert view.epoch is None
        assert view.refreshes == 0

    def test_adopt_fields_parses_a_wire_view(self):
        view = PlacementView(MEMBERS, epoch=1)
        assert view.adopt_fields(
            {
                "epoch": 3,
                "members": ["127.0.0.1:8750", "/run/pv.sock"],
                "replica_count": 2,
                "read_policy": "round-robin",
            }
        )
        assert view.epoch == 3
        assert view.replica_count == 2
        assert view.read_policy == "round-robin"
        assert ("127.0.0.1", 8750) in view.members

    def test_wire_view_without_a_policy_clears_a_learned_one(self):
        # A ring reverted to the default policy must take its clients
        # along: wire views always name their advertised policy, so an
        # absent field means "none advertised", not "keep the old one".
        view = PlacementView(MEMBERS, epoch=1, read_policy="round-robin")
        assert view.adopt_fields({"epoch": 2, "members": list(MEMBERS)})
        assert view.read_policy is None

    def test_plain_adopt_keeps_the_learned_policy(self):
        # A policy-free refresh (no wire view behind it) carries no
        # policy information and must not clear anything.
        view = PlacementView(MEMBERS, epoch=1, read_policy="round-robin")
        assert view.adopt(MEMBERS[:2], epoch=2)
        assert view.read_policy == "round-robin"
        assert view.adopt(MEMBERS[:2], epoch=3, read_policy=None)
        assert view.read_policy is None

    def test_adopt_fields_rejects_garbage(self):
        view = PlacementView(MEMBERS, epoch=1)
        assert view.adopt_fields({}) is False
        assert view.adopt_fields({"epoch": "3", "members": ["a"]}) is False
        assert view.adopt_fields({"epoch": 3, "members": []}) is False
        assert view.adopt_fields({"epoch": 3, "members": "a.sock"}) is False
        assert view.epoch == 1


class TestServerDiscipline:
    def test_publish_accepts_any_epoch_when_unpublished(self):
        view = PlacementView()
        assert view.details() is None
        assert view.as_tuple() is None
        view.publish(7, ["a", "b"], replica_count=2)
        assert view.as_tuple() == (7, ["a", "b"], 2)

    def test_older_publish_is_wrong_epoch_with_details(self):
        view = PlacementView()
        view.publish(5, ["a", "b"], replica_count=2,
                     read_policy="least-inflight")
        with pytest.raises(ProtocolError) as excinfo:
            view.publish(4, ["a"])
        assert excinfo.value.code == "wrong-epoch"
        assert excinfo.value.details == {
            "epoch": 5,
            "members": ["a", "b"],
            "replica_count": 2,
            "read_policy": "least-inflight",
        }

    def test_equal_epoch_with_different_contents_is_rejected(self):
        view = PlacementView()
        view.publish(5, ["a", "b"])
        with pytest.raises(ProtocolError):
            view.publish(5, ["a"])
        with pytest.raises(ProtocolError):
            view.publish(5, ["a", "b"], replica_count=2)
        with pytest.raises(ProtocolError):
            view.publish(5, ["a", "b"], read_policy="round-robin")

    def test_identical_republish_is_idempotent(self):
        view = PlacementView()
        view.publish(5, ["b", "a"], replica_count=2)
        view.publish(5, ["b", "a"], replica_count=2)  # no raise
        assert view.as_tuple() == (5, ["b", "a"], 2)

    def test_check_request_epoch(self):
        view = PlacementView()
        view.check_request_epoch(1)  # no view yet: everything passes
        view.publish(3, ["a"])
        view.check_request_epoch(None)  # epoch-less clients pass
        view.check_request_epoch(3)
        view.check_request_epoch(9)
        with pytest.raises(ProtocolError) as excinfo:
            view.check_request_epoch(2)
        assert excinfo.value.code == "wrong-epoch"
        assert excinfo.value.details["epoch"] == 3

    def test_published_member_order_is_preserved(self):
        # The coordinator compares pushed views verbatim; the view must
        # report members exactly as published, not re-sorted.
        view = PlacementView()
        view.publish(1, ["z", "a", "m"])
        assert view.as_tuple() == (1, ["z", "a", "m"], 1)
        assert view.details()["members"] == ["z", "a", "m"]
