"""Tests for XML lexing/parsing (well-formedness) and serialization."""

from __future__ import annotations

import pytest

from repro.errors import XmlSyntaxError
from repro.xmlmodel.parser import parse_fragment, parse_xml
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.tree import XmlText


class TestWellFormed:
    def test_simple_round_trip(self):
        source = "<a><b>hello</b> world<e></e></a>"
        assert to_xml(parse_xml(source)) == source

    def test_self_closing_expands(self):
        doc = parse_xml("<a><e/></a>")
        assert to_xml(doc) == "<a><e></e></a>"
        assert to_xml(doc, self_closing=True) == "<a><e/></a>"

    def test_attributes_preserved(self):
        doc = parse_xml('<a id="1" lang=\'en\'><b role="x"></b></a>')
        assert doc.root.attributes == {"id": "1", "lang": "en"}
        assert to_xml(doc) == '<a id="1" lang="en"><b role="x"></b></a>'

    def test_entities_decoded_and_reescaped(self):
        doc = parse_xml("<a>fish &amp; chips &lt;tag&gt; &#65;&#x42;</a>")
        assert doc.content() == "fish & chips <tag> AB"
        assert to_xml(doc) == "<a>fish &amp; chips &lt;tag&gt; AB</a>"

    def test_cdata_becomes_text(self):
        doc = parse_xml("<a><![CDATA[<raw> & stuff]]></a>")
        assert doc.content() == "<raw> & stuff"

    def test_comments_and_pis_skipped(self):
        doc = parse_xml("<?xml version='1.0'?><!-- hi --><a>x<!-- y -->z</a>")
        assert doc.content() == "xz"

    def test_doctype_skipped(self):
        doc = parse_xml(
            "<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>body</a>"
        )
        assert doc.root.name == "a"

    def test_whitespace_outside_root_ok(self):
        assert parse_xml("   <a></a>\n  ").root.name == "a"

    def test_text_split_across_cdata_merges(self):
        doc = parse_xml("<a>one<![CDATA[ two]]> three</a>")
        # One maximal run of character data -> a single text node.
        assert len(doc.root.children) == 1
        assert isinstance(doc.root.children[0], XmlText)

    def test_parse_fragment_returns_detached_element(self):
        fragment = parse_fragment("<b>hi</b>")
        assert fragment.parent is None
        assert fragment.name == "b"


class TestErrors:
    @pytest.mark.parametrize(
        "source,message_part",
        [
            ("<a><b></a>", "does not match"),
            ("<a>", "unclosed"),
            ("</a>", "unmatched"),
            ("<a></a><b></b>", "multiple root"),
            ("<a></a>junk", "outside the root"),
            ("text only", "outside the root"),
            ("", "no root"),
            ("<a attr=x></a>", "quoted"),
            ("<a>&unknown;</a>", "unknown entity"),
            ("<a><![CDATA[x</a>", "unterminated CDATA"),
            ("<a><!-- x</a>", "unterminated comment"),
        ],
    )
    def test_rejects(self, source, message_part):
        with pytest.raises(XmlSyntaxError) as excinfo:
            parse_xml(source)
        assert message_part in str(excinfo.value)

    def test_error_carries_position(self):
        with pytest.raises(XmlSyntaxError) as excinfo:
            parse_xml("<a>\n  <b></c>\n</a>")
        assert excinfo.value.line == 2

    def test_attribute_lt_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse_xml('<a x="<"></a>')


class TestSerializeEscaping:
    def test_text_escapes(self):
        from repro.xmlmodel.serialize import escape_text

        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_quotes_escaped(self):
        from repro.xmlmodel.tree import XmlElement

        element = XmlElement("a", attributes={"t": 'say "hi" & go'})
        assert to_xml(element) == '<a t="say &quot;hi&quot; &amp; go"></a>'

    def test_round_trip_with_special_chars(self):
        source = "<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>"
        assert to_xml(parse_xml(source)) == source
