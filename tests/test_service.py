"""Tests for the service layer: registry, compiled artifacts, batch checking."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.bench.harness import checker_for
from repro.cli import main
from repro.core.pv import PVChecker
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.service.batch import BatchChecker, check_batch
from repro.service.compiled import CompiledSchema, compile_schema, schema_fingerprint
from repro.service.registry import DEFAULT_REGISTRY, SchemaRegistry
from repro.workloads.corrupt import corrupt_rename, corrupt_swap
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""

#: The same DTD with scrambled whitespace and per-line layout — equivalent
#: serialization, so it must land on the same compiled artifact.
FIGURE1_REFORMATTED = (
    "<!ELEMENT   r   (a+)  ><!ELEMENT a (b?,(c|f),d)>\n\n"
    "<!ELEMENT b (d|f)><!ELEMENT c (#PCDATA)>"
    "<!ELEMENT d (#PCDATA|e)*><!ELEMENT e EMPTY><!ELEMENT f (c,e)>"
)


def _differential_corpus(dtd, seed: int = 3, count: int = 4):
    """Valid, degraded, and corrupted documents (the differential mix)."""
    rng = random.Random(seed)
    generator = DocumentGenerator(dtd, seed=seed)
    documents = []
    for document in generator.documents(count, target_nodes=16, max_depth=8):
        documents.append(document)
        degraded, _ = degrade(document, rng, fraction=0.6)
        documents.append(degraded)
        swapped = corrupt_swap(document, rng)
        if swapped is not None:
            documents.append(swapped)
        renamed = corrupt_rename(document, rng, dtd.element_names())
        if renamed is not None:
            documents.append(renamed)
    return documents


class TestFingerprint:
    def test_stable_across_equivalent_serializations(self):
        first = parse_dtd(FIGURE1)
        second = parse_dtd(FIGURE1_REFORMATTED)
        assert schema_fingerprint(first) == schema_fingerprint(second)

    def test_name_is_cosmetic(self):
        first = parse_dtd(FIGURE1, name="alpha")
        second = parse_dtd(FIGURE1, name="beta")
        assert schema_fingerprint(first) == schema_fingerprint(second)

    def test_root_is_semantic(self):
        first = parse_dtd(FIGURE1)
        second = parse_dtd(FIGURE1, root="a")
        assert schema_fingerprint(first) != schema_fingerprint(second)

    def test_content_change_changes_hash(self):
        changed = FIGURE1.replace("(b?, (c | f), d)", "(b?, (c | f), d?)")
        assert schema_fingerprint(parse_dtd(FIGURE1)) != schema_fingerprint(
            parse_dtd(changed)
        )


class TestSchemaRegistry:
    def test_hit_miss_accounting(self):
        registry = SchemaRegistry(maxsize=4)
        dtd = parse_dtd(FIGURE1)
        first = registry.get(dtd)
        second = registry.get(dtd)
        assert first is second
        stats = registry.stats
        assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 0)
        assert stats.hit_rate == 0.5
        assert stats.compile_seconds > 0

    def test_equivalent_serializations_share_artifact(self):
        registry = SchemaRegistry()
        first = registry.get(parse_dtd(FIGURE1))
        second = registry.get(parse_dtd(FIGURE1_REFORMATTED))
        assert first is second
        assert registry.stats.hits == 1

    def test_get_text_parses_and_caches(self):
        registry = SchemaRegistry()
        first = registry.get_text(FIGURE1)
        second = registry.get_text(FIGURE1_REFORMATTED)
        assert first is second

    def test_lru_eviction(self):
        registry = SchemaRegistry(maxsize=2)
        figure1 = parse_dtd(FIGURE1)
        play = catalog.play()
        tei = catalog.tei_lite()
        registry.get(figure1)
        registry.get(play)
        registry.get(tei)  # evicts figure1 (least recently used)
        assert registry.stats.evictions == 1
        assert len(registry) == 2
        assert figure1 not in registry
        assert play in registry
        registry.get(figure1)  # recompiles: a miss, evicting play
        stats = registry.stats
        assert stats.misses == 4
        assert stats.evictions == 2

    def test_hit_refreshes_lru_order(self):
        registry = SchemaRegistry(maxsize=2)
        figure1 = parse_dtd(FIGURE1)
        play = catalog.play()
        registry.get(figure1)
        registry.get(play)
        registry.get(figure1)  # refresh: play is now least recently used
        registry.get(catalog.tei_lite())
        assert figure1 in registry
        assert play not in registry

    def test_lookup_by_fingerprint(self):
        registry = SchemaRegistry()
        dtd = parse_dtd(FIGURE1)
        assert registry.lookup(schema_fingerprint(dtd)) is None
        schema = registry.get(dtd)
        assert registry.lookup(schema.fingerprint) is schema

    def test_clear_keeps_stats(self):
        registry = SchemaRegistry()
        registry.get(parse_dtd(FIGURE1))
        registry.clear()
        assert len(registry) == 0
        assert registry.stats.misses == 1
        registry.reset_stats()
        assert registry.stats.lookups == 0

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            SchemaRegistry(maxsize=0)

    def test_default_registry_backs_pv_checker(self):
        dtd = parse_dtd(FIGURE1)
        before = DEFAULT_REGISTRY.stats.lookups
        first = PVChecker(dtd)
        second = PVChecker(dtd)
        assert first.dag is second.dag
        assert first.compiled is second.compiled
        assert DEFAULT_REGISTRY.stats.lookups >= before + 2

    def test_checker_for_helper(self):
        dtd = parse_dtd(FIGURE1)
        checker = checker_for(dtd, algorithm="figure5")
        assert checker.algorithm == "figure5"
        assert checker.is_potentially_valid(parse_xml("<r></r>"))


class TestCompiledSchema:
    def test_pickle_roundtrip(self):
        schema = compile_schema(parse_dtd(FIGURE1))
        clone = pickle.loads(pickle.dumps(schema))
        assert isinstance(clone, CompiledSchema)
        assert clone.fingerprint == schema.fingerprint
        assert clone.dtd == schema.dtd
        checker = PVChecker.from_compiled(clone, algorithm="earley")
        assert checker.is_potentially_valid(parse_xml("<r><a></a></r>"))

    def test_lazy_earley_is_shared(self):
        schema = compile_schema(parse_dtd(FIGURE1))
        assert schema.earley() is schema.earley()
        first = PVChecker.from_compiled(schema, algorithm="earley")
        second = PVChecker.from_compiled(schema, algorithm="earley")
        assert first.compiled.earley() is second.compiled.earley()

    def test_checker_factory(self):
        schema = compile_schema(parse_dtd(FIGURE1))
        for algorithm in ("machine", "figure5", "earley"):
            checker = schema.checker(algorithm)
            assert checker.check_content("r", ["a"])


class TestBatchChecker:
    @pytest.mark.parametrize("dtd_name", ["paper-figure1", "play", "manuscript"])
    @pytest.mark.parametrize("algorithm", ["machine", "figure5", "earley"])
    def test_matches_sequential_checker(self, dtd_name, algorithm):
        dtd = catalog.load(dtd_name)
        documents = _differential_corpus(dtd)
        sequential = PVChecker(dtd, algorithm=algorithm)
        expected = [sequential.check_document(d) for d in documents]
        result = check_batch(dtd, documents, algorithm=algorithm)
        assert result.total == len(documents)
        assert [item.verdict.potentially_valid for item in result.items] == [
            verdict.potentially_valid for verdict in expected
        ]
        # Failure details survive the batch path too.
        for item, verdict in zip(result.items, expected):
            assert item.verdict.failures == verdict.failures

    def test_worker_count_invariance(self):
        dtd = catalog.play()
        documents = _differential_corpus(dtd, seed=11)
        single = BatchChecker(dtd, workers=1).check_documents(documents)
        pooled = BatchChecker(dtd, workers=2).check_documents(documents)
        assert [(i.index, i.ok, i.error) for i in single.items] == [
            (i.index, i.ok, i.error) for i in pooled.items
        ]
        assert pooled.workers == 2

    def test_malformed_document_is_isolated(self):
        dtd = parse_dtd(FIGURE1)
        result = BatchChecker(dtd).check_texts(
            ["<r></r>", "<r><a></r>", "<r><a><c><e></e></c></a></r>"]
        )
        assert result.total == 3
        assert result.error_count == 1
        assert result.items[1].error is not None
        assert result.items[1].verdict is None
        assert not result.all_ok
        assert result.ok_count == 1  # <r></r> is PV; <r><e>. is not
        assert result.rejected_count == 1

    def test_check_paths(self, tmp_path):
        dtd_path = tmp_path / "figure1.dtd"
        dtd_path.write_text(FIGURE1)
        good = tmp_path / "good.xml"
        good.write_text("<r></r>")
        bad = tmp_path / "bad.xml"
        bad.write_text("<r><a><c><e></e></c></a></r>")
        result = BatchChecker(parse_dtd(FIGURE1)).check_paths([good, bad])
        assert result.items[0].ok
        assert result.items[0].label == str(good)
        assert not result.items[1].ok
        assert "blocked" in str(result.items[1])

    def test_labels_pair_with_texts(self):
        checker = BatchChecker(parse_dtd(FIGURE1))
        with pytest.raises(ValueError):
            checker.check_texts(["<r></r>"], labels=["a", "b"])

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            BatchChecker(parse_dtd(FIGURE1), workers=0)

    def test_summary_mentions_throughput(self):
        result = BatchChecker(parse_dtd(FIGURE1)).check_texts(["<r></r>"])
        summary = result.summary()
        assert "1 potentially valid" in summary
        assert "docs/s" in summary
        assert result.documents_per_second > 0


class TestBatchCli:
    @pytest.fixture
    def corpus(self, tmp_path):
        schema = tmp_path / "figure1.dtd"
        schema.write_text(FIGURE1)
        generator = DocumentGenerator(parse_dtd(FIGURE1), seed=5)
        paths = []
        for index, document in enumerate(generator.documents(3, target_nodes=12)):
            path = tmp_path / f"doc{index}.xml"
            path.write_text(to_xml(document))
            paths.append(str(path))
        return str(schema), paths

    def test_all_potentially_valid(self, corpus, capsys):
        schema, paths = corpus
        assert main(["batch", schema, *paths]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("potentially valid") == len(paths)
        assert "docs/s" in captured.err

    def test_failing_document_sets_exit_one(self, corpus, tmp_path, capsys):
        schema, paths = corpus
        bad = tmp_path / "bad.xml"
        bad.write_text("<r><a><c><e></e></c></a></r>")
        assert main(["batch", schema, *paths, str(bad)]) == 1
        assert "NOT potentially valid" in capsys.readouterr().out

    def test_workers_flag(self, corpus, capsys):
        schema, paths = corpus
        assert main(["batch", schema, *paths, "--workers", "2"]) == 0
        assert "2 worker(s)" in capsys.readouterr().err

    def test_algorithm_flag(self, corpus, capsys):
        schema, paths = corpus
        assert main(["batch", schema, *paths, "--algorithm", "earley"]) == 0
        assert "algorithm=earley" in capsys.readouterr().err

    def test_stats_flag(self, corpus, capsys):
        schema, paths = corpus
        assert main(["batch", schema, *paths, "--stats"]) == 0
        assert "registry:" in capsys.readouterr().err


class TestCliExitCodes:
    """Usage and parse errors must consistently return 2 (never raise)."""

    def test_no_command(self):
        assert main([]) == 2

    def test_unknown_command(self):
        assert main(["frobnicate"]) == 2

    def test_missing_argument(self, tmp_path):
        schema = tmp_path / "s.dtd"
        schema.write_text(FIGURE1)
        assert main(["check", str(schema)]) == 2

    def test_bad_choice(self, tmp_path):
        schema = tmp_path / "s.dtd"
        schema.write_text(FIGURE1)
        doc = tmp_path / "d.xml"
        doc.write_text("<r></r>")
        assert main(["check", str(schema), str(doc), "--algorithm", "nope"]) == 2

    def test_help_returns_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "batch" in capsys.readouterr().out

    def test_batch_rejects_zero_workers(self, tmp_path, capsys):
        schema = tmp_path / "s.dtd"
        schema.write_text(FIGURE1)
        doc = tmp_path / "d.xml"
        doc.write_text("<r></r>")
        assert main(["batch", str(schema), str(doc), "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_directory_as_document(self, tmp_path):
        schema = tmp_path / "s.dtd"
        schema.write_text(FIGURE1)
        assert main(["check", str(schema), str(tmp_path)]) == 2


class TestReviewRegressions:
    """Pinned behaviors from the service-layer review pass."""

    def test_mismatched_compiled_artifact_rejected(self):
        figure1 = parse_dtd(FIGURE1)
        other = compile_schema(catalog.play())
        with pytest.raises(ValueError, match="does not match"):
            PVChecker(figure1, compiled=other)

    def test_equal_content_dtd_accepted_as_compiled(self):
        schema = compile_schema(parse_dtd(FIGURE1))
        reparsed = parse_dtd(FIGURE1_REFORMATTED)
        checker = PVChecker(reparsed, compiled=schema)
        assert checker.is_potentially_valid(parse_xml("<r></r>"))

    def test_unreadable_path_does_not_poison_batch(self, tmp_path):
        good = tmp_path / "good.xml"
        good.write_text("<r></r>")
        result = BatchChecker(parse_dtd(FIGURE1)).check_paths(
            [good, tmp_path / "missing.xml", tmp_path]
        )
        assert result.total == 3
        assert result.items[0].ok
        assert result.items[1].error is not None
        assert result.items[2].error is not None  # a directory
        assert result.error_count == 2

    def test_inline_fallback_reports_one_worker(self):
        result = BatchChecker(parse_dtd(FIGURE1), workers=8).check_texts(
            ["<r></r>"]
        )
        assert result.workers == 1  # single task ran inline, no pool


class TestWorkerStatsAggregation:
    """`--stats --workers N` must reflect the pool, not just the parent."""

    def test_inline_run_has_no_worker_stats(self):
        result = BatchChecker(parse_dtd(FIGURE1)).check_texts(["<r></r>"])
        assert result.worker_stats == ()
        assert result.pool_registry is None

    def test_pooled_run_aggregates_worker_hits(self):
        texts = ["<r></r>"] * 8
        result = BatchChecker(parse_dtd(FIGURE1), workers=2).check_texts(texts)
        assert result.workers == 2
        assert 1 <= len(result.worker_stats) <= 2
        pool = result.pool_registry
        assert pool is not None
        # Every document was answered from the shipped artifact: all hits,
        # and no worker ever compiled anything.
        assert pool.hits == len(texts)
        assert pool.misses == 0
        assert pool.compile_seconds == 0.0
        assert pool.hit_rate == 1.0

    def test_cli_batch_stats_reports_pool(self, tmp_path, capsys):
        schema = tmp_path / "figure1.dtd"
        schema.write_text(FIGURE1)
        paths = []
        for index in range(4):
            path = tmp_path / f"doc{index}.xml"
            path.write_text("<r></r>")
            paths.append(str(path))
        assert main(["batch", str(schema), *paths, "--workers", "2", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "registry:" in err
        assert "pool registry" in err
        assert "4 hit(s)" in err

    def test_cli_inline_stats_has_no_pool_line(self, tmp_path, capsys):
        schema = tmp_path / "figure1.dtd"
        schema.write_text(FIGURE1)
        doc = tmp_path / "doc.xml"
        doc.write_text("<r></r>")
        assert main(["batch", str(schema), str(doc), "--stats"]) == 0
        err = capsys.readouterr().err
        assert "registry:" in err
        assert "pool registry" not in err
