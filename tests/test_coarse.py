"""Unit tests for the coarse admission summary and its linear pass."""

from __future__ import annotations

import pickle

import pytest

from repro.core.coarse import (
    COUNT_CAP,
    CoarseChecker,
    CoarseSummary,
    CoarseVerdict,
    compile_coarse,
    decode_coarse,
    encode_coarse,
)
from repro.core.dag import build_dag
from repro.core.pv import PVChecker
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.xmlmodel.parser import parse_xml


def _summary(dtd_text: str) -> CoarseSummary:
    return compile_coarse(build_dag(parse_dtd(dtd_text)))


def _verdict(dtd_text: str, xml: str) -> CoarseVerdict:
    return CoarseChecker(_summary(dtd_text)).check_document(parse_xml(xml))


# -- summary contents --------------------------------------------------------


def test_allowed_uses_embed_reachability_not_direct_reference():
    """<c> never appears in <r>'s model, but wrapping via <a> embeds it."""
    summary = _summary(
        "<!ELEMENT r (a)><!ELEMENT a (c?)><!ELEMENT c (#PCDATA)>"
    )
    r_bit = summary.element_bit("r")
    c_bit = summary.element_bit("c")
    assert r_bit is not None and c_bit is not None
    assert (summary.allowed[r_bit] >> c_bit) & 1, (
        "embed-reachability must admit a wrappable grandchild token"
    )


def test_counts_bound_fixed_arity_children():
    """(a, a) embeds at most two <a> tokens, however many tags insert."""
    summary = _summary("<!ELEMENT r (a, a)><!ELEMENT a EMPTY>")
    r_bit = summary.element_bit("r")
    a_bit = summary.element_bit("a")
    assert summary.counts[r_bit][a_bit] == 2
    assert summary.totals[r_bit] == 2


def test_starred_children_are_unbounded():
    summary = _summary("<!ELEMENT r (a*)><!ELEMENT a EMPTY>")
    r_bit = summary.element_bit("r")
    a_bit = summary.element_bit("a")
    assert a_bit not in summary.counts[r_bit]
    assert summary.totals[r_bit] is None


def test_count_cap_saturates_to_unbounded():
    """A finite bound past COUNT_CAP is stored as unbounded (sound)."""
    arity = COUNT_CAP + 1
    summary = _summary(
        f"<!ELEMENT r ({', '.join(['a'] * arity)})><!ELEMENT a EMPTY>"
    )
    r_bit = summary.element_bit("r")
    a_bit = summary.element_bit("a")
    assert a_bit not in summary.counts[r_bit]
    assert summary.totals[r_bit] is None


def test_mixed_content_is_a_star_accept_set():
    summary = _summary(
        "<!ELEMENT r (#PCDATA | a)*><!ELEMENT a (#PCDATA)>"
    )
    r_bit = summary.element_bit("r")
    a_bit = summary.element_bit("a")
    assert (summary.accepts[r_bit] >> a_bit) & 1
    assert (summary.accepts[r_bit] >> summary.pcdata_bit) & 1
    assert (summary.gap_direct >> r_bit) & 1


def test_summary_survives_pickle_and_equality():
    summary = compile_coarse(build_dag(catalog.load("paper-figure1")))
    clone = pickle.loads(pickle.dumps(summary))
    assert clone == summary
    assert clone.element_bit(summary.names[0]) == 0, "index must be rebuilt"


def test_encode_decode_roundtrip_and_defects():
    summary = _summary("<!ELEMENT r (a*)><!ELEMENT a EMPTY>")
    assert decode_coarse(encode_coarse(summary)) == summary
    assert decode_coarse(b"not a pickle") is None
    assert decode_coarse(pickle.dumps({"not": "a summary"})) is None


# -- the linear pass ---------------------------------------------------------


def test_root_mismatch_rejects_at_slash():
    verdict = _verdict("<!ELEMENT r (a*)><!ELEMENT a EMPTY>", "<x/>")
    assert verdict.outcome == "reject"
    assert (verdict.path, verdict.element) == ("/", "x")
    assert verdict.definite


def test_undeclared_child_rejects_at_the_parent():
    verdict = _verdict(
        "<!ELEMENT r (a*)><!ELEMENT a EMPTY>", "<r><zz/></r>"
    )
    assert verdict.outcome == "reject"
    assert (verdict.path, verdict.element) == ("/r", "r")


def test_count_overflow_rejects():
    verdict = _verdict(
        "<!ELEMENT r (a, a)><!ELEMENT a EMPTY>", "<r><a/><a/><a/></r>"
    )
    assert verdict.outcome == "reject"
    assert "exceed" in verdict.reason


def test_all_mixed_tree_accepts():
    verdict = _verdict(
        "<!ELEMENT r (#PCDATA | a)*><!ELEMENT a (#PCDATA)>",
        "<r>one <a>two</a> three</r>",
    )
    assert verdict.outcome == "accept"


def test_sequence_content_is_uncertain():
    verdict = _verdict(
        "<!ELEMENT r (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>",
        "<r><a/></r>",
    )
    assert verdict.outcome == "uncertain"
    assert not verdict.definite


def test_unfinishable_empty_content_rejects():
    """An element whose content requires a child that cannot be inserted.

    ``a``'s content demands ``loop``, and ``loop`` demands itself: no
    finite insertion completes an empty ``<a>``.
    """
    verdict = _verdict(
        "<!ELEMENT r (a?)><!ELEMENT a (loop)><!ELEMENT loop (loop)>",
        "<r><a/></r>",
    )
    assert verdict.outcome == "reject"
    assert "empty content" in verdict.reason


def test_definite_verdicts_match_the_kernel_on_hand_cases():
    cases = (
        ("<!ELEMENT r (a, a)><!ELEMENT a EMPTY>", "<r><a/><a/><a/></r>"),
        ("<!ELEMENT r (a*)><!ELEMENT a EMPTY>", "<r><zz/></r>"),
        ("<!ELEMENT r (#PCDATA | a)*><!ELEMENT a (#PCDATA)>", "<r>x<a/></r>"),
        ("<!ELEMENT r (a*)><!ELEMENT a EMPTY>", "<r>gap</r>"),
    )
    for dtd_text, xml in cases:
        dtd = parse_dtd(dtd_text)
        verdict = CoarseChecker(compile_coarse(build_dag(dtd))).check_document(
            parse_xml(xml)
        )
        if not verdict.definite:
            continue
        expected = verdict.outcome == "accept"
        assert PVChecker(dtd, algorithm="kernel").is_potentially_valid(
            parse_xml(xml)
        ) == expected, (dtd_text, xml, verdict)


def test_gap_inside_element_only_content_can_reject():
    """Character data where no insertion chain embeds PCDATA rejects."""
    verdict = _verdict(
        "<!ELEMENT r (a*)><!ELEMENT a EMPTY>", "<r>stray</r>"
    )
    assert verdict.outcome == "reject"
    assert "character data" in verdict.reason.lower()
