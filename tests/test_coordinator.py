"""Tests for the ring control plane: probing, epochs, join prefetch."""

from __future__ import annotations

import time

import pytest

from repro.server.coordinator import RingCoordinator
from repro.server.ring import ShardedClient, member_label
from repro.server.server import ServerThread

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""
DOC_OK = "<r><a><b>A quick brown</b><c> fox</c> dog<e></e></a></r>"


def schema_text(index: int) -> str:
    return (
        f"<!ELEMENT r{index} (a{index}*)>"
        f"<!ELEMENT a{index} (#PCDATA)>"
    )


def doc_text(index: int) -> str:
    return f"<r{index}><a{index}>x</a{index}></r{index}>"


@pytest.fixture
def shard_handles(tmp_path):
    handles = [
        ServerThread(unix_path=str(tmp_path / f"shard-{i}.sock"), port=0).start()
        for i in range(3)
    ]
    yield handles
    for handle in handles:
        handle.stop()


@pytest.fixture
def shard_paths(shard_handles):
    return [handle.unix_path for handle in shard_handles]


class TestPublish:
    def test_publish_pushes_the_view_to_every_shard(
        self, shard_handles, shard_paths
    ):
        coordinator = RingCoordinator(shard_paths, replica_count=2)
        try:
            assert coordinator.publish() == 3
            for handle in shard_handles:
                view = handle.server.ring_view
                assert view is not None
                epoch, members, replica_count = view
                assert epoch == 1
                assert members == sorted(shard_paths)
                assert replica_count == 2
        finally:
            coordinator.stop()

    def test_needs_at_least_one_member(self):
        with pytest.raises(ValueError):
            RingCoordinator([])

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError):
            RingCoordinator([str(tmp_path / "x.sock")], replica_count=0)
        with pytest.raises(ValueError):
            RingCoordinator([str(tmp_path / "x.sock")], down_after=0)


class TestProbing:
    def test_probe_reports_health_per_member(self, shard_paths):
        coordinator = RingCoordinator(shard_paths)
        try:
            replies = coordinator.probe_once()
            assert set(replies) == set(shard_paths)
            assert all(r is not None and r["status"] == "ok"
                       for r in replies.values())
            assert coordinator.status()["down"] == []
        finally:
            coordinator.stop()

    def test_dead_shard_is_marked_down_and_unpublished(
        self, shard_handles, shard_paths
    ):
        coordinator = RingCoordinator(shard_paths, down_after=2)
        try:
            coordinator.publish()
            shard_handles[1].stop()
            coordinator.probe_once()  # failure 1: still published up
            assert shard_paths[1] not in coordinator.status()["down"]
            coordinator.probe_once()  # failure 2: down, epoch bumped
            status = coordinator.status()
            assert shard_paths[1] in status["down"]
            assert status["epoch"] == 2
            survivors = sorted(p for p in shard_paths if p != shard_paths[1])
            for index in (0, 2):
                view = shard_handles[index].server.ring_view
                assert view is not None and view[0] == 2
                assert view[1] == survivors
        finally:
            coordinator.stop()

    def test_recovered_shard_is_restored(self, shard_handles, shard_paths, tmp_path):
        coordinator = RingCoordinator(shard_paths, down_after=1)
        try:
            coordinator.publish()
            shard_handles[1].stop()
            coordinator.probe_once()
            assert shard_paths[1] in coordinator.status()["down"]
            revived = ServerThread(unix_path=shard_paths[1], port=0).start()
            try:
                coordinator.probe_once()
                status = coordinator.status()
                assert status["down"] == []
                assert status["epoch"] == 3  # one bump down, one bump up
            finally:
                revived.stop()
        finally:
            coordinator.stop()

    def test_background_probing_detects_a_death(self, shard_handles, shard_paths):
        coordinator = RingCoordinator(
            shard_paths, probe_interval=0.05, down_after=1
        )
        try:
            coordinator.start()
            shard_handles[2].stop()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if shard_paths[2] in coordinator.status()["down"]:
                    break
                time.sleep(0.02)
            assert shard_paths[2] in coordinator.status()["down"]
        finally:
            coordinator.stop()


class TestMembershipChanges:
    def test_remove_member_publishes_the_shrink(self, shard_handles, shard_paths):
        coordinator = RingCoordinator(shard_paths)
        try:
            coordinator.publish()
            coordinator.remove_member(shard_paths[0])
            status = coordinator.status()
            assert shard_paths[0] not in status["members"]
            assert status["epoch"] == 2
            view = shard_handles[1].server.ring_view
            assert view is not None
            assert view[1] == sorted(shard_paths[1:])
        finally:
            coordinator.stop()

    def test_add_member_prefetches_hot_artifacts_before_publishing(
        self, shard_handles, shard_paths, tmp_path
    ):
        # Warm the 3-shard ring with a schema family, then join a fourth
        # shard: it must receive its hottest owned artifacts *before* the
        # join is published, so its registry never compiles.
        schemas = [schema_text(i) for i in range(8)]
        with ShardedClient(shard_paths) as ring:
            for index, dtd in enumerate(schemas):
                ring.check(dtd, doc_text(index))
        coordinator = RingCoordinator(shard_paths, replica_count=1, prefetch=16)
        joiner = ServerThread(
            unix_path=str(tmp_path / "joiner.sock"), port=0
        ).start()
        try:
            coordinator.publish()
            shipped = coordinator.add_member(joiner.unix_path)
            # The joiner holds artifacts without having compiled any.
            registry = joiner.server.registry.stats
            assert registry.misses == 0
            status = coordinator.status()
            assert status["prefetched_artifacts"] == shipped
            future_owned = [
                fingerprint
                for fingerprint in (
                    ShardedClient(shard_paths).fingerprint(dtd)
                    for dtd in schemas
                )
                if member_label(coordinator.ring().owner(fingerprint))
                == joiner.unix_path
            ]
            if future_owned:  # placement hashes tmp paths: usually true
                assert shipped >= len(future_owned)
                # Traffic routed to the joiner is served warm: 0 compiles.
                with ShardedClient(
                    [*shard_paths, joiner.unix_path]
                ) as ring:
                    for index, dtd in enumerate(schemas):
                        assert ring.check(dtd, doc_text(index))["ok"]
                assert joiner.server.registry.stats.misses == 0
        finally:
            joiner.stop()
            coordinator.stop()

    def test_add_member_with_prefetch_disabled_ships_nothing(
        self, shard_paths, tmp_path
    ):
        coordinator = RingCoordinator(shard_paths, prefetch=0)
        joiner = ServerThread(
            unix_path=str(tmp_path / "joiner.sock"), port=0
        ).start()
        try:
            assert coordinator.add_member(joiner.unix_path) == 0
        finally:
            joiner.stop()
            coordinator.stop()

    def test_stale_coordinator_leapfrogs_a_newer_shard_epoch(
        self, shard_handles, shard_paths
    ):
        # A shard already holds epoch 9 (another coordinator raced ahead).
        # Publishing epoch 1 must not roll it back; the coordinator adopts
        # a higher floor so its next publish supersedes everywhere.
        shard_handles[0].server.set_ring_view(9, shard_paths, 1)
        coordinator = RingCoordinator(shard_paths)
        try:
            coordinator.publish()
            assert coordinator.epoch >= 10
            coordinator.publish()
            view = shard_handles[0].server.ring_view
            assert view is not None and view[0] >= 10
        finally:
            coordinator.stop()


class TestClientConvergence:
    def test_client_follows_a_coordinator_driven_change(
        self, shard_handles, shard_paths
    ):
        coordinator = RingCoordinator(shard_paths, replica_count=2)
        try:
            coordinator.publish()
            with ShardedClient(shard_paths, replica_count=2) as ring:
                ring.check(FIGURE1, DOC_OK)
                assert ring.epoch == 1
                victim = member_label(
                    ring.ring.owner(ring.fingerprint(FIGURE1))
                )
                index = shard_paths.index(victim)
                shard_handles[index].stop()
                coordinator.probe_once()
                coordinator.probe_once()  # down_after=2 by default
                assert coordinator.epoch == 2
                reply = ring.check(FIGURE1, DOC_OK)
                assert reply["potentially_valid"] is True
                # Replica fan-out made the failover warm, and the client
                # converged on the coordinator's epoch.
                assert reply["schema"]["registry"] == "hit"
                assert ring.epoch == 2
                assert victim not in ring.ring_stats["members"]
        finally:
            coordinator.stop()
