"""Tests for reachability (Def 5), usability, and recursion classes (Defs 6-8)."""

from __future__ import annotations


from repro.dtd import catalog
from repro.dtd.analysis import DTDClass, analyze
from repro.dtd.model import PCDATA
from repro.dtd.parser import parse_dtd


class TestProductivityUsability:
    def test_figure1_all_usable(self):
        analysis = analyze(catalog.paper_figure1())
        assert analysis.all_usable
        assert analysis.productive == frozenset("rabcdef")

    def test_unproductive_detected(self):
        analysis = analyze(catalog.with_unproductive())
        assert analysis.productive == frozenset({"root", "ok"})
        assert analysis.unusable == frozenset({"bad", "worse"})

    def test_unreachable_is_unusable(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a)><!ELEMENT a EMPTY><!ELEMENT island EMPTY>"
        )
        analysis = analyze(dtd)
        assert "island" in analysis.productive
        assert "island" not in analysis.usable

    def test_reachable_only_through_unproductive_is_unusable(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a?)><!ELEMENT a (dead, b)>"
            "<!ELEMENT dead (dead)><!ELEMENT b EMPTY>"
        )
        analysis = analyze(dtd)
        # `a`'s only word needs `dead`, which never completes: a is not
        # productive, and `b` (productive in isolation) occurs in no valid
        # document because every occurrence sits beside `dead`.
        assert "a" not in analysis.productive
        assert "b" in analysis.productive
        assert "b" not in analysis.usable
        assert analysis.usable == frozenset({"r"})

    def test_productive_via_choice(self):
        dtd = parse_dtd(
            "<!ELEMENT r (dead | ok)><!ELEMENT dead (dead)><!ELEMENT ok EMPTY>"
        )
        analysis = analyze(dtd)
        assert "r" in analysis.productive
        assert "dead" not in analysis.productive


class TestReachabilityTable:
    def test_figure1_direct_edges(self):
        analysis = analyze(catalog.paper_figure1())
        assert analysis.direct["r"] == frozenset({"a"})
        assert analysis.direct["a"] == frozenset({"b", "c", "f", "d"})
        assert analysis.direct["b"] == frozenset({"d", "f"})
        assert analysis.direct["c"] == frozenset({PCDATA})
        assert analysis.direct["d"] == frozenset({PCDATA, "e"})
        assert analysis.direct["e"] == frozenset()
        assert analysis.direct["f"] == frozenset({"c", "e"})

    def test_figure1_lookup_closure(self):
        analysis = analyze(catalog.paper_figure1())
        # b -> d -> e, b -> f -> c -> PCDATA
        assert analysis.lookup("b", "e")
        assert analysis.lookup("b", PCDATA)
        assert analysis.lookup("r", "e")
        assert not analysis.lookup("e", PCDATA)
        assert not analysis.lookup("c", "e")

    def test_lookup_is_irreflexive_for_non_recursive(self):
        analysis = analyze(catalog.paper_figure1())
        for name in "rabcdef":
            assert not analysis.lookup(name, name), name

    def test_lookup_reflexive_for_recursive(self):
        analysis = analyze(catalog.example5_t1())
        assert analysis.lookup("a", "a")
        assert not analysis.lookup("b", "b")

    def test_embed_equals_syntactic_when_all_usable(self):
        for name in ("paper-figure1", "tei-lite", "play", "manuscript"):
            analysis = analyze(catalog.load(name))
            assert analysis.all_usable
            assert analysis.embed_direct == analysis.direct, name

    def test_embed_stricter_with_unproductive_sibling(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a?)><!ELEMENT a (b, dead)>"
            "<!ELEMENT b EMPTY><!ELEMENT dead (dead)>"
        )
        analysis = analyze(dtd)
        # Syntactically a references b; but a word of (b, dead) mentioning b
        # needs `dead` completable, which it is not.
        assert "b" in analysis.direct["a"]
        assert "b" not in analysis.embed_direct["a"]

    def test_any_content_reaches_everything(self):
        analysis = analyze(catalog.with_any())
        assert analysis.direct["payload"] >= frozenset(
            {"doc", "meta", "payload", "widget", PCDATA}
        )


class TestRecursionClasses:
    def test_figure1_non_recursive(self):
        assert analyze(catalog.paper_figure1()).dtd_class is DTDClass.NON_RECURSIVE

    def test_t1_strong(self):
        analysis = analyze(catalog.example5_t1())
        assert analysis.dtd_class is DTDClass.PV_STRONG_RECURSIVE
        assert analysis.strong_recursive_elements == frozenset({"a"})

    def test_t2_strong(self):
        analysis = analyze(catalog.example6_t2())
        assert analysis.dtd_class is DTDClass.PV_STRONG_RECURSIVE

    def test_paper_trivial_strong_example(self):
        # Section 4.3: <!ELEMENT a ((a | c), b*)> is PV-strong recursive.
        dtd = parse_dtd(
            "<!ELEMENT a ((a | c), b*)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
        )
        analysis = analyze(dtd)
        assert analysis.dtd_class is DTDClass.PV_STRONG_RECURSIVE
        assert "a" in analysis.strong_recursive_elements

    def test_xhtml_weak_recursive(self):
        # The paper: XHTML's <b>/<i> nest arbitrarily -> recursion through
        # mixed content only, i.e. PV-weak.
        analysis = analyze(catalog.xhtml_basic())
        assert analysis.dtd_class is DTDClass.PV_WEAK_RECURSIVE
        assert "b" in analysis.recursive_elements
        assert not analysis.strong_recursive_elements

    def test_strong_through_cycle(self):
        analysis = analyze(catalog.strong_recursive_chain())
        assert analysis.dtd_class is DTDClass.PV_STRONG_RECURSIVE
        assert {"x", "y", "z"} <= set(analysis.strong_recursive_elements)

    def test_weak_recursion_via_star_group_sequence(self):
        # Recursion exists (a -> a) but only through a starred group.
        dtd = parse_dtd("<!ELEMENT a ((a | b))*  ><!ELEMENT b EMPTY>")
        analysis = analyze(dtd)
        assert analysis.recursive_elements == frozenset({"a"})
        assert analysis.dtd_class is DTDClass.PV_WEAK_RECURSIVE

    def test_mutual_strong_recursion_detected_via_chain(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b?)><!ELEMENT b (a?)>"
        )
        analysis = analyze(dtd)
        assert analysis.dtd_class is DTDClass.PV_STRONG_RECURSIVE
        assert analysis.strong_recursive_elements == frozenset({"a", "b"})


class TestCaching:
    def test_analyze_is_memoised(self):
        dtd = catalog.paper_figure1()
        assert analyze(dtd) is analyze(dtd)
