"""Differential fuzzing: coarse admission never contradicts a full backend.

The coarse pass (:mod:`repro.core.coarse`) is only allowed three answers,
and only one of them is cheap to get wrong silently: a *definite* outcome
(``accept`` / ``reject``) that a full backend would reverse.  This suite
pushes seeded mixed corpora (valid documents plus single-mutation
corruptions from :mod:`corpusgen`) through the coarse checker **and**
every exact backend, asserting:

* a definite coarse outcome always matches the kernel, machine, and
  Earley verdicts (``uncertain`` promises nothing and is skipped),
* a coarse ``reject`` names a ``(path, element)`` at which the full
  checker also reports a blocked node — the short-circuit loses no
  diagnostic precision,
* the corpus is not vacuous: the coarse stage actually rejects a healthy
  share of the corrupted documents (a regression to all-``uncertain``
  would otherwise pass every agreement test while gutting the pipeline).

Size and seed are environment knobs so CI can scale the run up without a
code change: ``REPRO_FUZZ_SEED`` reseeds the whole corpus (the nightly
job rotates it), ``REPRO_FUZZ_DOCS`` sets documents per DTD (the
admission-smoke job raises it so the run crosses 500 documents).
"""

from __future__ import annotations

import os
import random
from functools import lru_cache

import pytest

import corpusgen
from repro.core.coarse import CoarseChecker
from repro.core.pv import PVChecker
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.service.registry import DEFAULT_REGISTRY

#: The fuzzing schema pool: the paper's figures plus the document-centric
#: catalog entries, covering seq/choice/star content, mixed content,
#: recursion, and ANY.
DTD_NAMES = (
    "paper-figure1",
    "example5-T1",
    "example6-T2",
    "play",
    "dictionary",
    "manuscript",
    "with-any",
)

#: Exact tiers the definite coarse outcomes are compared against.
BACKENDS = ("kernel", "machine", "earley")

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "2006"))
DOCS_PER_DTD = int(os.environ.get("REPRO_FUZZ_DOCS", "30"))


@lru_cache(maxsize=None)
def _fixture(name: str):
    """(dtd, coarse checker, backend checkers, corpus) — built once."""
    dtd = catalog.load(name)
    schema = DEFAULT_REGISTRY.get(dtd)
    coarse = CoarseChecker(schema.coarse)
    checkers = {
        backend: PVChecker(dtd, algorithm=backend) for backend in BACKENDS
    }
    corpus = corpusgen.mixed_corpus(
        dtd, DOCS_PER_DTD, seed=SEED, corrupt_fraction=0.6
    )
    return dtd, coarse, checkers, corpus


@pytest.mark.parametrize("name", DTD_NAMES)
def test_definite_outcomes_agree_with_every_backend(name):
    """accept/reject from the coarse pass == every exact backend's verdict."""
    _dtd, coarse, checkers, corpus = _fixture(name)
    for index, (document, provenance) in enumerate(corpus):
        admission = coarse.check_document(document)
        if not admission.definite:
            continue
        expected = admission.outcome == "accept"
        for backend, checker in checkers.items():
            verdict = checker.is_potentially_valid(document)
            assert verdict == expected, (
                name, index, provenance, admission.outcome, backend,
                admission.reason,
            )


@pytest.mark.parametrize("name", DTD_NAMES)
def test_reject_names_a_node_the_full_checker_also_blocks(name):
    """A coarse reject's (path, element) appears among the full failures."""
    _dtd, coarse, checkers, corpus = _fixture(name)
    kernel = checkers["kernel"]
    for index, (document, provenance) in enumerate(corpus):
        admission = coarse.check_document(document)
        if admission.outcome != "reject":
            continue
        verdict = kernel.check_document(document)
        assert not verdict.potentially_valid, (name, index, provenance)
        blocked = {(failure.path, failure.element) for failure in verdict.failures}
        assert (admission.path, admission.element) in blocked, (
            name, index, provenance, admission.path, admission.element, blocked,
        )


def test_corpus_is_not_vacuous():
    """The pipeline must short-circuit a healthy share of corrupt documents.

    A coarse stage that answered ``uncertain`` for everything would pass
    every agreement test above while rejecting nothing; this pins the
    aggregate reject rate over the corrupted slice of the whole pool.
    """
    corrupt = rejected = 0
    for name in DTD_NAMES:
        _dtd, coarse, _checkers, corpus = _fixture(name)
        for document, provenance in corpus:
            if provenance == "valid":
                continue
            corrupt += 1
            if coarse.check_document(document).outcome == "reject":
                rejected += 1
    assert corrupt > 0
    assert rejected >= 0.3 * corrupt, (
        f"coarse stage rejected only {rejected}/{corrupt} corrupted documents"
    )


def test_definite_accepts_agree_on_an_all_mixed_schema():
    """Mixed-content trees are where the coarse pass answers accept.

    The catalog corpora are element-structured (mostly ``uncertain``), so
    the accept leg gets deliberate coverage: an all-mixed DTD accepts any
    tree over its declared tags, and every backend must concur document
    by document — including on single mutations, where a renamed-to-alien
    tag must flip the coarse answer to a (still agreeing) reject.
    """
    dtd = parse_dtd(
        "<!ELEMENT r (#PCDATA | a | b)*>"
        "<!ELEMENT a (#PCDATA | b)*>"
        "<!ELEMENT b (#PCDATA)>"
    )
    coarse = CoarseChecker(DEFAULT_REGISTRY.get(dtd).coarse)
    checkers = {backend: PVChecker(dtd, algorithm=backend) for backend in BACKENDS}
    documents = corpusgen.valid_documents(dtd, 10, seed=SEED)
    rng = random.Random(SEED)
    accepts = 0
    pool = []
    for document in documents:
        pool.append(document)
        mutated = corpusgen.mutate(document, dtd, rng)
        if mutated is not None:
            pool.append(mutated[0])
    for index, document in enumerate(pool):
        admission = coarse.check_document(document)
        assert admission.definite, (index, admission.reason)
        accepts += admission.outcome == "accept"
        expected = admission.outcome == "accept"
        for backend, checker in checkers.items():
            assert checker.is_potentially_valid(document) == expected, (
                index, backend, admission.outcome,
            )
    assert accepts > 0, "all-mixed corpus produced no definite accepts"


def test_fuzz_knobs_change_the_corpus():
    """REPRO_FUZZ_SEED / REPRO_FUZZ_DOCS really steer generation."""
    dtd = catalog.load("paper-figure1")
    a = corpusgen.mixed_corpus(dtd, 8, seed=1)
    b = corpusgen.mixed_corpus(dtd, 8, seed=2)
    a_again = corpusgen.mixed_corpus(dtd, 8, seed=1)
    from repro.xmlmodel.serialize import to_xml

    def render(corpus):
        return [(to_xml(doc), prov) for doc, prov in corpus]
    assert render(a) == render(a_again), "same seed must reproduce the corpus"
    assert render(a) != render(b), "different seeds must differ"
    assert len(corpusgen.mixed_corpus(dtd, 3, seed=1)) == 3
