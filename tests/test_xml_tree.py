"""Tests for the DOM: structure, edits, queries."""

from __future__ import annotations

import pytest

from repro.errors import XmlStructureError
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlText


def build_sample() -> XmlElement:
    root = XmlElement("a")
    root.append(XmlText("one "))
    b = root.append(XmlElement("b"))
    assert isinstance(b, XmlElement)
    b.append(XmlText("two"))
    root.append(XmlText(" three"))
    return root


class TestMutation:
    def test_append_sets_parent(self):
        root = XmlElement("a")
        child = root.append(XmlElement("b"))
        assert child.parent is root
        assert root.children == [child]

    def test_insert_positions(self):
        root = XmlElement("a")
        first = root.append(XmlElement("x"))
        second = root.insert(0, XmlElement("y"))
        assert [c.name for c in root.element_children()] == ["y", "x"]
        assert second.parent is root and first.parent is root

    def test_insert_out_of_range(self):
        with pytest.raises(XmlStructureError):
            XmlElement("a").insert(5, XmlText("x"))

    def test_reparenting_detaches(self):
        a, b = XmlElement("a"), XmlElement("b")
        child = a.append(XmlElement("c"))
        b.append(child)
        assert a.children == []
        assert child.parent is b

    def test_remove_unrelated_raises(self):
        with pytest.raises(XmlStructureError):
            XmlElement("a").remove(XmlText("stray"))

    def test_wrap_children(self):
        root = build_sample()
        wrapper = root.wrap_children(1, 3, "w")
        assert [type(c).__name__ for c in root.children] == ["XmlText", "XmlElement"]
        assert wrapper.parent is root
        assert len(wrapper.children) == 2
        assert to_xml(root) == "<a>one <w><b>two</b> three</w></a>"

    def test_wrap_empty_range(self):
        root = build_sample()
        root.wrap_children(0, 0, "w")
        assert to_xml(root) == "<a><w></w>one <b>two</b> three</a>"

    def test_wrap_bad_range(self):
        with pytest.raises(XmlStructureError):
            build_sample().wrap_children(2, 1, "w")
        with pytest.raises(XmlStructureError):
            build_sample().wrap_children(0, 9, "w")

    def test_unwrap_inverts_wrap(self):
        root = build_sample()
        before = to_xml(root)
        wrapper = root.wrap_children(0, 2, "w")
        root.unwrap_child(wrapper)
        assert to_xml(root) == before

    def test_unwrap_empty_element_removes_it(self):
        root = XmlElement("a")
        e = root.append(XmlElement("e"))
        root.unwrap_child(e)
        assert root.children == []


class TestQueries:
    def test_content_document_order(self):
        root = build_sample()
        assert root.content() == "one two three"

    def test_depth(self):
        assert build_sample().depth() == 2
        assert XmlElement("a").depth() == 1

    def test_node_count(self):
        assert build_sample().node_count() == 5

    def test_iter_elements_document_order(self):
        doc = parse_xml("<a><b><c></c></b><d></d></a>")
        names = [e.name for e in doc.iter_elements()]
        assert names == ["a", "b", "c", "d"]

    def test_element_children_skips_text(self):
        root = build_sample()
        assert [c.name for c in root.element_children()] == ["b"]

    def test_copy_is_deep_and_detached(self):
        root = build_sample()
        clone = root.copy()
        assert to_xml(clone) == to_xml(root)
        clone.children[1].children[0].text = "changed"  # type: ignore[union-attr]
        assert root.content() == "one two three"

    def test_element_names(self):
        doc = parse_xml("<a><b></b><b></b><c></c></a>")
        assert doc.element_names() == frozenset({"a", "b", "c"})


class TestDocument:
    def test_root_must_be_detached(self):
        root = XmlElement("a")
        root.append(XmlElement("b"))
        with pytest.raises(XmlStructureError):
            XmlDocument(root.children[0])  # type: ignore[arg-type]

    def test_document_queries_delegate(self):
        doc = XmlDocument(build_sample())
        assert doc.content() == "one two three"
        assert doc.depth() == 2
        assert doc.node_count() == 5
