"""Tests for the PVChecker driver (Problem PV over documents)."""

from __future__ import annotations

import pytest

from repro.config import CheckerConfig
from repro.core.pv import PVChecker
from repro.dtd import catalog
from repro.errors import DepthBoundExceeded, UnusableElementError
from repro.xmlmodel.parser import parse_xml


class TestVerdicts:
    def test_example1_verdicts(self, fig1, doc_w, doc_s, algorithm):
        checker = PVChecker(fig1, algorithm=algorithm)
        assert not checker.check_document(doc_w)
        assert checker.check_document(doc_s)

    def test_failure_details(self, fig1, doc_w):
        verdict = PVChecker(fig1).check_document(doc_w)
        assert not verdict.potentially_valid
        assert len(verdict.failures) == 1
        failure = verdict.failures[0]
        assert failure.element == "a"
        assert failure.path == "/r/a[0]"
        assert failure.symbols == ("b", "e", "c", "#PCDATA")

    def test_root_mismatch(self, fig1):
        verdict = PVChecker(fig1).check_document(parse_xml("<a></a>"))
        assert not verdict
        assert "DTD root" in verdict.failures[0].reason

    def test_undeclared_element(self, fig1):
        verdict = PVChecker(fig1).check_document(parse_xml("<r><ghost></ghost></r>"))
        assert not verdict
        assert any("not declared" in f.reason for f in verdict.failures)

    def test_every_failing_node_reported(self, fig1):
        doc = parse_xml(
            "<r><a><b></b><e></e><c>x</c></a><a><b></b><e></e><c>y</c></a></r>"
        )
        # Each <a> has the Example 1 "w" content b,e,c — unfixable.
        verdict = PVChecker(fig1).check_document(doc)
        assert len(verdict.failures) == 2

    def test_empty_root_is_pv(self, fig1):
        assert PVChecker(fig1).check_document(parse_xml("<r></r>"))

    def test_element_fixture_accepts_xml_element(self, fig1, doc_s):
        assert PVChecker(fig1).check_document(doc_s.root)


class TestConfig:
    def test_derived_depth_for_non_recursive(self, fig1):
        checker = PVChecker(fig1)
        assert checker.depth == fig1.element_count + 1

    def test_default_depth_for_strong_recursive(self, t2):
        from repro.config import DEFAULT_DEPTH_BOUND

        assert PVChecker(t2).depth == DEFAULT_DEPTH_BOUND

    def test_explicit_depth_respected(self, t2):
        checker = PVChecker(t2, config=CheckerConfig(depth_bound=3))
        assert checker.depth == 3

    def test_strict_depth_raises_on_strong_recursive_no(self, t2):
        checker = PVChecker(
            t2, config=CheckerConfig(depth_bound=0, strict_depth=True)
        )
        with pytest.raises(DepthBoundExceeded):
            checker.check_document(
                parse_xml("<a><b></b><b></b><b></b></a>")
            )

    def test_require_usable(self):
        dtd = catalog.with_unproductive()
        with pytest.raises(UnusableElementError):
            PVChecker(dtd, config=CheckerConfig(require_usable=True))
        # Without the flag the checker handles it exactly.
        checker = PVChecker(dtd)
        assert checker.check_document(parse_xml("<root><ok>x</ok></root>"))
        assert not checker.check_document(parse_xml("<root><bad></bad></root>"))

    def test_depth_limited_flag(self, t2):
        checker = PVChecker(t2, config=CheckerConfig(depth_bound=0))
        verdict = checker.check_document(
            parse_xml("<a><b></b><b></b><b></b></a>")
        )
        assert not verdict
        assert verdict.depth_limited

    def test_depth_limited_false_for_non_recursive(self, fig1, doc_w):
        verdict = PVChecker(fig1).check_document(doc_w)
        assert not verdict
        assert not verdict.depth_limited


class TestContentAPI:
    def test_check_content_direct(self, fig1, algorithm):
        checker = PVChecker(fig1, algorithm=algorithm)
        assert checker.check_content("a", ["b", "c"])
        assert not checker.check_content("a", ["b", "e", "c"])

    def test_check_node(self, fig1, doc_s):
        checker = PVChecker(fig1)
        a_node = doc_s.root.element_children()[0]
        assert checker.check_node(a_node)


class TestWholeDocumentConsistency:
    """Valid documents are PV; PV survives degradation (spot checks)."""

    @pytest.mark.parametrize("name", ["paper-figure1", "play", "manuscript"])
    def test_valid_documents_are_pv(self, name, algorithm):
        from repro.workloads.docgen import DocumentGenerator

        dtd = catalog.load(name)
        checker = PVChecker(dtd, algorithm=algorithm)
        for document in DocumentGenerator(dtd, seed=3).documents(3, 25):
            assert checker.check_document(document), name
