"""Tests for document-shape measurement and multi-backend dispatch."""

from __future__ import annotations

import pytest

from repro.core.pv import PVChecker
from repro.dtd.parser import parse_dtd
from repro.service.dispatch import (
    BackendDispatcher,
    DispatchPolicy,
    measure_shape,
)
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.parser import parse_xml

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""

#: Example 5's T1: PV-strong recursive (a may require unboundedly deep wraps).
STRONG = "<!ELEMENT a (a | b*)><!ELEMENT b EMPTY>"


class TestMeasureShape:
    def test_counts_elements_and_depth(self):
        shape = measure_shape(parse_xml("<r><a><b></b></a><a></a></r>"))
        assert shape.elements == 4
        assert shape.depth == 3
        assert shape.sigma_tokens == 0
        assert shape.gap_density == 0.0

    def test_gap_density_counts_character_runs(self):
        # r: [a] — a: [#PCDATA] — so 1 sigma out of 2 content tokens.
        shape = measure_shape(parse_xml("<r><a>some text</a></r>"))
        assert shape.content_tokens == 2
        assert shape.sigma_tokens == 1
        assert shape.gap_density == 0.5

    def test_empty_document(self):
        shape = measure_shape(parse_xml("<r></r>"))
        assert shape.elements == 1
        assert shape.depth == 1
        assert shape.gap_density == 0.0


class TestPolicyRouting:
    def test_small_shallow_goes_greedy(self):
        dispatcher = BackendDispatcher(parse_dtd(FIGURE1))
        decision = dispatcher.choose(parse_xml("<r><a><e></e></a></r>"))
        assert decision.algorithm == "figure5"
        assert "small and shallow" in decision.reason

    def test_gap_heavy_goes_exact(self):
        dispatcher = BackendDispatcher(parse_dtd(FIGURE1))
        decision = dispatcher.choose(parse_xml("<r><a>plenty of text</a></r>"))
        assert decision.algorithm == "kernel"
        assert "gap-heavy" in decision.reason

    def test_large_document_goes_exact(self):
        dispatcher = BackendDispatcher(
            parse_dtd(FIGURE1), policy=DispatchPolicy(small_elements=2)
        )
        decision = dispatcher.choose(
            parse_xml("<r><a><e></e></a><a><e></e></a></r>")
        )
        assert decision.algorithm == "kernel"
        assert decision.reason == "default exact backend (kernel)"

    def test_deep_document_goes_exact(self):
        dispatcher = BackendDispatcher(
            parse_dtd(FIGURE1), policy=DispatchPolicy(shallow_depth=1)
        )
        decision = dispatcher.choose(parse_xml("<r><a><e></e></a></r>"))
        assert decision.algorithm == "kernel"

    def test_pv_strong_always_exact(self):
        dispatcher = BackendDispatcher(parse_dtd(STRONG))
        decision = dispatcher.choose(parse_xml("<a></a>"))
        assert decision.algorithm == "kernel"
        assert "PV-strong" in decision.reason

    def test_exact_backend_is_swappable_to_the_machine(self):
        """The object-graph reference stays selectable as the exact tier."""
        dispatcher = BackendDispatcher(
            parse_dtd(FIGURE1), policy=DispatchPolicy(exact_backend="machine")
        )
        decision = dispatcher.choose(parse_xml("<r><a>plenty of text</a></r>"))
        assert decision.algorithm == "machine"

    def test_audit_slice_goes_earley(self):
        dispatcher = BackendDispatcher(
            parse_dtd(FIGURE1), policy=DispatchPolicy(audit_every=3)
        )
        document = parse_xml("<r><a><e></e></a></r>")
        algorithms = [dispatcher.choose(document).algorithm for _ in range(6)]
        assert algorithms == [
            "figure5", "figure5", "earley", "figure5", "figure5", "earley",
        ]
        assert dispatcher.counts == {"figure5": 4, "earley": 2}

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DispatchPolicy(gap_heavy=1.5)
        with pytest.raises(ValueError):
            DispatchPolicy(audit_every=-1)
        with pytest.raises(ValueError):
            DispatchPolicy(small_elements=-1)
        with pytest.raises(ValueError):
            DispatchPolicy(exact_backend="earley")


class TestDispatchedChecking:
    def test_verdicts_match_direct_checker(self):
        dtd = parse_dtd(FIGURE1)
        dispatcher = BackendDispatcher(dtd)
        direct = PVChecker(dtd)
        generator = DocumentGenerator(dtd, seed=13)
        for document in generator.documents(6, target_nodes=20):
            outcome = dispatcher.check_document(document)
            assert bool(outcome) == direct.is_potentially_valid(document)
            assert outcome.decision.algorithm in (
                "kernel", "machine", "figure5", "earley",
            )

    def test_decision_log_is_bounded(self):
        dispatcher = BackendDispatcher(parse_dtd(FIGURE1), log_size=2)
        document = parse_xml("<r></r>")
        for _ in range(5):
            dispatcher.choose(document)
        decisions = dispatcher.decisions
        assert len(decisions) == 2
        assert decisions[-1].sequence == 5  # the log keeps the newest

    def test_checkers_share_compiled_artifact(self):
        dtd = parse_dtd(FIGURE1)
        dispatcher = BackendDispatcher(dtd)
        dispatcher.check_document(parse_xml("<r></r>"))
        dispatcher.check_document(parse_xml("<r><a>text</a></r>"))
        checkers = list(dispatcher._checkers.values())
        assert len(checkers) >= 2
        assert all(c.compiled is dispatcher.schema for c in checkers)

    def test_log_size_validated(self):
        with pytest.raises(ValueError):
            BackendDispatcher(parse_dtd(FIGURE1), log_size=-1)


class TestAuditSliceShadow:
    """Regression: the audit slice must record the displaced shape choice.

    The audit-log entry used to keep only ``earley`` when the 1-in-N
    slice fired, losing which backend the shape rules actually picked —
    exactly the question the log exists to answer.
    """

    def test_audit_entries_record_the_shadowed_backend(self):
        dispatcher = BackendDispatcher(
            parse_dtd(FIGURE1), policy=DispatchPolicy(audit_every=3)
        )
        document = parse_xml("<r><a><e></e></a></r>")
        for _ in range(6):
            dispatcher.choose(document)
        audited = [d for d in dispatcher.decisions if d.algorithm == "earley"]
        assert len(audited) == 2
        for decision in audited:
            assert decision.shadowed == "figure5"
            assert "displaced shape choice figure5" in decision.reason

    def test_non_audit_entries_have_no_shadow(self):
        dispatcher = BackendDispatcher(
            parse_dtd(FIGURE1), policy=DispatchPolicy(audit_every=3)
        )
        document = parse_xml("<r><a><e></e></a></r>")
        for _ in range(6):
            dispatcher.choose(document)
        for decision in dispatcher.decisions:
            if decision.algorithm != "earley":
                assert decision.shadowed is None

    def test_shadow_reflects_the_policy_not_a_constant(self):
        dispatcher = BackendDispatcher(
            parse_dtd(STRONG), policy=DispatchPolicy(audit_every=1)
        )
        decision = dispatcher.choose(parse_xml("<a><b></b></a>"))
        assert decision.algorithm == "earley"
        assert decision.shadowed == "kernel"  # PV-strong forces the exact tier


class TestAdmissionStage:
    def test_admission_off_never_runs_coarse(self):
        dispatcher = BackendDispatcher(parse_dtd(FIGURE1))
        outcome = dispatcher.check_document(parse_xml("<r><zz/></r>"))
        assert outcome.decision.admission is None
        assert outcome.decision.algorithm != "coarse"

    def test_admission_on_short_circuits_definite_rejects(self):
        dispatcher = BackendDispatcher(
            parse_dtd(FIGURE1), policy=DispatchPolicy(admission="on")
        )
        outcome = dispatcher.check_document(parse_xml("<r><zz/></r>"))
        assert outcome.decision.algorithm == "coarse"
        assert outcome.decision.admission == "reject"
        assert not outcome.verdict.potentially_valid
        failure = outcome.verdict.failures[0]
        assert (failure.path, failure.element) == ("/r", "r")

    def test_admission_on_escalates_uncertain(self):
        dispatcher = BackendDispatcher(
            parse_dtd(FIGURE1), policy=DispatchPolicy(admission="on")
        )
        outcome = dispatcher.check_document(parse_xml("<r><a>text</a></r>"))
        assert outcome.decision.algorithm != "coarse"
        assert outcome.decision.admission == "uncertain"
        assert outcome.verdict.potentially_valid

    def test_admission_audit_always_runs_a_backend(self):
        dispatcher = BackendDispatcher(
            parse_dtd(FIGURE1), policy=DispatchPolicy(admission="audit")
        )
        outcome = dispatcher.check_document(parse_xml("<r><zz/></r>"))
        assert outcome.decision.algorithm != "coarse"
        assert outcome.decision.admission == "reject"
        assert not outcome.decision.admission_mismatch
        assert not outcome.verdict.potentially_valid

    def test_admission_matches_direct_checker_on_generated_corpus(self):
        dtd = parse_dtd(FIGURE1)
        dispatcher = BackendDispatcher(dtd, policy=DispatchPolicy(admission="on"))
        direct = PVChecker(dtd)
        generator = DocumentGenerator(dtd, seed=29)
        for document in generator.documents(8, target_nodes=20):
            outcome = dispatcher.check_document(document)
            assert bool(outcome) == direct.is_potentially_valid(document)

    def test_admission_timings_are_reported(self):
        dispatcher = BackendDispatcher(
            parse_dtd(FIGURE1), policy=DispatchPolicy(admission="audit")
        )
        timings: dict[str, float] = {}
        dispatcher.check_document(parse_xml("<r><a>text</a></r>"), timings=timings)
        assert set(timings) == {"admission", "decide", "verdict"}
        assert all(value >= 0.0 for value in timings.values())

    def test_admission_policy_validation(self):
        with pytest.raises(ValueError):
            DispatchPolicy(admission="sometimes")
