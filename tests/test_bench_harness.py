"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import pytest

from repro.bench.harness import Table, fit_power_law, time_callable
from repro.bench.scenarios import degraded_document, valid_document
from repro.dtd import catalog
from repro.validity.validator import DTDValidator


class TestTimeCallable:
    def test_returns_positive_time(self):
        elapsed = time_callable(lambda: sum(range(1000)), repeat=2, warmup=1)
        assert elapsed > 0

    def test_takes_best_of_repeats(self):
        calls = []

        def fn():
            calls.append(1)

        time_callable(fn, repeat=3, warmup=2)
        assert len(calls) == 5


class TestTable:
    def test_render_alignment(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 20)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2] and "value" in lines[2]
        assert len(lines) == 6

    def test_wrong_arity_rejected(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = Table("Demo", ["x"])
        table.add_row(0.000001234)
        table.add_row(123456.0)
        rendered = table.render()
        assert "1.234e-06" in rendered
        assert "1.235e+05" in rendered or "1.234e+05" in rendered


class TestFitPowerLaw:
    def test_linear_series(self):
        xs = [10, 20, 40, 80]
        ys = [3.0 * x for x in xs]
        assert fit_power_law(xs, ys) == pytest.approx(1.0, abs=1e-9)

    def test_quadratic_series(self):
        xs = [10, 20, 40, 80]
        ys = [0.5 * x * x for x in xs]
        assert fit_power_law(xs, ys) == pytest.approx(2.0, abs=1e-9)

    def test_constant_series(self):
        xs = [10, 20, 40, 80]
        ys = [7.0] * 4
        assert fit_power_law(xs, ys) == pytest.approx(0.0, abs=1e-9)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])


class TestScenarios:
    def test_valid_document_is_valid(self):
        dtd = catalog.play()
        document = valid_document(dtd, 30, seed=3)
        assert DTDValidator(dtd).is_valid(document)

    def test_degraded_document_is_pv_not_valid(self):
        from repro.core.pv import PVChecker

        dtd = catalog.manuscript()
        document = degraded_document(dtd, 40, seed=3, fraction=0.7)
        assert PVChecker(dtd).is_potentially_valid(document)
