"""Tests for the guarded editing session (the xTagger use case)."""

from __future__ import annotations

import random

import pytest

from repro.dtd import catalog
from repro.editor import (
    DeleteMarkup,
    DeleteText,
    EditingSession,
    InsertMarkup,
    InsertText,
    UpdateText,
)
from repro.editor.document import apply_operation, invert, resolve, resolve_element
from repro.errors import EditRejected, XmlStructureError
from repro.validity.validator import DTDValidator
from repro.workloads.docgen import DocumentGenerator
from repro.workloads.editscript import markup_script, path_of
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml


class TestDocumentOperations:
    def test_resolve_paths(self):
        doc = parse_xml("<a>t<b><c></c></b></a>")
        assert resolve(doc, ()) is doc.root
        b = resolve_element(doc, (1,))
        assert b.name == "b"
        assert resolve_element(doc, (1, 0)).name == "c"

    def test_resolve_errors(self):
        doc = parse_xml("<a>t</a>")
        with pytest.raises(XmlStructureError):
            resolve(doc, (5,))
        with pytest.raises(XmlStructureError):
            resolve(doc, (0, 0))  # descends through text
        with pytest.raises(XmlStructureError):
            resolve_element(doc, (0,))  # text node

    def test_apply_and_invert_round_trip(self):
        # <a>content</a> -> [w(content)] -> [hello, w] -> [replaced, w]
        #                -> [w] -> [content]
        operations = [
            InsertMarkup(parent=(), start=0, end=1, name="w"),
            InsertText(parent=(), index=0, text="hello "),
            UpdateText(target=(0,), text="replaced"),
            DeleteText(target=(0,)),
            DeleteMarkup(target=(0,)),
        ]
        doc = parse_xml("<a>content</a>")
        snapshots = []
        inverses = []
        for operation in operations:
            snapshots.append(to_xml(doc))
            inverses.append(invert(doc, operation))
            apply_operation(doc, operation)
        for operation, snapshot in zip(reversed(inverses), reversed(snapshots)):
            apply_operation(doc, operation)
            assert to_xml(doc) == snapshot

    def test_delete_root_markup_rejected(self):
        doc = parse_xml("<a></a>")
        with pytest.raises(XmlStructureError):
            apply_operation(doc, DeleteMarkup(target=()))


class TestSessionGuard:
    def test_initial_document_must_be_pv(self, fig1):
        bad = parse_xml("<r><a><b></b><e></e><c>x</c></a></r>")
        with pytest.raises(EditRejected):
            EditingSession(fig1, bad)

    def test_accepts_figure3_insertions(self, fig1, doc_s):
        session = EditingSession(fig1, doc_s)
        # Wrap "A quick brown" (inside b) with d, then wrap " dog"<e/> with d.
        assert session.apply(InsertMarkup(parent=(0, 0), start=0, end=1, name="d"))
        assert session.apply(InsertMarkup(parent=(0,), start=2, end=4, name="d"))
        assert DTDValidator(fig1).is_valid(session.document)

    def test_rejects_pv_breaking_insert(self, fig1, doc_s):
        session = EditingSession(fig1, doc_s)
        with pytest.raises(EditRejected):
            session.apply(InsertMarkup(parent=(0,), start=0, end=4, name="e"))
        # Document untouched.
        assert session.is_potentially_valid()

    def test_non_strict_mode_counts_rejections(self, fig1, doc_s):
        session = EditingSession(fig1, doc_s, strict=False)
        assert not session.apply(
            InsertMarkup(parent=(0,), start=0, end=4, name="e")
        )
        assert session.stats.rejected == 1
        assert session.stats.applied == 0

    def test_markup_delete_always_allowed(self, fig1, doc_s):
        session = EditingSession(fig1, doc_s)
        assert session.apply(DeleteMarkup(target=(0, 0)))  # unwrap <b>
        assert session.is_potentially_valid()

    def test_text_operations(self, fig1, doc_s):
        session = EditingSession(fig1, doc_s)
        # Update inside <c> (mixed content).
        assert session.apply(UpdateText(target=(0, 1, 0), text="new words"))
        assert session.apply(DeleteText(target=(0, 1, 0)))
        assert session.is_potentially_valid()

    def test_text_insert_guard(self, fig1):
        doc = parse_xml("<r><a><c>x</c><d><e></e></d></a></r>")
        session = EditingSession(fig1, doc)
        # Inside <e> (EMPTY content): hopeless, rejected.
        with pytest.raises(EditRejected):
            session.apply(InsertText(parent=(0, 1, 0), index=0, text="words"))
        # Inside d (mixed): fine.
        assert session.apply(InsertText(parent=(0, 1), index=0, text="words"))
        # Under r it is *also* fine — (a+) repeats, so the text can be
        # wrapped into a fresh <a><c>...</c>... later.
        assert session.apply(InsertText(parent=(), index=0, text="words"))

    def test_undo(self, fig1, doc_s):
        session = EditingSession(fig1, doc_s)
        before = to_xml(session.document)
        session.apply(InsertMarkup(parent=(0, 0), start=0, end=1, name="d"))
        assert session.undo_depth == 1
        assert session.undo()
        assert to_xml(session.document) == before
        assert not session.undo()

    def test_stats_by_kind(self, fig1, doc_s):
        session = EditingSession(fig1, doc_s, strict=False)
        session.apply(UpdateText(target=(0, 1, 0), text="x"))
        session.apply(InsertMarkup(parent=(0,), start=0, end=4, name="e"))
        assert session.stats.by_kind["UpdateText"] == 1
        assert session.stats.by_kind["InsertMarkup"] == 1


class TestScriptReplay:
    @pytest.mark.parametrize(
        "name", ["paper-figure1", "play", "dictionary", "manuscript", "tei-lite"]
    )
    def test_every_script_operation_accepted(self, name):
        """Theorem 2 end-to-end: deconstructing a valid document yields a
        script whose every wrap the guarded session accepts, and the replay
        rebuilds the document exactly."""
        dtd = catalog.load(name)
        rng = random.Random(17)
        document = DocumentGenerator(dtd, seed=23).document(22)
        target = to_xml(document)
        skeleton, script = markup_script(document, rng)
        session = EditingSession(dtd, skeleton)
        for operation in script:
            assert session.apply(operation), (name, operation)
        assert to_xml(session.document) == target
        assert DTDValidator(dtd).is_valid(session.document)

    def test_path_of(self):
        doc = parse_xml("<a><b></b><c><d></d></c></a>")
        c = doc.root.element_children()[1]
        d = c.element_children()[0]
        assert path_of(doc.root) == ()
        assert path_of(c) == (1,)
        assert path_of(d) == (1, 0)
