"""Tests for the Earley recognizer on classic grammars."""

from __future__ import annotations

import pytest

from repro.grammar.cfg import Grammar
from repro.grammar.earley import EarleyRecognizer
from repro.errors import GrammarError


def recognizer(start, productions) -> EarleyRecognizer:
    return EarleyRecognizer(Grammar(start, productions))


class TestClassicLanguages:
    def test_balanced_parens(self):
        earley = recognizer("S", [("S", ()), ("S", ("(", "S", ")", "S"))])
        assert earley.recognizes(list("()"))
        assert earley.recognizes(list("(())()"))
        assert earley.recognizes([])
        assert not earley.recognizes(list("(()"))
        assert not earley.recognizes(list(")("))

    def test_a_n_b_n(self):
        earley = recognizer("S", [("S", ()), ("S", ("a", "S", "b"))])
        assert earley.recognizes(list("aaabbb"))
        assert not earley.recognizes(list("aaabb"))
        assert not earley.recognizes(list("ab" * 2))  # abab

    def test_ambiguous_expression_grammar(self):
        earley = recognizer(
            "E",
            [("E", ("E", "+", "E")), ("E", ("E", "*", "E")), ("E", ("n",))],
        )
        assert earley.recognizes(list("n+n*n"))
        assert earley.recognizes(list("n"))
        assert not earley.recognizes(list("n+"))
        assert not earley.recognizes(list("+n"))

    def test_left_recursion(self):
        earley = recognizer("L", [("L", ("L", "x")), ("L", ("x",))])
        assert earley.recognizes(["x"] * 50)
        assert not earley.recognizes([])

    def test_right_recursion(self):
        earley = recognizer("R", [("R", ("x", "R")), ("R", ())])
        assert earley.recognizes(["x"] * 50)
        assert earley.recognizes([])


class TestEpsilonHeavy:
    """The Aycock-Horspool nullable handling — the G' grammars live here."""

    def test_nullable_chain(self):
        earley = recognizer(
            "S",
            [
                ("S", ("A", "B", "C")),
                ("A", ()),
                ("B", ("A",)),
                ("C", ("c",)),
                ("C", ("B",)),
            ],
        )
        assert earley.recognizes(["c"])
        assert earley.recognizes([])

    def test_nullable_between_terminals(self):
        earley = recognizer(
            "S",
            [("S", ("a", "N", "b")), ("N", ()), ("N", ("n",))],
        )
        assert earley.recognizes(list("ab"))
        assert earley.recognizes(list("anb"))
        assert not earley.recognizes(list("annb"))

    def test_deeply_nullable_completion(self):
        # A regression shape for the classic epsilon bug: completion of a
        # nullable nonterminal predicted at the same position.
        earley = recognizer(
            "S",
            [
                ("S", ("A", "A", "x")),
                ("A", ("E",)),
                ("E", ()),
            ],
        )
        assert earley.recognizes(["x"])

    def test_cyclic_unit_productions(self):
        earley = recognizer(
            "S",
            [("S", ("A",)), ("A", ("S",)), ("A", ("a",))],
        )
        assert earley.recognizes(["a"])
        assert not earley.recognizes(["a", "a"])


class TestAPI:
    def test_start_override(self):
        earley = recognizer(
            "S", [("S", ("a",)), ("T", ("b",))]
        )
        assert earley.recognizes(["b"], start="T")
        assert not earley.recognizes(["a"], start="T")

    def test_unknown_start_raises(self):
        earley = recognizer("S", [("S", ("a",))])
        with pytest.raises(GrammarError):
            earley.recognizes(["a"], start="nope")

    def test_unknown_token_rejects(self):
        earley = recognizer("S", [("S", ("a",))])
        assert not earley.recognizes(["z"])

    def test_reusable_across_calls(self):
        earley = recognizer("S", [("S", ("a", "S")), ("S", ())])
        assert earley.recognizes(["a"] * 10)
        assert not earley.recognizes(["a", "b"])
        assert earley.recognizes([])
