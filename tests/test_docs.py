"""Docs/implementation lockstep: the wire spec cannot drift silently.

``docs/PROTOCOL.md`` claims to cover every op the server accepts; these
tests diff that document against the protocol's op tuple and the
server's handler table, and the error-code table against the codes the
implementation can actually emit.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.server import protocol
from repro.server.server import HANDLED_OPS

DOCS = Path(__file__).resolve().parents[1] / "docs"


def protocol_md() -> str:
    return (DOCS / "PROTOCOL.md").read_text()


def heading_ops(text: str) -> set[str]:
    """Op names documented as ``### `op``` headings."""
    return set(re.findall(r"^### `([a-z-]+)`", text, flags=re.MULTILINE))


class TestProtocolDocCoverage:
    def test_docs_tree_exists(self):
        for name in ("ARCHITECTURE.md", "PROTOCOL.md", "OPERATIONS.md"):
            assert (DOCS / name).is_file(), f"docs/{name} is missing"

    def test_handler_table_matches_the_protocol_ops(self):
        assert set(HANDLED_OPS) == set(protocol.OPS)

    def test_every_accepted_op_has_a_spec_section(self):
        documented = heading_ops(protocol_md())
        missing = set(protocol.OPS) - documented
        assert not missing, f"docs/PROTOCOL.md lacks op section(s): {missing}"

    def test_no_phantom_ops_are_documented(self):
        phantom = heading_ops(protocol_md()) - set(protocol.OPS)
        assert not phantom, (
            f"docs/PROTOCOL.md documents op(s) the server does not "
            f"accept: {phantom}"
        )

    def test_every_error_code_is_documented(self):
        text = protocol_md()
        missing = [
            code for code in protocol.ERROR_CODES if f"`{code}`" not in text
        ]
        assert not missing, (
            f"docs/PROTOCOL.md lacks error code(s): {missing}"
        )

    def test_error_codes_cover_what_the_implementation_raises(self):
        """Every ProtocolError(code) literal in the server package is in
        ERROR_CODES (and therefore, by the test above, documented)."""
        src = Path(__file__).resolve().parents[1] / "src" / "repro" / "server"
        raised: set[str] = set()
        for path in src.glob("*.py"):
            raised.update(
                re.findall(r"ProtocolError\(\s*[\"']([a-z-]+)[\"']",
                           path.read_text())
            )
        undeclared = raised - set(protocol.ERROR_CODES)
        assert not undeclared, (
            f"codes raised but not declared/documented: {undeclared}"
        )


class TestOperationsDocAccuracy:
    def test_cli_commands_named_in_docs_exist(self):
        """Every ``python -m repro <command>`` in the docs parses."""
        from repro.cli import _build_parser

        parser = _build_parser()
        subactions = next(
            action
            for action in parser._actions
            if hasattr(action, "_name_parser_map")
        )
        known = set(subactions._name_parser_map)
        text = "".join(
            (DOCS / name).read_text()
            for name in ("OPERATIONS.md", "ARCHITECTURE.md")
        ) + (DOCS.parent / "README.md").read_text()
        used = set(re.findall(r"python -m repro ([a-z-]+)", text))
        unknown = used - known - {"--version"}
        assert not unknown, f"docs reference unknown CLI command(s): {unknown}"

    def test_serve_flags_named_in_docs_exist(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        text = (DOCS / "OPERATIONS.md").read_text()
        serve_flags = {
            flag
            for line in text.splitlines()
            if "repro serve" in line
            for flag in re.findall(r"(--[a-z-]+)", line)
        }
        serve_parser = next(
            action
            for action in parser._actions
            if hasattr(action, "_name_parser_map")
        )._name_parser_map["serve"]
        known = {
            option
            for action in serve_parser._actions
            for option in action.option_strings
        }
        unknown = serve_flags - known
        assert not unknown, f"docs use unknown serve flag(s): {unknown}"
