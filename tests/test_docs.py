"""Docs/implementation lockstep: the wire spec cannot drift silently.

``docs/PROTOCOL.md`` claims to cover every op the server accepts; these
tests diff that document against the protocol's op tuple and the
server's handler table, and the error-code table against the codes the
implementation can actually emit.  ``docs/BACKENDS.md`` claims to
mirror the in-code backend registry; its ladder table is diffed against
``repro.service.dispatch.BACKENDS`` the same way.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.server import protocol
from repro.server.server import HANDLED_OPS

DOCS = Path(__file__).resolve().parents[1] / "docs"


def protocol_md() -> str:
    return (DOCS / "PROTOCOL.md").read_text()


def heading_ops(text: str) -> set[str]:
    """Op names documented as ``### `op``` headings."""
    return set(re.findall(r"^### `([a-z-]+)`", text, flags=re.MULTILINE))


class TestProtocolDocCoverage:
    def test_docs_tree_exists(self):
        for name in ("ARCHITECTURE.md", "PROTOCOL.md", "OPERATIONS.md"):
            assert (DOCS / name).is_file(), f"docs/{name} is missing"

    def test_handler_table_matches_the_protocol_ops(self):
        assert set(HANDLED_OPS) == set(protocol.OPS)

    def test_every_accepted_op_has_a_spec_section(self):
        documented = heading_ops(protocol_md())
        missing = set(protocol.OPS) - documented
        assert not missing, f"docs/PROTOCOL.md lacks op section(s): {missing}"

    def test_no_phantom_ops_are_documented(self):
        phantom = heading_ops(protocol_md()) - set(protocol.OPS)
        assert not phantom, (
            f"docs/PROTOCOL.md documents op(s) the server does not "
            f"accept: {phantom}"
        )

    def test_every_error_code_is_documented(self):
        text = protocol_md()
        missing = [
            code for code in protocol.ERROR_CODES if f"`{code}`" not in text
        ]
        assert not missing, (
            f"docs/PROTOCOL.md lacks error code(s): {missing}"
        )

    def test_error_codes_cover_what_the_implementation_raises(self):
        """Every ProtocolError(code) literal in the server package is in
        ERROR_CODES (and therefore, by the test above, documented)."""
        src = Path(__file__).resolve().parents[1] / "src" / "repro" / "server"
        raised: set[str] = set()
        for path in src.glob("*.py"):
            raised.update(
                re.findall(r"ProtocolError\(\s*[\"']([a-z-]+)[\"']",
                           path.read_text())
            )
        undeclared = raised - set(protocol.ERROR_CODES)
        assert not undeclared, (
            f"codes raised but not declared/documented: {undeclared}"
        )


class TestBackendsDocCoverage:
    """docs/BACKENDS.md renders dispatch.BACKENDS; they may not drift."""

    TABLE_ROW = re.compile(
        r"^\| `([a-z0-9]+)` \| `([a-z-]+)` \| (yes|no) \| (.+?) \|$",
        flags=re.MULTILINE,
    )

    def backends_md(self) -> str:
        return (DOCS / "BACKENDS.md").read_text()

    def documented_rows(self) -> list[tuple[str, str, bool, str]]:
        return [
            (name, exactness, auto == "yes", summary)
            for name, exactness, auto, summary in self.TABLE_ROW.findall(
                self.backends_md()
            )
        ]

    def test_doc_exists(self):
        assert (DOCS / "BACKENDS.md").is_file()

    def test_ladder_table_matches_the_registry(self):
        from repro.service.dispatch import BACKENDS

        documented = [
            (name, exactness, auto)
            for name, exactness, auto, _summary in self.documented_rows()
        ]
        registered = [
            (info.name, info.exactness, info.auto) for info in BACKENDS
        ]
        # Same rows, same order (the registry is "fastest exact first",
        # and the doc claims to render it).
        assert documented == registered, (
            "docs/BACKENDS.md ladder table drifted from "
            f"dispatch.BACKENDS:\ndoc:      {documented}\nregistry: {registered}"
        )

    def test_summaries_match_the_registry(self):
        from repro.service.dispatch import BACKENDS

        documented = {
            name: summary for name, _e, _a, summary in self.documented_rows()
        }
        for info in BACKENDS:
            assert documented.get(info.name) == info.summary, (
                f"docs/BACKENDS.md summary for {info.name!r} drifted from "
                f"the registry: {documented.get(info.name)!r} != "
                f"{info.summary!r}"
            )

    def test_default_exact_backend_is_documented(self):
        from repro.service.dispatch import DEFAULT_POLICY

        assert f'`"{DEFAULT_POLICY.exact_backend}"` by default' in (
            self.backends_md()
        )

    def test_store_format_versions_are_documented(self):
        from repro.service.store import (
            STORE_FORMAT_VERSION,
            SUPPORTED_FORMAT_VERSIONS,
        )

        text = self.backends_md()
        assert f"**version {STORE_FORMAT_VERSION}** (current)" in text
        for version in SUPPORTED_FORMAT_VERSIONS:
            assert f"version {version}" in text


class TestObservabilityDocCoverage:
    """docs/OBSERVABILITY.md's catalog table renders
    ``repro.obs.metrics.CATALOG``; they may not drift."""

    TABLE_ROW = re.compile(
        r"^\| `(repro_[a-z_]+)` \| (counter|gauge|histogram) "
        r"\| (.+?) \| (.+?) \|$",
        flags=re.MULTILINE,
    )

    def observability_md(self) -> str:
        return (DOCS / "OBSERVABILITY.md").read_text()

    def test_doc_exists(self):
        assert (DOCS / "OBSERVABILITY.md").is_file()

    def test_catalog_table_matches_the_registry(self):
        from repro.obs.metrics import CATALOG

        documented = [
            (name, kind)
            for name, kind, _labels, _help in self.TABLE_ROW.findall(
                self.observability_md()
            )
        ]
        declared = [(spec.name, spec.kind) for spec in CATALOG]
        # Same rows, same order (the doc claims to render the catalog).
        assert documented == declared, (
            "docs/OBSERVABILITY.md catalog table drifted from "
            f"obs.metrics.CATALOG:\ndoc:     {documented}\n"
            f"catalog: {declared}"
        )

    def test_catalog_labels_are_documented(self):
        from repro.obs.metrics import CATALOG

        documented = {
            name: labels
            for name, _kind, labels, _help in self.TABLE_ROW.findall(
                self.observability_md()
            )
        }
        for spec in CATALOG:
            cell = documented[spec.name]
            for label in spec.labels:
                assert f"`{label}`" in cell, (
                    f"docs/OBSERVABILITY.md row for {spec.name!r} does not "
                    f"name its {label!r} label"
                )

    def test_event_vocabulary_is_documented(self):
        """Every event name the stack emits appears in the doc."""
        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        emitted: set[str] = set()
        for path in src.rglob("*.py"):
            emitted.update(
                re.findall(r"\.emit\(\s*[\"']([a-z-]+)[\"']", path.read_text())
            )
        text = self.observability_md()
        missing = {event for event in emitted if f"`{event}`" not in text}
        assert not missing, (
            f"docs/OBSERVABILITY.md lacks emitted event(s): {missing}"
        )


class TestOperationsDocAccuracy:
    def test_cli_commands_named_in_docs_exist(self):
        """Every ``python -m repro <command>`` in the docs parses."""
        from repro.cli import _build_parser

        parser = _build_parser()
        subactions = next(
            action
            for action in parser._actions
            if hasattr(action, "_name_parser_map")
        )
        known = set(subactions._name_parser_map)
        text = "".join(
            (DOCS / name).read_text()
            for name in ("OPERATIONS.md", "ARCHITECTURE.md")
        ) + (DOCS.parent / "README.md").read_text()
        used = set(re.findall(r"python -m repro ([a-z-]+)", text))
        unknown = used - known - {"--version"}
        assert not unknown, f"docs reference unknown CLI command(s): {unknown}"

    def test_serve_flags_named_in_docs_exist(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        text = (DOCS / "OPERATIONS.md").read_text()
        serve_flags = {
            flag
            for line in text.splitlines()
            if "repro serve" in line
            for flag in re.findall(r"(--[a-z-]+)", line)
        }
        serve_parser = next(
            action
            for action in parser._actions
            if hasattr(action, "_name_parser_map")
        )._name_parser_map["serve"]
        known = {
            option
            for action in serve_parser._actions
            for option in action.option_strings
        }
        unknown = serve_flags - known
        assert not unknown, f"docs use unknown serve flag(s): {unknown}"
