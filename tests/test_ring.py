"""Tests for the sharded validation ring, batch streaming, and hand-off."""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.server import protocol
from repro.server.client import ServerError, ValidationClient, correlation_key
from repro.server.protocol import ProtocolError
from repro.server.ring import (
    ShardedClient,
    ShardRing,
    ShardUnavailableError,
    member_label,
    parse_member,
)
from repro.server.server import ServerThread
from repro.service.store import (
    STORE_FORMAT_VERSION,
    STORE_MAGIC,
    ArtifactStore,
    encode_artifact,
)

FIGURE1 = """
<!ELEMENT r (a+)>
<!ELEMENT a (b?, (c | f), d)>
<!ELEMENT b (d | f)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA | e)*>
<!ELEMENT e EMPTY>
<!ELEMENT f (c, e)>
"""
DOC_OK = "<r><a><b>A quick brown</b><c> fox</c> dog<e></e></a></r>"
DOC_BAD = "<r><a><b>A quick brown</b><e></e><c> fox</c> dog</a></r>"


def schema_text(index: int) -> str:
    """A family of structurally distinct DTDs (distinct fingerprints)."""
    return (
        f"<!ELEMENT r{index} (a{index}*)>"
        f"<!ELEMENT a{index} (#PCDATA)>"
    )


def doc_text(index: int) -> str:
    return f"<r{index}><a{index}>x</a{index}></r{index}>"


# -- the ring ----------------------------------------------------------------


class TestShardRing:
    def test_owner_is_deterministic(self):
        ring = ShardRing(["a.sock", "b.sock", "c.sock"])
        again = ShardRing(["c.sock", "a.sock", "b.sock"])  # order-insensitive
        keys = [f"key-{i}" for i in range(200)]
        assert [ring.owner(k) for k in keys] == [again.owner(k) for k in keys]

    def test_distribution_is_roughly_even(self):
        members = ["a.sock", "b.sock", "c.sock"]
        ring = ShardRing(members)
        counts = Counter(ring.owner(f"key-{i}") for i in range(3000))
        for member in members:
            assert counts[member] >= 300  # >= 10% each on a 3-member ring

    def test_removal_only_remaps_the_removed_members_keys(self):
        members = ["a.sock", "b.sock", "c.sock", "d.sock"]
        ring = ShardRing(members)
        keys = [f"key-{i}" for i in range(1000)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("b.sock")
        for key in keys:
            if before[key] != "b.sock":
                assert ring.owner(key) == before[key]
            else:
                assert ring.owner(key) != "b.sock"

    def test_adding_back_restores_placement(self):
        ring = ShardRing(["a.sock", "b.sock", "c.sock"])
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("b.sock")
        ring.add("b.sock")
        assert {k: ring.owner(k) for k in keys} == before

    def test_preference_lists_every_member_once(self):
        members = ["a.sock", "b.sock", "c.sock"]
        ring = ShardRing(members)
        preference = ring.preference("some-fingerprint")
        assert sorted(preference) == sorted(members)
        assert preference[0] == ring.owner("some-fingerprint")

    def test_preference_is_stable_for_surviving_members(self):
        # Failover order, like ownership, must not shuffle when an
        # unrelated member leaves.
        ring = ShardRing(["a.sock", "b.sock", "c.sock", "d.sock"])
        key = "fingerprint-123"
        before = ring.preference(key)
        removed = before[-1]  # not the owner, not the first fallback
        ring.remove(removed)
        after = ring.preference(key)
        assert after == [m for m in before if m != removed]

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError):
            ShardRing().owner("anything")

    def test_membership_helpers(self):
        ring = ShardRing(["a.sock"])
        assert "a.sock" in ring and len(ring) == 1
        ring.add("a.sock")  # idempotent
        assert len(ring) == 1
        ring.remove("missing.sock")  # no-op
        assert ring.members == ["a.sock"]

    def test_tcp_members_hash_by_label(self):
        ring = ShardRing([("127.0.0.1", 1), ("127.0.0.1", 2)])
        assert ("127.0.0.1", 1) in ring
        assert member_label(("127.0.0.1", 1)) == "127.0.0.1:1"

    def test_parse_member(self):
        assert parse_member("127.0.0.1:8750") == ("127.0.0.1", 8750)
        assert parse_member("/run/pv.sock") == "/run/pv.sock"
        assert parse_member("relative.sock") == "relative.sock"
        assert parse_member("./odd:name/pv.sock") == "./odd:name/pv.sock"

    def test_parse_member_rejects_a_port_typo(self):
        # "875O" (letter O) must be a loud usage error, not a silent
        # fallback to a phantom Unix socket path.
        with pytest.raises(ValueError):
            parse_member("127.0.0.1:875O")


# -- live shard fixtures -----------------------------------------------------


@pytest.fixture
def shard_handles(tmp_path):
    handles = [
        ServerThread(unix_path=str(tmp_path / f"shard-{i}.sock"), port=0).start()
        for i in range(3)
    ]
    yield handles
    for handle in handles:
        handle.stop()


@pytest.fixture
def shard_paths(shard_handles):
    return [handle.unix_path for handle in shard_handles]


# -- artifact hand-off ops ---------------------------------------------------


class TestArtifactOps:
    def test_get_put_round_trip_between_servers(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as first:
            reply = first.check(FIGURE1, DOC_OK)
            fingerprint = reply["schema"]["fingerprint"]
            assert reply["schema"]["registry"] == "miss"
            blob = first.get_artifact(fingerprint)
        assert blob.startswith(
            f"{STORE_MAGIC} {STORE_FORMAT_VERSION}\n".encode()
        )
        with ValidationClient.connect_unix(shard_paths[1]) as second:
            put = second.put_artifact(fingerprint, blob)
            assert put["stored"] == "registry"
            # The seeded shard answers warm: no compile happened there.
            reply = second.check(FIGURE1, DOC_OK)
            assert reply["schema"]["registry"] == "hit"
            assert second.stats()["registry"]["misses"] == 0

    def test_get_unknown_fingerprint_is_artifact_miss(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            with pytest.raises(ServerError) as excinfo:
                client.get_artifact("f" * 64)
            assert excinfo.value.code == "artifact-miss"

    def test_put_garbage_blob_is_bad_artifact(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            with pytest.raises(ServerError) as excinfo:
                garbage = f"{STORE_MAGIC} {STORE_FORMAT_VERSION}\n".encode() + b"garbage"
                client.put_artifact("f" * 64, garbage)
            assert excinfo.value.code == "bad-artifact"

    def test_put_wrong_fingerprint_is_bad_artifact(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            fingerprint = client.check(FIGURE1, DOC_OK)["schema"]["fingerprint"]
            blob = client.get_artifact(fingerprint)
            with pytest.raises(ServerError) as excinfo:
                client.put_artifact("0" * 64, blob)
            assert excinfo.value.code == "bad-artifact"

    def test_put_bad_base64_is_bad_artifact(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            reply = client.send_raw(
                protocol.encode(
                    {"op": "put-artifact", "fingerprint": "f" * 64,
                     "artifact": "!!! not base64 !!!"}
                )
            )
            assert reply["error"]["code"] == "bad-artifact"

    def test_missing_fingerprint_is_bad_request(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            reply = client.send_raw(protocol.encode({"op": "get-artifact"}))
            assert reply["error"]["code"] == "bad-request"

    def test_get_artifact_loads_from_store(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        with ServerThread(
            unix_path=str(tmp_path / "a.sock"), store=ArtifactStore(store_dir)
        ) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                fingerprint = client.check(FIGURE1, DOC_OK)["schema"]["fingerprint"]
        # A fresh server over the same store serves the artifact from disk.
        with ServerThread(
            unix_path=str(tmp_path / "b.sock"), store=ArtifactStore(store_dir)
        ) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                blob = client.get_artifact(fingerprint)
        assert blob.startswith(
            f"{STORE_MAGIC} {STORE_FORMAT_VERSION}\n".encode()
        )

    def test_wire_blob_equals_store_file_format(self, shard_paths, tmp_path):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            fingerprint = client.check(FIGURE1, DOC_OK)["schema"]["fingerprint"]
            blob = client.get_artifact(fingerprint)
        store = ArtifactStore(tmp_path / "fmt")
        schema = store._decode(blob, fingerprint)
        assert schema is not None and schema.fingerprint == fingerprint
        header = f"{STORE_MAGIC} {STORE_FORMAT_VERSION}\n".encode()
        assert encode_artifact(schema)[: len(header)] == header


# -- the streaming batch op --------------------------------------------------


class TestCheckBatch:
    def test_batch_round_trip(self, shard_paths):
        docs = [DOC_OK, DOC_BAD, DOC_OK]
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            replies, trailer = client.check_batch(FIGURE1, docs, id="batch-1")
        assert [r["potentially_valid"] for r in replies] == [True, False, True]
        assert all(r["op"] == "check-batch-item" for r in replies)
        assert [r["id"] for r in replies] == [0, 1, 2]
        assert trailer["items"] == 3
        assert trailer["errors"] == 0
        assert trailer["id"] == "batch-1"
        assert trailer["schema"]["registry"] == "miss"

    def test_batch_resolves_schema_once(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            _replies, trailer = client.check_batch(FIGURE1, [DOC_OK] * 5)
            stats = client.stats()
        assert trailer["schema"]["registry"] == "miss"
        assert stats["registry"]["misses"] == 1
        assert stats["server"]["batches"] == 1
        assert stats["server"]["batch_items"] == 5

    def test_bad_document_is_a_per_item_error(self, shard_paths):
        docs = [DOC_OK, "<r><a></r>", DOC_OK]
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            replies, trailer = client.check_batch(FIGURE1, docs)
            # The connection survives the defective item.
            assert client.check(FIGURE1, DOC_OK)["potentially_valid"]
        assert replies[0]["potentially_valid"] is True
        assert replies[1]["ok"] is False
        assert replies[1]["error"]["code"] == "bad-document"
        assert replies[1]["id"] == 1
        assert replies[2]["potentially_valid"] is True
        assert trailer["errors"] == 1

    def test_empty_batch(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            replies, trailer = client.check_batch(FIGURE1, [])
        assert replies == []
        assert trailer["items"] == 0

    def test_bad_header_is_a_structured_error_then_disconnect(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            with pytest.raises(ServerError) as excinfo:
                client.check_batch("<!ELEMENT broken", [DOC_OK])
            assert excinfo.value.code == "bad-dtd"
            # A bad batch header loses the item framing: the server
            # closes, which is the documented disconnect.
            with pytest.raises((ConnectionError, OSError)):
                client.check(FIGURE1, DOC_OK)

    def test_uncounted_batch_ends_on_blank_line(self, shard_paths):
        # Drive the raw wire form: a header without "count", items, then
        # the blank-line terminator.
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            client.send({"op": "check-batch", "dtd": FIGURE1}, flush=False)
            client.send({"doc": DOC_OK, "id": "x"}, flush=False)
            client.send({"doc": DOC_BAD, "id": "y"}, flush=False)
            client._file.write(b"\n")
            client._file.flush()
            first = client.recv()
            second = client.recv()
            trailer = client.recv()
        assert first["id"] == "x" and first["potentially_valid"] is True
        assert second["id"] == "y" and second["potentially_valid"] is False
        assert trailer["op"] == "check-batch" and trailer["items"] == 2

    def test_malformed_item_line_is_bad_item(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            client.send(
                {"op": "check-batch", "dtd": FIGURE1, "count": 2}, flush=False
            )
            client._file.write(b"this is { not json\n")
            client.send({"doc": DOC_OK})
            first = client.recv()
            second = client.recv()
            trailer = client.recv()
            # The connection survives for single-shot requests.
            assert client.check(FIGURE1, DOC_OK)["potentially_valid"]
        assert first["ok"] is False
        assert first["error"]["code"] == "bad-item"
        assert first["op"] == "check-batch-item"
        assert second["potentially_valid"] is True
        assert trailer["errors"] == 1

    def test_item_ids_are_echoed_including_falsy(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            client.send(
                {"op": "check-batch", "dtd": FIGURE1, "count": 3}, flush=False
            )
            for item_id in (0, False, ""):
                client.send({"doc": DOC_OK, "id": item_id}, flush=False)
            client._file.flush()
            ids = [client.recv()["id"] for _ in range(3)]
            client.recv()  # trailer
        assert ids == [0, False, ""]
        assert [correlation_key(i) for i in ids] == ["0", "false", '""']

    def test_doc_containing_the_op_literal_is_not_a_batch(self, shard_paths):
        # Batch detection keys on the decoded op, so a plain check whose
        # document text mentions "check-batch" stays a plain check.
        doc = "<r><a><c>check-batch</c><d>x</d></a></r>"
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            reply = client.check(FIGURE1, doc)
        assert reply["op"] == "check"
        assert reply["potentially_valid"] is True

    def test_json_escaped_op_string_is_still_a_batch(self, shard_paths):
        # A conforming encoder may escape any character: "check-batch"
        # decodes to the batch op and must enter the streaming read loop
        # (a byte-level sniff would misread the item lines as requests).
        header = (
            '{"op": "check\\u002dbatch", "dtd": ' + json.dumps(FIGURE1)
            + ', "count": 1}\n'
        ).encode("utf-8")
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            client._file.write(header)
            client.send({"doc": DOC_OK})
            item = client.recv()
            trailer = client.recv()
        assert item["op"] == "check-batch-item"
        assert item["potentially_valid"] is True
        assert trailer["op"] == "check-batch" and trailer["items"] == 1

    def test_batch_count_must_be_a_non_negative_int(self, shard_paths):
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            reply = client.send_raw(
                protocol.encode(
                    {"op": "check-batch", "dtd": FIGURE1, "count": -3}
                )
            )
        assert reply["error"]["code"] == "bad-request"


# -- pipelining --------------------------------------------------------------


class TestPipelining:
    def test_pipeline_correlates_falsy_ids(self, shard_paths):
        payloads = [
            {"op": "check", "dtd": FIGURE1, "doc": DOC_OK, "id": 0},
            {"op": "check", "dtd": FIGURE1, "doc": DOC_BAD, "id": False},
            {"op": "check", "dtd": FIGURE1, "doc": DOC_OK, "id": ""},
            {"op": "classify", "dtd": FIGURE1, "id": [1, "x"]},
        ]
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            replies = client.pipeline(payloads)
        assert [r["id"] for r in replies] == [0, False, "", [1, "x"]]
        assert replies[0]["potentially_valid"] is True
        assert replies[1]["potentially_valid"] is False
        assert replies[2]["potentially_valid"] is True
        assert replies[3]["op"] == "classify"

    def test_pipeline_error_replies_are_correlatable(self, shard_paths):
        payloads = [
            {"op": "check", "dtd": FIGURE1, "doc": DOC_OK, "id": "good"},
            {"op": "check", "dtd": "<!ELEMENT broken", "doc": DOC_OK,
             "id": "bad"},
            {"op": "check", "dtd": FIGURE1, "doc": DOC_OK, "id": "tail"},
        ]
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            replies = client.pipeline(payloads)
        assert replies[0]["ok"] is True and replies[0]["id"] == "good"
        assert replies[1]["ok"] is False and replies[1]["id"] == "bad"
        assert replies[1]["error"]["code"] == "bad-dtd"
        assert replies[2]["ok"] is True and replies[2]["id"] == "tail"

    def test_pipeline_without_ids_trusts_arrival_order(self, shard_paths):
        payloads = [
            {"op": "check", "dtd": FIGURE1, "doc": DOC_OK},
            {"op": "check", "dtd": FIGURE1, "doc": DOC_BAD},
        ]
        with ValidationClient.connect_unix(shard_paths[0]) as client:
            replies = client.pipeline(payloads)
        assert [r["potentially_valid"] for r in replies] == [True, False]

    def test_correlation_key_distinguishes_numeric_look_alikes(self):
        keys = {correlation_key(v) for v in (0, False, "", None, "0", 0.5)}
        assert len(keys) == 6


# -- the sharded client ------------------------------------------------------


class TestShardedClient:
    def test_routing_is_deterministic(self, shard_paths):
        with ShardedClient(shard_paths) as ring:
            first = ring.check(FIGURE1, DOC_OK)
            assert first["schema"]["registry"] == "miss"
            again = ring.check(FIGURE1, DOC_OK)
            assert again["schema"]["registry"] == "hit"
            by_member = ring.ring_stats["requests_by_member"]
        # Both requests landed on the one owning shard.
        assert sorted(by_member.values()) == [2]

    def test_each_schema_compiles_once_ring_wide(self, shard_paths):
        schemas = [schema_text(i) for i in range(8)]
        with ShardedClient(shard_paths) as ring:
            for _round in range(2):
                for index, dtd in enumerate(schemas):
                    reply = ring.check(dtd, doc_text(index))
                    assert reply["potentially_valid"] is True
            stats = ring.stats()
        total_misses = sum(
            shard["registry"]["misses"]
            for shard in stats["shards"].values()
            if shard is not None
        )
        assert total_misses == len(schemas)
        assert stats["ring"]["compiles_observed"] == len(schemas)

    def test_corpus_spreads_across_shards(self, shard_paths):
        schemas = [schema_text(i) for i in range(12)]
        with ShardedClient(shard_paths) as ring:
            owners = {
                member_label(ring.ring.owner(ring.fingerprint(dtd)))
                for dtd in schemas
            }
        # 12 schemas over 3 shards: statistically certain to touch >1
        # shard (and with this fixed family, all 3).
        assert len(owners) > 1

    def test_membership_change_hands_off_instead_of_recompiling(
        self, shard_handles
    ):
        paths = [handle.unix_path for handle in shard_handles]
        with ShardedClient(paths) as ring:
            ring.check(FIGURE1, DOC_OK)
            fingerprint = ring.fingerprint(FIGURE1)
            owner = ring.ring.owner(fingerprint)
            ring.ring.remove(owner)
            reply = ring.check(FIGURE1, DOC_OK)
        # The new owner answered warm from the handed-off artifact.
        assert reply["schema"]["registry"] == "hit"
        assert ring.ring_stats["handoffs"] == 1
        assert ring.ring_stats["handoff_bytes"] > 0
        # Ring-wide (including the departed shard, where the one honest
        # compile lives) nothing was ever compiled twice.
        total_misses = sum(
            handle.server.registry.stats.misses for handle in shard_handles
        )
        assert total_misses == 1

    def test_failover_when_a_shard_dies(self, shard_handles):
        paths = [handle.unix_path for handle in shard_handles]
        with ShardedClient(paths) as ring:
            ring.check(FIGURE1, DOC_OK)
            fingerprint = ring.fingerprint(FIGURE1)
            owner = ring.ring.owner(fingerprint)
            shard_handles[paths.index(owner)].stop()
            reply = ring.check(FIGURE1, DOC_OK)
            assert reply["potentially_valid"] is True
            assert ring.ring_stats["failovers"] == 1
            assert member_label(owner) in ring.ring_stats["down"]
            # Deterministic: the same fallback serves the repeat.
            again = ring.check(FIGURE1, DOC_OK)
            assert again["schema"]["registry"] == "hit"

    def test_all_shards_down_raises_connection_error(self, tmp_path):
        ring = ShardedClient([str(tmp_path / "nobody-home.sock")])
        with pytest.raises(ConnectionError):
            ring.check(FIGURE1, DOC_OK)

    def test_bad_dtd_raises_without_touching_the_ring(self, shard_paths):
        with ShardedClient(shard_paths) as ring:
            with pytest.raises(ProtocolError) as excinfo:
                ring.check("<!ELEMENT broken", DOC_OK)
            assert excinfo.value.code == "bad-dtd"
            assert ring.ring_stats["requests_by_member"] == {}

    def test_check_batch_routes_to_owner(self, shard_paths):
        with ShardedClient(shard_paths) as ring:
            replies, trailer = ring.check_batch(FIGURE1, [DOC_OK, DOC_BAD])
            assert [r["potentially_valid"] for r in replies] == [True, False]
            assert trailer["items"] == 2
            owner = member_label(ring.ring.owner(ring.fingerprint(FIGURE1)))
            assert ring.ring_stats["requests_by_member"] == {owner: 1}

    def test_check_corpus_parallel_fan_out(self, shard_paths):
        batches = [
            (schema_text(index), [doc_text(index)] * 4) for index in range(6)
        ]
        with ShardedClient(shard_paths) as ring:
            results = ring.check_corpus(batches)
            stats = ring.stats()
        assert len(results) == 6
        for index, (replies, trailer) in enumerate(results):
            assert trailer["items"] == 4
            assert all(r["potentially_valid"] for r in replies)
        total_misses = sum(
            shard["registry"]["misses"]
            for shard in stats["shards"].values()
            if shard is not None
        )
        assert total_misses == 6

    def test_classify_and_validate_route_too(self, shard_paths):
        with ShardedClient(shard_paths) as ring:
            classify = ring.classify(FIGURE1)
            assert classify["dtd_class"] == "non-recursive"
            validate = ring.validate(FIGURE1, DOC_OK)
            assert validate["valid"] is False
            # Three schema-touching calls, one owner, zero extra compiles.
            stats = ring.stats()
        total_misses = sum(
            shard["registry"]["misses"]
            for shard in stats["shards"].values()
            if shard is not None
        )
        assert total_misses == 1

    def test_needs_at_least_one_member(self):
        with pytest.raises(ValueError):
            ShardedClient([])


# -- replica sets ------------------------------------------------------------


class TestReplicaSets:
    def test_owners_are_a_prefix_of_preference(self):
        ring = ShardRing(
            ["a.sock", "b.sock", "c.sock", "d.sock"], replica_count=2
        )
        for key in (f"key-{i}" for i in range(50)):
            owners = ring.owners(key)
            assert len(owners) == 2
            assert owners == ring.preference(key)[:2]
            assert owners[0] == ring.owner(key)

    def test_replica_count_larger_than_ring_yields_every_member(self):
        members = ["a.sock", "b.sock", "c.sock"]
        ring = ShardRing(members, replica_count=5)
        assert sorted(ring.owners("anything")) == sorted(members)

    def test_replica_sets_are_stable_for_survivors(self):
        ring = ShardRing(
            ["a.sock", "b.sock", "c.sock", "d.sock"], replica_count=2
        )
        keys = [f"key-{i}" for i in range(300)]
        before = {k: ring.owners(k) for k in keys}
        ring.remove("d.sock")
        for key in keys:
            survivors = [m for m in before[key] if m != "d.sock"]
            # Surviving replicas keep their relative order; a lost slot is
            # refilled by the next member down the old preference walk.
            assert ring.owners(key)[: len(survivors)] == survivors

    def test_replica_count_validation(self):
        with pytest.raises(ValueError):
            ShardRing(["a.sock"], replica_count=0)
        with pytest.raises(ValueError):
            ShardRing(["a.sock"], vnodes=0)


class TestReplicatedClient:
    def test_compile_fans_out_to_the_replica_set(self, shard_handles):
        paths = [handle.unix_path for handle in shard_handles]
        with ShardedClient(paths, replica_count=2) as ring:
            ring.check(FIGURE1, DOC_OK)
            fingerprint = ring.fingerprint(FIGURE1)
            owners = {member_label(m) for m in ring.ring.owners(fingerprint)}
            stats = ring.ring_stats
            # One compile, one fan-out hand-off to the second replica.
            assert stats["compiles_observed"] == 1
            assert stats["handoffs"] == 1
        # Both replicas answer warm; non-replicas never saw the schema.
        total_misses = 0
        for handle in shard_handles:
            misses = handle.server.registry.stats.misses
            total_misses += misses
            held = handle.server.registry.lookup(fingerprint) is not None
            assert held == (handle.unix_path in owners)
        assert total_misses == 1

    def test_killing_one_replica_loses_no_checks_and_no_compiles(
        self, shard_handles
    ):
        paths = [handle.unix_path for handle in shard_handles]
        with ShardedClient(paths, replica_count=2) as ring:
            ring.check(FIGURE1, DOC_OK)
            fingerprint = ring.fingerprint(FIGURE1)
            primary = ring.ring.owner(fingerprint)
            shard_handles[paths.index(primary)].stop()
            reply = ring.check(FIGURE1, DOC_OK)
            assert reply["potentially_valid"] is True
            # The surviving replica answered from its fanned-out artifact:
            # a registry hit, not a recompile.
            assert reply["schema"]["registry"] == "hit"
            assert ring.ring_stats["failovers"] == 1
            assert ring.ring_stats["compiles_observed"] == 1

    def test_all_replicas_down_is_a_clear_error_not_a_hang(self, tmp_path):
        # Every member of the (whole-ring) replica set is unreachable: the
        # call must fail fast with a structured, catchable error.
        paths = [str(tmp_path / f"nobody-{i}.sock") for i in range(2)]
        ring = ShardedClient(paths, replica_count=2, timeout=2.0)
        with pytest.raises(ShardUnavailableError) as excinfo:
            ring.check(FIGURE1, DOC_OK)
        assert excinfo.value.code == "unreachable"
        assert excinfo.value.fingerprint == ring.fingerprint(FIGURE1)
        # Both contracts hold: it is a ServerError and a ConnectionError.
        assert isinstance(excinfo.value, ServerError)
        assert isinstance(excinfo.value, ConnectionError)

    def test_replica_count_above_live_members_still_serves(self, shard_paths):
        with ShardedClient(shard_paths, replica_count=7) as ring:
            reply = ring.check(FIGURE1, DOC_OK)
            assert reply["potentially_valid"] is True
            fingerprint = ring.fingerprint(FIGURE1)
            assert len(ring.ring.owners(fingerprint)) == len(shard_paths)


# -- epochs on the client ----------------------------------------------------


class TestClientEpochs:
    def test_client_adopts_the_first_stamped_epoch(self, shard_handles):
        paths = [handle.unix_path for handle in shard_handles]
        for handle in shard_handles:
            handle.server.set_ring_view(3, paths, 1)
        with ShardedClient(paths) as ring:
            assert ring.epoch is None
            ring.check(FIGURE1, DOC_OK)
            assert ring.epoch == 3

    def test_wrong_epoch_refreshes_membership_without_restart(
        self, shard_handles, tmp_path
    ):
        paths = [handle.unix_path for handle in shard_handles]
        for handle in shard_handles:
            handle.server.set_ring_view(1, paths, 1)
        with ShardedClient(paths) as ring:
            ring.check(FIGURE1, DOC_OK)
            assert ring.epoch == 1
            # Membership changes behind the client's back: every shard
            # learns epoch 2 with one member gone.
            survivors = paths[:2]
            for handle in shard_handles[:2]:
                handle.server.set_ring_view(2, survivors, 1)
            shard_handles[2].stop()
            reply = ring.check(FIGURE1, DOC_OK)
            assert reply["potentially_valid"] is True
            assert ring.epoch == 2
            assert ring.ring_stats["members"] == sorted(survivors)

    def test_epoch_race_between_two_membership_changes(self, shard_handles):
        # The client sleeps through two changes; one wrong-epoch answer
        # must deliver the *newest* view, and a stale view pushed later
        # must not roll the client back.
        paths = [handle.unix_path for handle in shard_handles]
        for handle in shard_handles:
            handle.server.set_ring_view(1, paths, 1)
        with ShardedClient(paths) as ring:
            ring.check(FIGURE1, DOC_OK)
            assert ring.epoch == 1
            for handle in shard_handles:  # change 1 then change 2, racing
                handle.server.set_ring_view(2, paths[:2], 1)
                handle.server.set_ring_view(3, paths[:1], 1)
            assert ring.check(FIGURE1, DOC_OK)["potentially_valid"]
            assert ring.epoch == 3
            assert ring.ring_stats["members"] == [paths[0]]
            # A stale refresh arriving late is ignored.
            ring.refresh(paths[:2], epoch=2)
            assert ring.epoch == 3
            assert ring.ring_stats["members"] == [paths[0]]

    def test_success_reply_with_newer_epoch_triggers_health_refresh(
        self, shard_handles
    ):
        paths = [handle.unix_path for handle in shard_handles]
        for handle in shard_handles:
            handle.server.set_ring_view(1, paths, 1)
        with ShardedClient(paths) as ring:
            ring.check(FIGURE1, DOC_OK)
            assert ring.epoch == 1
            # The view advances but the client's next request carries the
            # old epoch — which is *older*, so the shard rejects it... to
            # exercise the stamp-chasing path instead, advance only the
            # reply stamp via a fresh fingerprint routed to a shard that
            # already adopted epoch 2.
            for handle in shard_handles:
                handle.server.set_ring_view(2, paths[:2], 1)
            assert ring.check(FIGURE1, DOC_OK)["potentially_valid"]
            assert ring.epoch == 2

    def test_health_chased_adoption_invalidates_the_owners_memo(
        self, shard_handles
    ):
        # The bugfix: the fingerprint→owners memo must be dropped on
        # *every* epoch adoption, not only on wrong-epoch replies.  Warm
        # the memo, bump the epoch behind the client's back with the
        # schema's owner removed from the view, let a success-reply stamp
        # chase the refresh — the next request must not route to the
        # removed member.
        paths = [handle.unix_path for handle in shard_handles]
        for handle in shard_handles:
            handle.server.set_ring_view(1, paths, 1)
        with ShardedClient(paths) as ring:
            ring.check(FIGURE1, DOC_OK)  # memo warm, epoch 1 adopted
            fingerprint = ring.fingerprint(FIGURE1)
            removed = member_label(ring.placement.owners(fingerprint)[0])
            survivors = [p for p in paths if p != removed]
            # Every shard (including the removed one, which stays up and
            # would happily serve a stale-routed request) learns epoch 2.
            for handle in shard_handles:
                handle.server.set_ring_view(2, survivors, 1)
            served_before = ring.ring_stats["requests_by_member"].get(
                removed, 0
            )
            # A schema owned by a survivor: its success reply is stamped
            # epoch 2 and the client chases the view via health.
            for index in range(8):
                ring.check(schema_text(index), doc_text(index))
                if ring.epoch == 2:
                    break
            assert ring.epoch == 2
            assert ring.ring_stats["members"] == sorted(survivors)
            # The memo entry for FIGURE1 died with the adoption: the
            # request re-resolves under the new view, away from the
            # removed member.
            reply = ring.check(FIGURE1, DOC_OK)
            assert reply["potentially_valid"] is True
            assert member_label(
                ring.placement.owners(fingerprint)[0]
            ) != removed
            assert (
                ring.ring_stats["requests_by_member"].get(removed, 0)
                == served_before
            )

    def test_client_adopts_the_advertised_read_policy(self, shard_handles):
        paths = [handle.unix_path for handle in shard_handles]
        for handle in shard_handles:
            handle.server.set_ring_view(
                1, paths, 2, read_policy="round-robin"
            )
        with ShardedClient(paths, replica_count=2) as ring:
            assert ring.read_policy == "primary-first"  # nothing learned yet
            ring.check(FIGURE1, DOC_OK)
            # The first stamped reply triggered a health fetch of the
            # full view, advertised policy included.
            assert ring.read_policy == "round-robin"
            assert ring.placement.read_policy == "round-robin"


class TestReadPolicies:
    def test_round_robin_reads_alternate_across_the_replica_set(
        self, shard_handles
    ):
        paths = [handle.unix_path for handle in shard_handles]
        with ShardedClient(
            paths, replica_count=2, read_policy="round-robin"
        ) as ring:
            for _ in range(6):
                assert ring.check(FIGURE1, DOC_OK)["ok"]
            fingerprint = ring.fingerprint(FIGURE1)
            owners = {member_label(m) for m in ring.ring.owners(fingerprint)}
            served = ring.ring_stats["requests_by_member"]
        # Both replicas took reads; each at least 2 of the 6.
        assert set(served) == owners
        assert all(count >= 2 for count in served.values())
        # The spread cost nothing: one compile, artifacts fanned out.
        assert sum(
            handle.server.registry.stats.misses for handle in shard_handles
        ) == 1

    def test_least_inflight_serves_from_an_idle_replica(self, shard_paths):
        with ShardedClient(
            shard_paths, replica_count=2, read_policy="least-inflight"
        ) as ring:
            fingerprint = ring.fingerprint(FIGURE1)
            primary, replica = ring.ring.owners(fingerprint)
            ring.check(FIGURE1, DOC_OK)  # compiles on the primary, fans out
            # Simulate a straggling primary: a request pinned in flight.
            ring.router.begin(primary)
            try:
                reply = ring.check(FIGURE1, DOC_OK)
                assert reply["potentially_valid"] is True
                served = ring.ring_stats["requests_by_member"]
                assert served.get(member_label(replica), 0) >= 1
            finally:
                ring.router.finish(primary)

    def test_invalid_read_policy_is_rejected(self, shard_paths):
        with pytest.raises(ValueError):
            ShardedClient(shard_paths, read_policy="sticky")


# -- corpus-level failure surfacing ------------------------------------------


class TestCheckCorpusFailures:
    def test_dead_shard_mid_corpus_fails_over_losing_nothing(self, tmp_path):
        # One live shard, one address nobody serves: batches owned by the
        # dead member fail over to the live one — the corpus completes
        # with zero lost checks and no exception.
        live = ServerThread(unix_path=str(tmp_path / "live.sock"), port=0).start()
        dead_path = str(tmp_path / "dead.sock")
        try:
            with ShardedClient(
                [live.unix_path, dead_path], timeout=2.0
            ) as ring:
                batches = [
                    (schema_text(index), [doc_text(index)] * 2)
                    for index in range(8)
                ]
                dead_owned = [
                    index
                    for index, (dtd, _docs) in enumerate(batches)
                    if member_label(ring.ring.owner(ring.fingerprint(dtd)))
                    == dead_path
                ]
                assert dead_owned, "salt the schema family: no batch mapped"
                results = ring.check_corpus(batches)
                stats = ring.ring_stats
        finally:
            live.stop()
        assert len(results) == len(batches)
        for replies, trailer in results:
            assert trailer["ok"] is True
            assert all(r["potentially_valid"] for r in replies)
        # Only the first routed call pays the failover (the dead member is
        # then marked down and later batches route straight to the live one).
        assert stats["failovers"] >= 1
        assert dead_path in stats["down"]

    def test_failed_batch_does_not_abort_the_shards_remaining_work(
        self, tmp_path
    ):
        # Both batches route to the same dead member: each gets its own
        # failure entry (the old behavior abandoned the second).
        dead_path = str(tmp_path / "dead.sock")
        ring = ShardedClient([dead_path], timeout=2.0)
        results = ring.check_corpus(
            [(schema_text(0), [doc_text(0)]), (schema_text(1), [doc_text(1)])]
        )
        assert len(results) == 2
        for replies, trailer in results:
            assert replies is None
            assert trailer["error"]["code"] == "unreachable"


# -- the client-side coarse pre-filter ---------------------------------------


class TestCoarseFilter:
    """``coarse_filter=True``: definite documents never cross the wire."""

    #: <zz> is undeclared in FIGURE1 — a definite coarse reject.
    REJECT = "<r><zz></zz></r>"

    def test_first_batch_adopts_the_reply_stamp(self, shard_paths):
        with ShardedClient(shard_paths, coarse_filter=True) as ring:
            replies, trailer = ring.check_batch(FIGURE1, [DOC_OK, self.REJECT])
            # Nothing cached yet: the batch runs unfiltered on the shard,
            # which stamps the summary into the trailer for adoption.
            assert "filtered" not in trailer
            assert replies[0]["potentially_valid"] is True
            assert replies[1]["potentially_valid"] is False
            stats = ring.ring_stats
            assert stats["coarse_cached"] == 1
            assert stats["coarse_filtered"] == 0

    def test_second_batch_is_pre_filtered_locally(self, shard_paths):
        with ShardedClient(shard_paths, coarse_filter=True) as ring:
            ring.check_batch(FIGURE1, [DOC_OK])  # prime the summary cache
            replies, trailer = ring.check_batch(
                FIGURE1, [self.REJECT, DOC_OK, self.REJECT]
            )
            assert trailer["items"] == 3
            assert trailer["filtered"] == 2
            for index in (0, 2):
                assert replies[index]["id"] == index
                assert replies[index]["algorithm"] == "coarse"
                assert replies[index]["admission"] == "reject"
                assert replies[index]["filtered"] is True
                assert replies[index]["potentially_valid"] is False
                failure = replies[index]["failures"][0]
                assert (failure["path"], failure["element"]) == ("/r", "r")
            # The uncertain document escalated to the owning shard.
            assert replies[1]["id"] == 1
            assert replies[1]["algorithm"] != "coarse"
            assert replies[1]["potentially_valid"] is True
            assert ring.ring_stats["coarse_filtered"] == 2

    def test_all_definite_batch_never_touches_a_shard(self, shard_paths):
        with ShardedClient(shard_paths, coarse_filter=True) as ring:
            ring.check_batch(FIGURE1, [DOC_OK])  # prime the summary cache
            requests_before = dict(ring.ring_stats["requests_by_member"])
            replies, trailer = ring.check_batch(FIGURE1, [self.REJECT] * 4)
            assert trailer["filtered"] == 4
            assert trailer["errors"] == 0
            assert all(r["algorithm"] == "coarse" for r in replies)
            assert ring.ring_stats["requests_by_member"] == requests_before

    def test_cache_miss_falls_back_to_get_coarse(self, shard_paths):
        # Prime the *shard* with the artifact through one client, then a
        # fresh client (empty stamp cache) must fetch the summary via the
        # get-coarse op instead of an unfiltered stamped batch.
        with ShardedClient(shard_paths) as primer:
            primer.check(FIGURE1, DOC_OK)
        with ShardedClient(shard_paths, coarse_filter=True) as ring:
            replies, trailer = ring.check_batch(FIGURE1, [self.REJECT, DOC_OK])
            assert trailer["filtered"] == 1
            assert replies[0]["algorithm"] == "coarse"
            assert replies[1]["potentially_valid"] is True
            assert ring.ring_stats["coarse_cached"] == 1

    def test_filter_is_bypassed_for_explicit_algorithms(self, shard_paths):
        with ShardedClient(shard_paths, coarse_filter=True) as ring:
            ring.check_batch(FIGURE1, [DOC_OK])  # prime the summary cache
            replies, trailer = ring.check_batch(
                FIGURE1, [self.REJECT], algorithm="kernel"
            )
            assert "filtered" not in trailer
            assert replies[0]["algorithm"] == "kernel"
            assert replies[0]["potentially_valid"] is False
