"""Tests for the read-policy router and the connection pool."""

from __future__ import annotations

import pytest

from repro.server.placement import PlacementView, member_label
from repro.server.pool import ConnectionPool
from repro.server.router import DEFAULT_READ_POLICY, Router

MEMBERS = ["a.sock", "b.sock", "c.sock", "d.sock"]


def make_router(
    policy: str | None = None,
    replica_count: int = 2,
    read_policy: str | None = None,
) -> tuple[Router, PlacementView, ConnectionPool]:
    view = PlacementView(MEMBERS, replica_count=replica_count,
                         read_policy=read_policy)
    pool = ConnectionPool(connect=lambda member, timeout: None)
    router = Router(view, pool, policy=policy)
    return router, view, pool


class TestPolicySelection:
    def test_default_is_primary_first(self):
        router, _view, _pool = make_router()
        assert router.policy == DEFAULT_READ_POLICY == "primary-first"

    def test_explicit_policy_wins_over_advertised(self):
        router, _view, _pool = make_router(
            policy="least-inflight", read_policy="round-robin"
        )
        assert router.policy == "least-inflight"

    def test_policyless_router_follows_the_ring_advertisement(self):
        router, view, _pool = make_router(read_policy="round-robin")
        assert router.policy == "round-robin"
        # A later view without a policy keeps the last advertised one
        # (adopt only overwrites when the new view names a policy).
        view.adopt(MEMBERS[:3], epoch=2)
        assert router.policy == "round-robin"

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError):
            make_router(policy="sticky")
        router, _view, _pool = make_router()
        with pytest.raises(ValueError):
            router.policy = "sticky"

    def test_policy_is_settable(self):
        router, _view, _pool = make_router()
        router.policy = "round-robin"
        assert router.policy == "round-robin"
        router.policy = None
        assert router.policy == "primary-first"


class TestPrimaryFirst:
    def test_candidates_follow_preference_order(self):
        router, view, _pool = make_router()
        for key in (f"key-{i}" for i in range(30)):
            assert router.candidates(key) == view.preference(key)

    def test_down_members_filtered_live_rest_appended(self):
        router, view, pool = make_router()
        key = "some-key"
        preference = view.preference(key)
        pool.mark_down(preference[0])
        assert router.candidates(key) == preference[1:]

    def test_everything_down_returns_the_full_preference(self):
        router, view, pool = make_router()
        key = "some-key"
        for member in MEMBERS:
            pool.mark_down(member)
        assert router.candidates(key) == view.preference(key)


class TestRoundRobin:
    def test_rotation_cycles_the_live_owners(self):
        router, view, _pool = make_router(policy="round-robin")
        key = "hot-schema"
        owners = view.owners(key)
        firsts = [router.candidates(key)[0] for _ in range(6)]
        assert firsts == (owners * 3)[:6]  # a, b, a, b, a, b

    def test_rotation_is_per_fingerprint(self):
        router, _view, _pool = make_router(policy="round-robin")
        first_a = router.candidates("schema-a")[0]
        # Touching schema-b must not advance schema-a's rotation.
        router.candidates("schema-b")
        router.candidates("schema-b")
        assert router.candidates("schema-a")[0] != first_a

    def test_rotation_skips_down_owners(self):
        router, view, pool = make_router(policy="round-robin")
        key = "hot-schema"
        owners = view.owners(key)
        pool.mark_down(owners[0])
        firsts = {router.candidates(key)[0] for _ in range(4)}
        assert firsts == {owners[1]}

    def test_failover_tail_is_still_appended(self):
        router, view, _pool = make_router(policy="round-robin")
        key = "hot-schema"
        preference = view.preference(key)
        candidates = router.candidates(key)
        assert sorted(map(member_label, candidates)) == sorted(
            map(member_label, preference)
        )
        assert candidates[2:] == preference[2:]  # non-owners keep order


class TestLeastInflight:
    def test_idle_ring_degrades_to_primary_first(self):
        router, view, _pool = make_router(policy="least-inflight")
        key = "hot-schema"
        assert router.candidates(key) == view.preference(key)

    def test_loaded_primary_yields_to_the_idle_replica(self):
        router, view, _pool = make_router(policy="least-inflight")
        key = "hot-schema"
        primary, replica = view.owners(key)
        router.begin(primary)
        assert router.candidates(key)[0] == replica
        router.begin(replica)
        router.begin(replica)
        assert router.candidates(key)[0] == primary
        assert router.inflight == {
            member_label(primary): 1,
            member_label(replica): 2,
        }

    def test_finish_releases_load_and_counts_served(self):
        router, view, _pool = make_router(policy="least-inflight")
        member = view.owners("k")[0]
        router.begin(member)
        router.finish(member, served=True)
        assert router.inflight == {}
        assert router.requests_by_member == {member_label(member): 1}
        router.begin(member)
        router.finish(member, served=False)
        assert router.requests_by_member == {member_label(member): 1}

    def test_stats_shape(self):
        router, _view, _pool = make_router(policy="least-inflight")
        stats = router.stats()
        assert stats["policy"] == "least-inflight"
        assert stats["inflight"] == {}
        assert stats["requests_by_member"] == {}


class TestServerReportedLoad:
    """least-inflight prefers fresh server truth over local counters."""

    def test_fresh_report_beats_the_local_counter(self):
        router, view, _pool = make_router(policy="least-inflight")
        key = "hot-schema"
        primary, replica = view.owners(key)
        # Locally the primary looks idle, but it reports heavy load
        # (other clients' traffic the local counter can never see).
        router.note_load(primary, inflight=7, queue_depth=3)
        router.note_load(replica, inflight=0)
        assert router.candidates(key)[0] == replica
        assert router.reported_load(primary) == 10
        assert router.reported_load(replica) == 0

    def test_local_delta_since_the_report_is_added(self):
        router, view, _pool = make_router(policy="least-inflight")
        key = "hot-schema"
        primary, replica = view.owners(key)
        router.note_load(primary, inflight=1)
        router.note_load(replica, inflight=1)
        # Three calls sent to the replica *after* its report outweigh
        # the equal reported base: score = reported + local delta.
        for _ in range(3):
            router.begin(replica)
        assert router.candidates(key)[0] == primary

    def test_traffic_before_the_report_is_not_double_counted(self):
        router, view, _pool = make_router(policy="least-inflight")
        key = "hot-schema"
        primary, replica = view.owners(key)
        # Two local calls in flight, then the server reports a load that
        # already includes them: the baseline keeps the score at the
        # report, not report + 2.
        router.begin(primary)
        router.begin(primary)
        router.note_load(primary, inflight=2)
        router.note_load(replica, inflight=3)
        assert router.candidates(key)[0] == primary

    def test_stale_report_falls_back_to_the_local_counter(self):
        from repro.server import router as router_module

        router, view, _pool = make_router(policy="least-inflight")
        key = "hot-schema"
        primary, replica = view.owners(key)
        router.note_load(primary, inflight=50)
        # Age the report past the TTL by rewriting its timestamp.
        label = member_label(primary)
        reported, baseline, stamped = router._reported[label]
        router._reported[label] = (
            reported, baseline, stamped - router_module.REPORT_TTL - 1.0
        )
        assert router.reported_load(primary) is None
        assert router.candidates(key)[0] == primary  # local counter: 0
        router.begin(primary)
        assert router.candidates(key)[0] == replica

    def test_prefer_reported_off_is_the_client_counter_control(self):
        router, view, _pool = make_router(policy="least-inflight")
        router.prefer_reported = False
        key = "hot-schema"
        primary, replica = view.owners(key)
        router.note_load(primary, inflight=50)
        assert router.candidates(key)[0] == primary
        router.begin(primary)
        assert router.candidates(key)[0] == replica

    def test_negative_stamps_are_clamped(self):
        router, view, _pool = make_router(policy="least-inflight")
        member = view.owners("k")[0]
        router.note_load(member, inflight=-4, queue_depth=-1)
        assert router.reported_load(member) == 0


class _FakeClient:
    def __init__(self) -> None:
        self.closed = False

    def close(self) -> None:
        self.closed = True


class TestConnectionPool:
    def test_client_is_cached_and_reused(self):
        made = []

        def connect(member, timeout):
            client = _FakeClient()
            made.append(client)
            return client

        pool = ConnectionPool(connect=connect)
        with pool.lock("a.sock"):
            first = pool.client("a.sock")
            assert pool.client("a.sock") is first
        assert len(made) == 1
        assert pool.is_down("a.sock") is False

    def test_mark_down_only_evicts_the_failed_client(self):
        pool = ConnectionPool(connect=lambda member, timeout: _FakeClient())
        with pool.lock("a.sock"):
            stale = pool.client("a.sock")
        pool.mark_down("a.sock", stale)
        assert stale.closed
        with pool.lock("a.sock"):
            fresh = pool.client("a.sock")
        assert pool.is_down("a.sock") is False  # reconnect revives
        # A stale failure report must not evict the healthy reconnect.
        pool.mark_down("a.sock", stale)
        with pool.lock("a.sock"):
            assert pool.client("a.sock") is fresh
        assert not fresh.closed

    def test_discard_drops_without_marking_down(self):
        pool = ConnectionPool(connect=lambda member, timeout: _FakeClient())
        with pool.lock("a.sock"):
            client = pool.client("a.sock")
            pool.discard("a.sock", client)
        assert client.closed
        assert pool.is_down("a.sock") is False

    def test_addresses_are_remembered_by_label(self):
        pool = ConnectionPool(connect=lambda member, timeout: _FakeClient())
        pool.remember([("127.0.0.1", 8750), "/run/pv.sock"])
        assert pool.address("127.0.0.1:8750") == ("127.0.0.1", 8750)
        assert pool.address("/run/pv.sock") == "/run/pv.sock"
        assert pool.address("unknown") is None

    def test_close_closes_every_cached_connection(self):
        pool = ConnectionPool(connect=lambda member, timeout: _FakeClient())
        clients = []
        for member in ("a.sock", "b.sock"):
            with pool.lock(member):
                clients.append(pool.client(member))
        pool.close()
        assert all(client.closed for client in clients)
