#!/usr/bin/env python
"""Build the optional native kernel extension.

The kernel backend's hot loop (``repro.core._kernel_impl``) is plain
python written to compile cleanly with Cython.  This tool produces the
compiled variant the import seam in ``repro.core.kernel`` prefers:

1. copy ``_kernel_impl.py`` to a scratch directory as
   ``_kernel_native.py``, with ``IMPLEMENTATION`` patched from
   ``"pure"`` to ``"native"`` (the only source difference, so the two
   modules are behaviorally identical by construction);
2. cythonize and compile it;
3. drop the built extension next to ``_kernel_impl.py`` in
   ``src/repro/core/``, where the seam finds it.

Requires Cython and a C compiler, which the runtime deliberately does
not: this is run by the CI ``kernel-native`` job (which installs
Cython for itself) and by developers who want the extra constant
factor locally.  It is **never** required — without the extension the
kernel backend runs the pure-python module with identical verdicts.

``--check`` verifies the result in a subprocess: the seam must report
``native``, and a pure-vs-native differential over a documents corpus
must agree verdict by verdict.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
CORE = REPO / "src" / "repro" / "core"
IMPL = CORE / "_kernel_impl.py"

CHECK_SCRIPT = """
import os, random, subprocess, sys

from repro.core import kernel

assert kernel.NATIVE, "the seam did not pick up the native extension"
assert kernel.IMPLEMENTATION == "native", kernel.IMPLEMENTATION
assert kernel.KernelMachine.__module__ == "repro.core._kernel_native"

# Pure vs native differential: same verdict on every document.
from repro.core.pv import PVChecker
from repro.dtd import catalog
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.serialize import to_xml

PROBE = (
    "import sys\\n"
    "from repro.core import kernel\\n"
    "from repro.core.pv import PVChecker\\n"
    "from repro.dtd import catalog\\n"
    "from repro.xmlmodel.parser import parse_xml\\n"
    "assert not kernel.NATIVE\\n"
    "checker = PVChecker(catalog.load(sys.argv[1]), algorithm='kernel')\\n"
    "verdicts = [\\n"
    "    checker.is_potentially_valid(parse_xml(text))\\n"
    "    for text in sys.stdin.read().split(chr(0)) if text\\n"
    "]\\n"
    "print(''.join('1' if verdict else '0' for verdict in verdicts))\\n"
)

for name in ("paper-figure1", "manuscript", "strong-chain"):
    dtd = catalog.load(name)
    rng = random.Random(15)
    generator = DocumentGenerator(dtd, seed=15)
    documents = []
    for document in generator.documents(4, target_nodes=24, max_depth=8):
        documents.append(document)
        documents.append(degrade(document, rng, fraction=0.5)[0])
    native_checker = PVChecker(dtd, algorithm="kernel")
    native = "".join(
        "1" if native_checker.is_potentially_valid(document) else "0"
        for document in documents
    )
    payload = chr(0).join(to_xml(document) for document in documents)
    pure = subprocess.run(
        [sys.executable, "-c", PROBE, name],
        input=payload, capture_output=True, text=True, check=True,
        env={**os.environ, "REPRO_KERNEL_PURE": "1"},
    ).stdout.strip()
    assert native == pure, (name, native, pure)

print("native kernel check ok")
"""


def clean() -> int:
    """Remove previously built extensions; returns how many were removed."""
    removed = 0
    for artifact in CORE.glob("_kernel_native.*"):
        artifact.unlink()
        removed += 1
    return removed


def build() -> Path:
    try:
        from Cython.Build import cythonize
        from setuptools import Extension
        from setuptools.dist import Distribution
    except ImportError as error:
        raise SystemExit(
            f"Cython/setuptools unavailable ({error}); the native kernel is "
            "optional — install Cython (`pip install cython`) to build it, "
            "or skip this tool and run the pure-python kernel."
        )

    text = IMPL.read_text()
    needle = 'IMPLEMENTATION = "pure"'
    if needle not in text:
        raise SystemExit(f"{IMPL} lost its {needle!r} marker; refusing to build")

    scratch = Path(tempfile.mkdtemp(prefix="repro-kernel-native-"))
    try:
        package_dir = scratch / "repro" / "core"
        package_dir.mkdir(parents=True)
        source = package_dir / "_kernel_native.py"
        source.write_text(
            text.replace(needle, 'IMPLEMENTATION = "native"', 1)
        )

        extensions = cythonize(
            [
                Extension(
                    "repro.core._kernel_native",
                    [str(source)],
                )
            ],
            language_level=3,
            build_dir=str(scratch / "cython"),
            quiet=True,
        )
        distribution = Distribution(
            {"name": "repro-kernel-native", "ext_modules": extensions}
        )
        command = distribution.get_command_obj("build_ext")
        command.build_lib = str(scratch / "lib")
        command.build_temp = str(scratch / "temp")
        command.ensure_finalized()
        command.run()

        built = next(
            (Path(command.build_lib) / "repro" / "core").glob("_kernel_native.*")
        )
        clean()
        target = CORE / built.name
        shutil.copy2(built, target)
        return target
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def check() -> None:
    subprocess.run(
        [sys.executable, "-c", CHECK_SCRIPT],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        check=True,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="after building, verify the seam reports native and that "
        "pure and native verdicts agree on a documents corpus",
    )
    parser.add_argument(
        "--clean",
        action="store_true",
        help="remove any built extension and exit (back to pure python)",
    )
    args = parser.parse_args(argv)

    if args.clean:
        removed = clean()
        print(f"removed {removed} built extension(s)")
        return 0

    target = build()
    print(f"built {target.relative_to(REPO)}")
    if args.check:
        check()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
