"""Shared benchmark fixtures and workload builders.

Every benchmark module regenerates one claim of the paper as a measured
table (the paper itself publishes no numbers — Section 4.4 argues the
complexity analytically, and Section 3.3 argues qualitatively against
general CFG parsing).  EXPERIMENTS.md records the measured shapes.
"""

from __future__ import annotations

import pytest

from repro.dtd import catalog


@pytest.fixture(scope="session")
def manuscript_dtd():
    return catalog.manuscript()


@pytest.fixture(scope="session")
def figure1_dtd():
    return catalog.paper_figure1()


@pytest.fixture(scope="session")
def t2_dtd():
    return catalog.example6_t2()
