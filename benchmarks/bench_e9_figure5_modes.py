"""E9 (ablation) — the cost and effect of the F-A1 refinement rules.

The verbatim Figure-5 pseudocode over-accepts (finding F-A1); the refined
mode adds two node-retirement rules.  This ablation measures, on random
content sequences over the paper's own DTD:

* how often the two modes disagree with the exact machine (error rates),
* the runtime overhead of the refinement (expected: none — the rules only
  prune state).

This quantifies how much the published algorithm's greediness costs in
correctness, which the paper does not evaluate.
"""

from __future__ import annotations

import random


from repro.bench.harness import Table, time_callable
from repro.core.machine import PVMachine
from repro.core.recognizer import ECRecognizer
from repro.xmlmodel.delta import SIGMA

SEQUENCES = 400
LENGTH = 5


def _random_sequences(dtd, count, length, seed=17):
    rng = random.Random(seed)
    alphabet = list(dtd.element_names()) + [SIGMA]
    sequences = []
    for _ in range(count):
        tokens: list[str] = []
        while len(tokens) < length:
            token = rng.choice(alphabet)
            if tokens and tokens[-1] == SIGMA and token == SIGMA:
                continue
            tokens.append(token)
        sequences.append(tokens)
    return sequences


def test_e9_verbatim_vs_refined(benchmark, figure1_dtd):
    dtd = figure1_dtd
    element = "a"
    sequences = _random_sequences(dtd, SEQUENCES, LENGTH)

    exact = [
        PVMachine.for_dtd(dtd, element).recognize(tokens) for tokens in sequences
    ]
    results = {}
    times = {}
    for mode in ("verbatim", "refined"):
        verdicts = []
        for tokens in sequences:
            verdicts.append(
                ECRecognizer.for_dtd(dtd, element, depth=16, mode=mode).accepts(
                    tokens
                )
            )
        results[mode] = verdicts
        times[mode] = time_callable(
            lambda m=mode: [
                ECRecognizer.for_dtd(dtd, element, depth=16, mode=m).accepts(t)
                for t in sequences
            ],
            repeat=3,
        )

    table = Table(
        f"E9: Figure-5 modes vs exact machine "
        f"({SEQUENCES} random length-{LENGTH} contents of <a>, Figure 1 DTD)",
        ["mode", "disagreements", "over-accepts", "under-accepts", "time (s)"],
    )
    for mode in ("verbatim", "refined"):
        overs = sum(
            1 for got, want in zip(results[mode], exact) if got and not want
        )
        unders = sum(
            1 for got, want in zip(results[mode], exact) if not got and want
        )
        table.add_row(mode, overs + unders, overs, unders, times[mode])
    table.print()

    verbatim_errors = sum(
        1 for got, want in zip(results["verbatim"], exact) if got != want
    )
    refined_errors = sum(
        1 for got, want in zip(results["refined"], exact) if got != want
    )
    # The refinement strictly improves agreement and costs nothing.
    assert refined_errors <= verbatim_errors
    assert refined_errors == 0, refined_errors
    assert verbatim_errors > 0  # F-A1 is observable on random inputs

    benchmark(
        lambda: [
            ECRecognizer.for_dtd(dtd, element, depth=16).accepts(t)
            for t in sequences[:50]
        ]
    )
