"""E2 — Section 3.3: general CFG parsing of ``G'`` is impractical.

The paper motivates its linear-time algorithm by observing that the PV
grammar is highly ambiguous and "standard CFG parsing algorithms such as
Earley's are not practical".  We measure, on growing documents:

* whole-document Earley over the expanded ``G'_{T,r}`` (the baseline),
* per-node content-grammar Earley (a fairer, localized baseline),
* the Figure-5 ECRecognizer,
* the exact PVMachine,

and report the speedup of the dedicated recognizers over the Earley
baseline — expecting it to grow with document size (superlinear baseline
vs linear recognizers).
"""

from __future__ import annotations


import random

from repro.baselines.earley_pv import EarleyDocumentChecker
from repro.bench.harness import Table, fit_power_law, time_callable
from repro.core.pv import PVChecker
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.delta import delta_tokens

SIZES = (60, 120, 240, 480)


def _document(dtd, size):
    """A degraded document whose token count actually tracks *size* (the
    Figure 1 DTD is shallow, so repetition must be widened explicitly)."""
    generator = DocumentGenerator(dtd, seed=3, max_repeat=max(3, size // 8))
    document = generator.document(target_nodes=size, max_depth=8)
    degraded, _removed = degrade(document, random.Random(3), 0.5)
    return degraded


def test_e2_earley_vs_recognizers(benchmark, figure1_dtd):
    dtd = figure1_dtd
    whole_earley = EarleyDocumentChecker(dtd)
    node_earley = PVChecker(dtd, algorithm="earley")
    figure5 = PVChecker(dtd, algorithm="figure5")
    machine = PVChecker(dtd, algorithm="machine")

    table = Table(
        "E2: wall time vs size — Earley baselines vs linear recognizers "
        "(Figure 1 DTD)",
        ["tokens", "G' Earley (s)", "node Earley (s)", "figure5 (s)",
         "machine (s)", "speedup G'/fig5"],
    )
    token_counts = []
    earley_times = []
    figure5_times = []
    for size in SIZES:
        document = _document(dtd, size)
        token_counts.append(len(delta_tokens(document.root)))
        t_whole = time_callable(
            lambda d=document: whole_earley.is_potentially_valid(d), repeat=2
        )
        t_node = time_callable(
            lambda d=document: node_earley.check_document(d), repeat=2
        )
        t_fig5 = time_callable(
            lambda d=document: figure5.check_document(d), repeat=3
        )
        t_machine = time_callable(
            lambda d=document: machine.check_document(d), repeat=3
        )
        earley_times.append(t_whole)
        figure5_times.append(t_fig5)
        table.add_row(
            token_counts[-1], t_whole, t_node, t_fig5, t_machine,
            f"{t_whole / max(t_fig5, 1e-9):.0f}x",
        )
    earley_slope = fit_power_law(token_counts, earley_times)
    figure5_slope = fit_power_law(token_counts, figure5_times)
    table.add_row("slope", earley_slope, "", figure5_slope, "", "")
    table.print()

    # The qualitative claim: the Earley baseline is markedly slower than
    # the dedicated recognizer, increasingly so as documents grow.
    assert earley_times[-1] > figure5_times[-1] * 3
    ratios = [e / max(f, 1e-9) for e, f in zip(earley_times, figure5_times)]
    assert ratios[-1] >= ratios[0] * 0.8  # the gap does not close
    assert earley_slope > 0.7, earley_slope  # clearly grows with n

    biggest = _document(dtd, SIZES[-1])
    benchmark(lambda: figure5.check_document(biggest))
