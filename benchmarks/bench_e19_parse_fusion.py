"""E19 — the fused parse→verdict hot path: same answers, no tree, few parses.

E10-E18 timed the verdict stage over *pre-parsed* documents because XML
parsing dwarfed it — on the kernel tier, parsing ran ~7× the entire
verdict time.  That constant is the hot path's actual ceiling, and this
experiment attacks it end to end: the timed region here is
**parse-inclusive** (text in, verdict out), the claim the fusion work
actually makes.

Three bars on the same skewed corpus:

1. **Equivalence** — document by document, the fused path
   (``PVChecker.check_text`` under the default ``REPRO_PARSER=fast``:
   regex tokenizer → interned tag events → streaming kernel, no tree)
   returns exactly the verdict of the reference pipeline
   (``REPRO_PARSER=reference`` character lexer → tree →
   ``check_document``), failure tuples included.
2. **Fusion throughput** — text-to-verdict on the kernel tier, the
   fused path clears **2×** the reference pipeline, single core,
   interleaved best-of-rounds (the E15 measurement discipline).
3. **Memo cache** — on a 50%-repeat corpus (every document submitted
   twice — editor and pipeline traffic repeats itself), the batch
   surface with ``verdict_cache`` enabled clears **5×** the reference
   pipeline: the repeats cost a blake2b digest instead of a parse.
   The cache is built fresh inside every timed round, so the bar
   measures the within-run hit rate, never leftovers from a warmup.

``REPRO_BENCH_FAST=1`` shrinks the corpus and relaxes the throughput
bars for the CI smoke job; the equivalence bar never relaxes.
"""

from __future__ import annotations

import math
import os
import sys
from pathlib import Path
from time import perf_counter

# The corpus generators live with the tests they were built for.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))

import corpusgen  # noqa: E402
from repro.bench.harness import Table, throughput  # noqa: E402
from repro.core.pv import PVChecker  # noqa: E402
from repro.service.batch import BatchChecker  # noqa: E402
from repro.service.cache import VerdictCache  # noqa: E402
from repro.service.registry import DEFAULT_REGISTRY  # noqa: E402
from repro.xmlmodel.fastlex import PARSER_ENV  # noqa: E402
from repro.xmlmodel.parser import parse_xml  # noqa: E402
from repro.xmlmodel.serialize import to_xml  # noqa: E402

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
SEED = int(os.environ.get("REPRO_FUZZ_SEED", "2006"))
#: Documents per shape preset; the full corpus is three shapes' worth.
DOCS_PER_SHAPE = 15 if FAST else 60
#: Mostly-valid traffic: the fused path must win on documents it has to
#: walk to the end, not just on early rejects.
CORRUPT_FRACTION = 0.25
ROUNDS = 3 if FAST else 5
#: The tentpole bar: fused text→verdict vs reference parse-then-check.
REQUIRED_FUSION_RATIO = 1.5 if FAST else 2.0
#: The cache bar on the 50%-repeat corpus.
REQUIRED_CACHED_RATIO = 3.0 if FAST else 5.0


def _interleaved_best(workloads: dict[str, object], rounds: int) -> dict[str, float]:
    """Best-of-*rounds* seconds per workload, alternating within rounds."""
    for fn in workloads.values():  # one untimed warmup apiece
        fn()
    best = {name: math.inf for name in workloads}
    for _ in range(rounds):
        for name, fn in workloads.items():
            started = perf_counter()
            fn()
            best[name] = min(best[name], perf_counter() - started)
    return best


def _corpus_texts(dtd) -> list[str]:
    texts: list[str] = []
    for offset, shape in enumerate(sorted(corpusgen.SHAPES)):
        for document, _provenance in corpusgen.mixed_corpus(
            dtd,
            DOCS_PER_SHAPE,
            seed=SEED + offset,
            corrupt_fraction=CORRUPT_FRACTION,
            shape=shape,
        ):
            texts.append(to_xml(document))
    return texts


def test_e19_parse_fusion(benchmark, manuscript_dtd):
    schema = DEFAULT_REGISTRY.get(manuscript_dtd)
    texts = _corpus_texts(manuscript_dtd)
    checker = PVChecker(manuscript_dtd, algorithm="kernel")
    saved = os.environ.get(PARSER_ENV)

    def use(backend: str) -> None:
        os.environ[PARSER_ENV] = backend

    try:
        # 1. Equivalence first: the fused path must reproduce the
        # reference pipeline's verdicts failure-for-failure.
        use("reference")
        reference_verdicts = [
            checker.check_document(parse_xml(text)) for text in texts
        ]
        use("fast")
        for text, expected in zip(texts, reference_verdicts):
            fused = checker.check_text(text)
            assert fused.potentially_valid == expected.potentially_valid
            assert fused.failures == expected.failures

        # 2/3. Parse-inclusive throughput, single core.  Each workload
        # selects its own parser seam (the harness interleaves them);
        # the cached arm rebuilds its cache every round so only the
        # within-run repeat rate is measured.
        repeats = texts + texts  # the 50%-repeat corpus

        def reference_pass() -> None:
            use("reference")
            for text in texts:
                checker.check_document(parse_xml(text))

        def fused_pass() -> None:
            use("fast")
            for text in texts:
                checker.check_text(text)

        def reference_repeat_pass() -> None:
            use("reference")
            for text in repeats:
                checker.check_document(parse_xml(text))

        def cached_repeat_pass() -> None:
            use("fast")
            batch = BatchChecker(
                schema,
                algorithm="kernel",
                verdict_cache=VerdictCache(len(texts)),
            )
            batch.check_texts(repeats)

        best = _interleaved_best(
            {
                "reference": reference_pass,
                "fused": fused_pass,
                "reference-repeat": reference_repeat_pass,
                "cached-repeat": cached_repeat_pass,
            },
            rounds=ROUNDS,
        )
        fusion_ratio = best["reference"] / best["fused"]
        cached_ratio = best["reference-repeat"] / best["cached-repeat"]

        table = Table(
            "E19: fused parse→verdict vs reference pipeline "
            "(manuscript DTD, kernel tier, parse-inclusive, single core)",
            ["arm", "docs", "seconds", "docs/s", "ratio"],
        )
        table.add_row(
            "reference", len(texts), best["reference"],
            throughput(len(texts), best["reference"]), 1.0,
        )
        table.add_row(
            "fused", len(texts), best["fused"],
            throughput(len(texts), best["fused"]), fusion_ratio,
        )
        table.add_row(
            "reference 50% rep", len(repeats), best["reference-repeat"],
            throughput(len(repeats), best["reference-repeat"]), 1.0,
        )
        table.add_row(
            "cached 50% rep", len(repeats), best["cached-repeat"],
            throughput(len(repeats), best["cached-repeat"]), cached_ratio,
        )
        table.print()

        assert fusion_ratio >= REQUIRED_FUSION_RATIO, (
            f"fused path only {fusion_ratio:.2f}x the reference pipeline "
            f"(required {REQUIRED_FUSION_RATIO}x on {len(texts)} documents)"
        )
        assert cached_ratio >= REQUIRED_CACHED_RATIO, (
            f"verdict cache only {cached_ratio:.2f}x the reference pipeline "
            f"on the 50%-repeat corpus (required {REQUIRED_CACHED_RATIO}x)"
        )

        # Headline number: the fused text→verdict sweep.
        use("fast")
        benchmark(fused_pass)
    finally:
        if saved is None:
            os.environ.pop(PARSER_ENV, None)
        else:
            os.environ[PARSER_ENV] = saved
