"""E14 — balanced reads: spread a hot schema over its replicas, for free.

E13 proved the replica layer loses nothing when shards die.  E14 holds
the *read* side to a throughput standard over real ``python -m repro
serve`` subprocesses: a corpus skewed onto one hot schema used to pin
that schema's every check onto its primary owner while the R-1 other
replicas sat idle.  With ``--read-policy round-robin`` the corpus
scheduler spreads the hot schema's ``check-batch`` windows across all
live owners.  Required:

* **balanced reads** — every owner of the hot schema serves a share of
  its documents, and the max/min per-replica ratio of those shares is
  bounded (primary-first, run for contrast, puts every document on one
  owner);
* **faster wall-clock** — the balanced replay beats the primary-first
  replay on >= 2 cores (each shard is its own process; spreading the
  hot schema is real parallelism), reported honestly on 1 core;
* **zero extra compiles** — spreading adds no compiles ring-wide: the
  seed window performs the one honest compile/hand-off and the fan-out
  warms every owner before windows land on them.

``REPRO_BENCH_FAST=1`` shrinks the corpus for the CI smoke job.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.bench.harness import Table, throughput
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.dtd.serialize import dtd_to_text
from repro.server.client import ValidationClient
from repro.server.coordinator import RingCoordinator
from repro.server.ring import ShardedClient, member_label
from repro.service.compiled import schema_fingerprint
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.serialize import to_xml

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
HOT_DOCS = 40 if FAST else 60
COLD_DOCS = 3 if FAST else 6
#: Large enough that the per-document verdict work (the part that
#: parallelizes across shard processes) dominates the per-item wire
#: overhead (the part that does not).
TARGET_NODES = 160
WINDOW = 4
SHARDS = 3
REPLICAS = 2
#: Max/min bound on the per-replica share of the hot schema's documents.
#: Work-stealing is not an even split (a straggling window skews it),
#: but every replica must take a real share.
BALANCE_RATIO = 4.0

HOT_BUILDER = catalog.paper_figure1
COLD_BUILDERS = (catalog.example5_t1, catalog.play, catalog.dictionary)


def _documents(dtd, seed: int, count: int) -> list[str]:
    generator = DocumentGenerator(dtd, seed=seed)
    return [
        to_xml(document)
        for document in generator.documents(count, target_nodes=TARGET_NODES)
    ]


def _corpus() -> list[tuple[str, str | None, list[str]]]:
    batches = []
    hot = HOT_BUILDER()
    batches.append((dtd_to_text(hot), hot.root, _documents(hot, 1400, HOT_DOCS)))
    for index, builder in enumerate(COLD_BUILDERS):
        dtd = builder()
        batches.append(
            (dtd_to_text(dtd), dtd.root,
             _documents(dtd, 1450 + index, COLD_DOCS))
        )
    return batches


def _spawn_server(unix_path: str) -> subprocess.Popen:
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--no-tcp", "--unix", unix_path],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited with {process.returncode} before binding"
            )
        if os.path.exists(unix_path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(unix_path)
                return process
            except OSError:
                pass
            finally:
                probe.close()
        time.sleep(0.02)
    process.terminate()
    raise RuntimeError(f"server on {unix_path} did not come up in time")


def _stop(processes: list[subprocess.Popen]) -> None:
    for process in processes:
        if process.poll() is None:
            process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            process.kill()
            process.wait(timeout=10)


def _shard_stats(unix_path: str) -> dict:
    with ValidationClient.connect_unix(unix_path) as client:
        return client.stats()


def _hot_counts(shard_paths: list[str], fingerprint: str) -> dict[str, int]:
    """Per-shard item count served for *fingerprint* (from `hot` stats)."""
    counts: dict[str, int] = {}
    for path in shard_paths:
        stats = _shard_stats(path)
        counts[path] = dict(
            (fp, count) for fp, count in stats.get("hot") or []
        ).get(fingerprint, 0)
    return counts


def _verdicts(results) -> list[bool]:
    flat: list[bool] = []
    for replies, _trailer in results:
        assert replies is not None
        flat.extend(reply["potentially_valid"] for reply in replies)
    return flat


def test_e14_balanced_reads(benchmark, tmp_path):
    batches = _corpus()
    corpus = [(dtd, docs, root) for dtd, root, docs in batches]
    total_docs = sum(len(docs) for _dtd, _root, docs in batches)
    hot_fingerprint = schema_fingerprint(
        parse_dtd(batches[0][0], root=batches[0][1])
    )
    shard_paths = [str(tmp_path / f"shard-{i}.sock") for i in range(SHARDS)]
    processes = [_spawn_server(path) for path in shard_paths]
    coordinator = RingCoordinator(shard_paths, replica_count=REPLICAS)
    try:
        coordinator.publish()
        with ShardedClient(shard_paths, replica_count=REPLICAS) as ring:
            hot_owners = [
                member_label(m) for m in ring.ring.owners(hot_fingerprint)
            ]
            # -- phase 1: warm the ring (compile once, fan out) --------------
            baseline = _verdicts(ring.check_corpus(corpus))
            compiles_after_warm = sum(
                _shard_stats(path)["registry"]["misses"]
                for path in shard_paths
            )

            # -- phase 2: primary-first replay (the old placement) -----------
            before_pf = _hot_counts(shard_paths, hot_fingerprint)
            pf_started = time.perf_counter()
            pf_results = ring.check_corpus(corpus)
            pf_seconds = time.perf_counter() - pf_started
            after_pf = _hot_counts(shard_paths, hot_fingerprint)
            pf_share = {
                path: after_pf[path] - before_pf[path] for path in shard_paths
            }

            # -- phase 3: balanced replay (round-robin windows) --------------
            balanced_started = time.perf_counter()
            balanced_results = ring.check_corpus(
                corpus, read_policy="round-robin", window=WINDOW
            )
            balanced_seconds = time.perf_counter() - balanced_started
            after_balanced = _hot_counts(shard_paths, hot_fingerprint)
            balanced_share = {
                path: after_balanced[path] - after_pf[path]
                for path in shard_paths
            }
            compiles_final = sum(
                _shard_stats(path)["registry"]["misses"]
                for path in shard_paths
            )
            ring_stats = ring.ring_stats
            benchmark(
                lambda: ring.check(
                    batches[0][0], batches[0][2][0], root=batches[0][1]
                )
            )
    finally:
        coordinator.stop()
        _stop(processes)

    owner_shares = [balanced_share[owner] for owner in hot_owners]
    table = Table(
        "E14: balanced reads (3-shard ring, R=2, hot-skewed corpus)",
        ["phase", "docs", "seconds", "docs/s", "hot spread (per owner)"],
    )
    table.add_row(
        "primary-first replay", total_docs, pf_seconds,
        throughput(total_docs, pf_seconds),
        "/".join(str(pf_share[owner]) for owner in hot_owners),
    )
    table.add_row(
        "round-robin replay", total_docs, balanced_seconds,
        throughput(total_docs, balanced_seconds),
        "/".join(str(share) for share in owner_shares),
    )
    table.print()
    print(
        f"hot schema owners: {hot_owners}; compiles ring-wide: "
        f"{compiles_after_warm} after warm, {compiles_final} final; "
        f"policy: {ring_stats['read_policy']}, "
        f"handoffs: {ring_stats['handoffs']}"
    )

    # Correctness first: both replays reproduce the warm baseline.
    assert _verdicts(pf_results) == baseline
    assert _verdicts(balanced_results) == baseline

    # Compile-once: the warm corpus compiled each schema exactly once
    # ring-wide, and neither replay — balanced spreading included —
    # added a single compile.
    assert compiles_after_warm == len(batches), (
        f"warm ring compiled {compiles_after_warm} != {len(batches)} schemas"
    )
    assert compiles_final == compiles_after_warm, (
        f"replays added {compiles_final - compiles_after_warm} compile(s)"
    )

    # Primary-first pinned the hot schema to exactly one owner...
    assert sorted(pf_share.values(), reverse=True)[1:] == [0] * (SHARDS - 1), (
        f"primary-first spread the hot schema: {pf_share}"
    )
    # ...while the balanced replay put a real, bounded share on every
    # replica (and nothing on non-replicas).
    assert all(share > 0 for share in owner_shares), (
        f"an owner served nothing under round-robin: {balanced_share}"
    )
    assert max(owner_shares) / min(owner_shares) <= BALANCE_RATIO, (
        f"per-replica load ratio unbounded: {balanced_share}"
    )
    for path in shard_paths:
        if path not in hot_owners:
            assert balanced_share[path] == 0

    # The point of it all: spreading the hot schema's windows over two
    # server processes is real parallelism on multi-core hardware.
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert balanced_seconds < pf_seconds, (
            f"round-robin ({balanced_seconds:.3f}s) not faster than "
            f"primary-first ({pf_seconds:.3f}s) on {cores} cores"
        )
    else:  # pragma: no cover - single-core CI runners
        print(
            f"single core: balanced {balanced_seconds:.3f}s vs "
            f"primary-first {pf_seconds:.3f}s reported, not asserted"
        )
