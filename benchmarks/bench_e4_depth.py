"""E4 — Theorem 4's ``D`` axis and the Figure-7 depth-bound story.

On a PV-strong recursive DTD (Example 6's ``T2``) the recognizer's work
grows with the depth budget ``D``:

* the Figure-5 ECRecognizer creates one nested sub-recognizer per budget
  level (Section 4.3.1), so its time on a fixed input grows ~linearly in D;
* the chain-mode PVMachine implements the same bounded semantics;
* the merged (GSS) PVMachine needs **no** bound: PV-strong recursion
  becomes a cycle in the graph-structured stack, so its cost on ``b^n``
  content is flat in D and linear in n — the reproduction's algorithmic
  extension over the paper.

The table also re-measures Figure 7's termination claim: T1's pathological
input terminates at every budget.
"""

from __future__ import annotations


from repro.bench.harness import Table, fit_power_law, time_callable
from repro.core.machine import PVMachine
from repro.core.recognizer import ECRecognizer
from repro.dtd import catalog

DEPTHS = (4, 8, 16, 32, 64)
TOKENS = ["b"] * 12


def test_e4_depth_scaling(benchmark, t2_dtd):
    table = Table(
        "E4: wall time vs depth budget D (T2, content b^12)",
        ["D", "figure5 (s)", "chain machine (s)", "merged machine (s)"],
    )
    figure5_times = []
    for depth in DEPTHS:
        t_fig5 = time_callable(
            lambda d=depth: ECRecognizer.for_dtd(t2_dtd, "a", depth=d).accepts(
                TOKENS
            ),
            repeat=5,
        )
        t_chain = time_callable(
            lambda d=depth: PVMachine.for_dtd(t2_dtd, "a", depth=d).recognize(
                TOKENS
            ),
            repeat=5,
        )
        t_merged = time_callable(
            lambda: PVMachine.for_dtd(t2_dtd, "a").recognize(TOKENS),
            repeat=5,
        )
        figure5_times.append(t_fig5)
        table.add_row(depth, t_fig5, t_chain, t_merged)
    slope = fit_power_law(list(DEPTHS), figure5_times)
    table.add_row("fig5 slope vs D", slope, "", "")
    table.print()

    # Figure-5 work grows with D but stays polynomial (≈ linear per
    # Theorem 4; generous cap to absorb timing noise).
    assert slope < 2.0, slope

    # Figure 7: T1's pathological input terminates at every depth.
    t1 = catalog.example5_t1()
    for depth in DEPTHS:
        assert ECRecognizer.for_dtd(t1, "a", depth=depth).accepts(["b", "b"])

    benchmark(
        lambda: ECRecognizer.for_dtd(t2_dtd, "a", depth=32).accepts(TOKENS)
    )


def test_e4_merged_machine_linear_in_n_unbounded(benchmark, t2_dtd):
    """The GSS machine handles b^n exactly, with no depth bound, in ~O(n)."""
    sizes = (32, 64, 128, 256)
    table = Table(
        "E4b: merged machine on T2 content b^n (no depth bound)",
        ["n", "time (s)", "GSS nodes"],
    )
    times = []
    for n in sizes:
        tokens = ["b"] * n
        machine = PVMachine.for_dtd(t2_dtd, "a")
        assert machine.recognize(tokens)
        elapsed = time_callable(
            lambda t=tokens: PVMachine.for_dtd(t2_dtd, "a").recognize(t), repeat=3
        )
        times.append(elapsed)
        table.add_row(n, elapsed, machine.allocated_nodes)
    slope = fit_power_law(list(sizes), times)
    table.add_row("slope", slope, "")
    table.print()
    assert slope < 1.8, slope

    benchmark(lambda: PVMachine.for_dtd(t2_dtd, "a").recognize(["b"] * 128))
