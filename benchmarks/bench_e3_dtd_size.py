"""E3 — Theorem 4: scaling in the DTD size ``k``.

``O(kD·n)``: for fixed documents the per-token cost grows at most linearly
in ``k`` (total element occurrences across content models).  We sweep
random non-recursive DTDs of growing size, generate comparable documents
for each, and fit the exponent of checking time against ``k``.
"""

from __future__ import annotations


from repro.bench.harness import Table, fit_power_law, time_callable
from repro.bench.scenarios import degraded_document
from repro.core.pv import PVChecker
from repro.dtd.random_gen import RandomDTDConfig, random_dtd
from repro.xmlmodel.delta import delta_tokens

ELEMENT_COUNTS = (8, 16, 32, 64)


def test_e3_dtd_size_scaling(benchmark):
    table = Table(
        "E3: wall time vs DTD size k (random non-recursive DTDs, ~600-token documents)",
        ["m", "k", "tokens", "figure5 (s)", "machine (s)"],
    )
    ks = []
    figure5_times = []
    machine_times = []
    last_checker = None
    last_document = None
    for elements in ELEMENT_COUNTS:
        dtd = random_dtd(RandomDTDConfig(elements=elements, seed=1, fanout=4))
        document = degraded_document(dtd, 300, seed=2)
        figure5 = PVChecker(dtd, algorithm="figure5")
        machine = PVChecker(dtd, algorithm="machine")
        t_fig5 = time_callable(lambda: figure5.check_document(document), repeat=3)
        t_machine = time_callable(lambda: machine.check_document(document), repeat=3)
        ks.append(dtd.occurrence_count)
        figure5_times.append(t_fig5)
        machine_times.append(t_machine)
        table.add_row(
            elements,
            dtd.occurrence_count,
            len(delta_tokens(document.root)),
            t_fig5,
            t_machine,
        )
        last_checker, last_document = figure5, document
    slope = fit_power_law(ks, figure5_times)
    table.add_row("slope vs k", "", "", slope, fit_power_law(ks, machine_times))
    table.print()

    # At-most-linear growth in k (generous cap: the document shape also
    # shifts slightly between DTDs).
    assert slope < 1.8, slope

    assert last_checker is not None and last_document is not None
    benchmark(lambda: last_checker.check_document(last_document))
