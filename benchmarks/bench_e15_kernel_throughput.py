"""E15 — the table-driven kernel: ≥3× the exact machine, verdict-identical.

The kernel backend (:mod:`repro.core.kernel`) reruns the exact machine's
merged-GSS semantics over dense integer tables and bitmask state sets.
Being a constant-factor rewrite, its claim is a constant: on the corpora
the existing scaling benchmarks define — the E1 degraded ``manuscript``
size sweep and the E10 small-document editorial corpus — the pure-python
kernel must clear **3× the machine's wall clock in aggregate**, returning
the machine's verdict on every single document.

Measurement notes
-----------------
Shared-runner timing is noisy (the machine baseline alone can swing tens
of percent between back-to-back runs), so the two backends are timed
*interleaved* — alternating machine/kernel passes within each round and
keeping each backend's best round — and the bar is asserted on the
aggregate ratio across both corpora, where the large E1 documents
dominate.  Per-corpus ratios get a looser 2× floor as a regression guard.

When the optional native extension is installed the same bar applies (the
native build is strictly faster); the table reports which implementation
actually ran.  ``REPRO_BENCH_FAST=1`` shrinks both corpora for the CI
smoke job and relaxes the headline bar, because the small documents that
remain are exactly where the kernel's advantage is smallest.
"""

from __future__ import annotations

import math
import os
import random
from time import perf_counter

from repro.bench.harness import Table, throughput
from repro.core.kernel import IMPLEMENTATION
from repro.core.pv import PVChecker
from repro.bench.scenarios import degraded_document
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
#: The E1 sweep sizes (target node counts for ``degraded_document``).
SIZES = (100, 200, 400) if FAST else (100, 200, 400, 800, 1600)
#: The E10 corpus shape: many small editorial documents.
DOC_COUNT = 12 if FAST else 60
TARGET_NODES = 12 if FAST else 16
ROUNDS = 3 if FAST else 5
#: The aggregate wall-clock bar.  The full corpora are dominated by the
#: large E1 documents, where the dense tables pay off most; the FAST
#: corpora keep only the small documents, so the bar relaxes with them.
REQUIRED_RATIO = 1.8 if FAST else 3.0
PER_CORPUS_FLOOR = 1.5 if FAST else 2.0


def _interleaved_best(workloads: dict[str, object], rounds: int) -> dict[str, float]:
    """Best-of-*rounds* seconds per workload, alternating within each round.

    Interleaving means a slow patch on the box hits every backend of that
    round equally instead of biasing whichever happened to run then.
    """
    for fn in workloads.values():  # one untimed warmup apiece
        fn()
    best = {name: math.inf for name in workloads}
    for _ in range(rounds):
        for name, fn in workloads.items():
            started = perf_counter()
            fn()
            best[name] = min(best[name], perf_counter() - started)
    return best


def _e1_documents(dtd):
    return [degraded_document(dtd, size) for size in SIZES]


def _e10_documents(dtd):
    rng = random.Random(7)
    generator = DocumentGenerator(dtd, seed=7)
    documents = []
    for document in generator.documents(DOC_COUNT // 2, target_nodes=TARGET_NODES):
        documents.append(document)
        degraded, _count = degrade(document, rng, fraction=0.5)
        documents.append(degraded)
    return documents


def test_e15_kernel_throughput(benchmark, manuscript_dtd):
    machine = PVChecker(manuscript_dtd, algorithm="machine")
    kernel = PVChecker(manuscript_dtd, algorithm="kernel")

    corpora = {
        "E1 size sweep": _e1_documents(manuscript_dtd),
        "E10 editorial corpus": _e10_documents(manuscript_dtd),
    }

    # Verdict identity first, document by document: speed claims about a
    # backend that disagrees with the reference are meaningless.
    for documents in corpora.values():
        for document in documents:
            assert machine.is_potentially_valid(document) == (
                kernel.is_potentially_valid(document)
            )

    table = Table(
        f"E15: kernel vs machine wall time (manuscript DTD, {IMPLEMENTATION} kernel)",
        ["corpus", "docs", "machine (s)", "kernel (s)", "kernel docs/s", "ratio"],
    )
    machine_total = 0.0
    kernel_total = 0.0
    ratios: dict[str, float] = {}
    def run(checker, docs):
        for document in docs:
            checker.check_document(document)

    for corpus_name, documents in corpora.items():
        best = _interleaved_best(
            {
                "machine": lambda docs=tuple(documents): run(machine, docs),
                "kernel": lambda docs=tuple(documents): run(kernel, docs),
            },
            rounds=ROUNDS,
        )
        machine_total += best["machine"]
        kernel_total += best["kernel"]
        ratios[corpus_name] = best["machine"] / best["kernel"]
        table.add_row(
            corpus_name,
            len(documents),
            best["machine"],
            best["kernel"],
            throughput(len(documents), best["kernel"]),
            ratios[corpus_name],
        )
    aggregate = machine_total / kernel_total
    table.add_row("aggregate", sum(map(len, corpora.values())),
                  machine_total, kernel_total,
                  throughput(sum(map(len, corpora.values())), kernel_total),
                  aggregate)
    table.print()

    for corpus_name, ratio in ratios.items():
        assert ratio >= PER_CORPUS_FLOOR, (
            f"kernel only {ratio:.2f}x the machine on {corpus_name} "
            f"({IMPLEMENTATION} implementation)"
        )
    # The tentpole acceptance bar: the dense tables must be worth a
    # constant factor of at least 3 in aggregate.
    assert aggregate >= REQUIRED_RATIO, (
        f"kernel only {aggregate:.2f}x the machine in aggregate "
        f"(required {REQUIRED_RATIO}x, {IMPLEMENTATION} implementation)"
    )

    # Headline number: the kernel over the whole E10 corpus.
    e10 = corpora["E10 editorial corpus"]
    benchmark(lambda: [kernel.check_document(document) for document in e10])
