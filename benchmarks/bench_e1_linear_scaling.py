"""E1 — Theorem 4: checking time is linear in the document size ``n``.

The paper's claim: for a fixed DTD, ECRecognizer solves Problem ECPV in
``O(kD·n)``; solving Problem PV over the whole document stays linear in the
total token count.  We sweep document sizes on a realistic non-recursive
document-centric DTD (``manuscript``) and fit the scaling exponent for

* the Figure-5 ECRecognizer (the paper's algorithm),
* the exact PVMachine (our GSS extension),

expecting both near 1.0.  (The adversarial single-wide-node case where the
exact machine degrades is measured separately in E2's discussion.)
"""

from __future__ import annotations


from repro.bench.harness import Table, fit_power_law, time_callable
from repro.bench.scenarios import degraded_document
from repro.core.pv import PVChecker
from repro.xmlmodel.delta import delta_tokens

SIZES = (100, 200, 400, 800, 1600)


def _documents(dtd):
    return {size: degraded_document(dtd, size) for size in SIZES}


def test_e1_linear_scaling(benchmark, manuscript_dtd):
    documents = _documents(manuscript_dtd)
    checkers = {
        "figure5": PVChecker(manuscript_dtd, algorithm="figure5"),
        "machine": PVChecker(manuscript_dtd, algorithm="machine"),
    }
    table = Table(
        "E1: Problem PV wall time vs document size (manuscript DTD)",
        ["tokens", "figure5 (s)", "machine (s)"],
    )
    tokens_counts = []
    times: dict[str, list[float]] = {"figure5": [], "machine": []}
    for size in SIZES:
        document = documents[size]
        token_count = len(delta_tokens(document.root))
        tokens_counts.append(token_count)
        row = [token_count]
        for name, checker in checkers.items():
            assert checker.is_potentially_valid(document)
            elapsed = time_callable(
                lambda c=checker, d=document: c.check_document(d), repeat=3
            )
            times[name].append(elapsed)
            row.append(elapsed)
        table.add_row(*row)
    slopes = {
        name: fit_power_law(tokens_counts, series) for name, series in times.items()
    }
    table.add_row("slope", slopes["figure5"], slopes["machine"])
    table.print()

    # Theorem 4 shape: near-linear scaling for both recognizers.
    assert 0.6 <= slopes["figure5"] <= 1.5, slopes
    assert 0.6 <= slopes["machine"] <= 1.6, slopes

    # Headline number: the paper's algorithm on the largest document.
    biggest = documents[SIZES[-1]]
    benchmark(lambda: checkers["figure5"].check_document(biggest))
