"""E10 — amortized schema compilation: registry + batch vs per-document cold start.

The service-layer claim (ROADMAP north star, paper Section 4.4 cost
model): schema compilation (parse → analyze → ``DAG_T`` → machine tables)
is a one-time cost, so a checking service that caches the compiled
artifact and streams documents through it must beat one that recompiles
per document by a wide margin.  Three arms over the same corpus:

* **cold** — the naive service: every document re-parses the DTD text and
  recompiles the artifact (process-wide memoization cleared each time, so
  this is a true cold start);
* **warm ×1** — compile once into a :class:`SchemaRegistry`, then batch
  the corpus through :class:`BatchChecker` with one inline worker;
* **warm ×2** — same artifact fanned over a two-process pool (reported
  for the scaling shape; on a single-core runner the pool overhead can
  dominate, so no speedup is asserted for this arm).

Asserted: warm ×1 is at least 2× faster than cold, and every arm returns
identical verdicts.  ``REPRO_BENCH_FAST=1`` shrinks the corpus for the CI
smoke job.
"""

from __future__ import annotations

import os
import random

from repro.bench.harness import Table, checker_for, throughput, time_callable
from repro.core.pv import PVChecker
from repro.dtd.parser import parse_dtd
from repro.dtd.serialize import dtd_to_text
from repro.service.batch import BatchChecker
from repro.service.compiled import clear_compile_caches, compile_schema
from repro.service.registry import SchemaRegistry
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
#: Heavy-traffic shape: many small editorial documents (the paper's
#: per-keystroke editor checks are on documents of this size), where the
#: per-request compile cost of a naive service actually dominates.
DOC_COUNT = 12 if FAST else 60
TARGET_NODES = 12 if FAST else 16
REPEAT = 2 if FAST else 3


def _corpus(dtd) -> list[str]:
    """Valid and Theorem-2-degraded documents, serialized for transport."""
    rng = random.Random(7)
    generator = DocumentGenerator(dtd, seed=7)
    texts: list[str] = []
    for document in generator.documents(DOC_COUNT // 2, target_nodes=TARGET_NODES):
        texts.append(to_xml(document))
        degraded, _count = degrade(document, rng, fraction=0.5)
        texts.append(to_xml(degraded))
    return texts


def test_e10_batch_throughput(benchmark, manuscript_dtd):
    dtd_text = dtd_to_text(manuscript_dtd)
    root = manuscript_dtd.root
    texts = _corpus(manuscript_dtd)

    def cold_run() -> list[bool]:
        verdicts = []
        for text in texts:
            clear_compile_caches()
            schema = compile_schema(parse_dtd(dtd_text, root=root))
            checker = PVChecker.from_compiled(schema)
            verdicts.append(checker.check_document(parse_xml(text)).potentially_valid)
        return verdicts

    registry = SchemaRegistry()
    schema = registry.get(parse_dtd(dtd_text, root=root))
    warm_batch = BatchChecker(schema, workers=1)
    pool_batch = BatchChecker(schema, workers=2)

    def warm_run():
        return warm_batch.check_texts(texts)

    cold_seconds = time_callable(cold_run, repeat=REPEAT, warmup=1)
    warm_seconds = time_callable(warm_run, repeat=REPEAT, warmup=1)
    pool_result = pool_batch.check_texts(texts)

    table = Table(
        "E10: corpus checking throughput (manuscript DTD)",
        ["mode", "docs", "seconds", "docs/s", "speedup vs cold"],
    )
    table.add_row(
        "cold compile/doc", len(texts), cold_seconds,
        throughput(len(texts), cold_seconds), 1.0,
    )
    table.add_row(
        "warm registry x1", len(texts), warm_seconds,
        throughput(len(texts), warm_seconds), cold_seconds / warm_seconds,
    )
    table.add_row(
        "warm registry x2", len(texts), pool_result.elapsed,
        pool_result.documents_per_second, cold_seconds / pool_result.elapsed,
    )
    table.print()
    print(f"registry: {registry.stats}")

    # All three arms agree document by document.
    cold_verdicts = cold_run()
    warm_result = warm_run()
    assert [item.ok for item in warm_result.items] == cold_verdicts
    assert [item.ok for item in pool_result.items] == cold_verdicts

    # The tentpole acceptance bar: compiling once must amortize.  The cold
    # arm pays parse+analyze+DAG per document; warm pays it once per corpus.
    assert cold_seconds / warm_seconds >= 2.0, (
        f"warm batch only {cold_seconds / warm_seconds:.2f}x faster than "
        f"cold per-document compilation"
    )

    # Headline number: warm single-worker batch over the corpus, with the
    # checker sourced the same way the benchmarks' other checkers are.
    assert checker_for(manuscript_dtd).is_potentially_valid(
        parse_xml(texts[0])
    )
    benchmark(warm_run)
