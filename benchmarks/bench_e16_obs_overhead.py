"""E16 — observability overhead: the instrumented server within 5%.

The observability layer (:mod:`repro.obs`) instruments every request the
server handles: per-op counters, per-phase and per-backend latency
histograms, inflight gauges.  Its claim is that with tracing off this
costs nearly nothing — instrument sites hold pre-resolved metric
handles, so the steady-state price of a counted request is a few lock
acquires and integer adds.  This benchmark puts a number on "nearly":
the same corpora as E15 (the E1 degraded size sweep plus the E10
editorial corpus), streamed over ``check-batch`` through two identically
configured servers —

* **instrumented** — the default ``ValidationServer()``, full metrics;
* **stripped** — ``metrics=MetricsRegistry(enabled=False)``, which hands
  every instrument site a shared no-op object (same code path, dead
  instruments).

Both arms run interleaved, best-of-rounds (E15's measurement discipline:
shared-runner noise hits both arms of a round equally), and the bar is
``instrumented / stripped <= 1.05`` in aggregate.  Verdicts must agree
document-for-document, the instrumented scrape must actually have
counted the traffic, and the stripped scrape must be empty — a bench
that quietly measured two stripped servers would prove nothing.

``REPRO_BENCH_FAST=1`` shrinks the corpora for the CI smoke job and
relaxes the bar: with sub-millisecond rounds the socket jitter alone
exceeds 5%.
"""

from __future__ import annotations

import math
import os
import random
from time import perf_counter

from repro.bench.harness import Table, throughput
from repro.bench.scenarios import degraded_document
from repro.dtd.serialize import dtd_to_text
from repro.obs.metrics import MetricsRegistry, counter_value
from repro.server.client import ValidationClient
from repro.server.server import ServerThread, ValidationServer
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.serialize import to_xml

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
#: The E1 sweep sizes and E10 corpus shape, as in E15.
SIZES = (100, 200, 400) if FAST else (100, 200, 400, 800, 1600)
DOC_COUNT = 12 if FAST else 60
TARGET_NODES = 12 if FAST else 16
ROUNDS = 3 if FAST else 5
#: The acceptance bar: instrumented wall clock over stripped wall clock.
#: The FAST corpora finish in fractions of a millisecond per document,
#: where scheduler jitter swamps the instruments' few lock acquires.
MAX_OVERHEAD = 1.25 if FAST else 1.05


def _interleaved_best(workloads: dict[str, object], rounds: int) -> dict[str, float]:
    """Best-of-*rounds* seconds per workload, alternating within each round."""
    for fn in workloads.values():  # one untimed warmup apiece
        fn()
    best = {name: math.inf for name in workloads}
    for _ in range(rounds):
        for name, fn in workloads.items():
            started = perf_counter()
            fn()
            best[name] = min(best[name], perf_counter() - started)
    return best


def _corpus(dtd) -> list[str]:
    """The E15 corpora — E1 size sweep plus E10 editorial mix — as text."""
    texts = [to_xml(degraded_document(dtd, size)) for size in SIZES]
    rng = random.Random(7)
    generator = DocumentGenerator(dtd, seed=7)
    for document in generator.documents(DOC_COUNT // 2, target_nodes=TARGET_NODES):
        texts.append(to_xml(document))
        degraded, _count = degrade(document, rng, fraction=0.5)
        texts.append(to_xml(degraded))
    return texts


def test_e16_obs_overhead(benchmark, manuscript_dtd, tmp_path):
    dtd_text = dtd_to_text(manuscript_dtd)
    root = manuscript_dtd.root
    texts = _corpus(manuscript_dtd)

    stripped_server = ValidationServer(metrics=MetricsRegistry(enabled=False))
    with ServerThread(
        unix_path=str(tmp_path / "e16-on.sock")
    ) as instrumented, ServerThread(
        stripped_server, unix_path=str(tmp_path / "e16-off.sock")
    ) as stripped:
        with ValidationClient.connect_unix(
            instrumented.unix_path
        ) as on_client, ValidationClient.connect_unix(
            stripped.unix_path
        ) as off_client:

            def drive(client) -> list[bool]:
                replies, trailer = client.check_batch(dtd_text, texts, root=root)
                assert trailer["errors"] == 0
                return [reply["potentially_valid"] for reply in replies]

            # Verdict identity first: an instrument that changed answers
            # would make the timing comparison meaningless.
            assert drive(on_client) == drive(off_client)

            best = _interleaved_best(
                {
                    "instrumented": lambda: drive(on_client),
                    "stripped": lambda: drive(off_client),
                },
                rounds=ROUNDS,
            )

            on_snapshot = on_client.metrics()["metrics"]
            off_snapshot = off_client.metrics()["metrics"]
            benchmark(lambda: drive(on_client))

    # The instruments were live on one arm and dead on the other.
    assert counter_value(on_snapshot, "repro_batch_items_total") >= len(texts)
    assert counter_value(on_snapshot, "repro_dispatch_total") >= len(texts)
    assert off_snapshot == {"counters": [], "gauges": [], "histograms": []}

    overhead = best["instrumented"] / best["stripped"]
    table = Table(
        "E16: observability overhead (check-batch, manuscript DTD)",
        ["arm", "docs", "seconds", "docs/s", "vs stripped"],
    )
    table.add_row("stripped", len(texts), best["stripped"],
                  throughput(len(texts), best["stripped"]), 1.0)
    table.add_row("instrumented", len(texts), best["instrumented"],
                  throughput(len(texts), best["instrumented"]), overhead)
    table.print()

    assert overhead <= MAX_OVERHEAD, (
        f"instrumented server is {overhead:.3f}x the stripped one "
        f"(allowed {MAX_OVERHEAD}x)"
    )
