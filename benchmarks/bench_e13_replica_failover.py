"""E13 — replica failover: kill a shard, lose nothing; join a shard, warm.

E12 showed the ring scales throughput while compiling each schema once.
E13 holds the **availability** layer to the same standard over real
``python -m repro serve`` subprocesses:

* **replica fan-out** — a 3-shard ring at ``replica_count=2`` warms an
  8-schema corpus; every compiled artifact must end up on both of its
  owners (one compile + one hand-off each, never two compiles);
* **kill one shard mid-corpus** — the primary owner of a measured
  schema is SIGKILLed halfway through a corpus replay.  Required: **zero
  failed checks** (every document still gets its verdict, identical to
  the baseline) and **zero recompiles** (the surviving replicas answer
  from fanned-out artifacts; their registry miss counters do not move);
* **add one shard** — a fourth server joins through the
  :class:`~repro.server.coordinator.RingCoordinator`, which prefetches
  the joiner's hottest owned fingerprints *before* publishing the join.
  Required: the joiner serves its first routed request from a
  **prefetched** artifact — 0 compiles on join (its miss counter stays
  0 through traffic).

``REPRO_BENCH_FAST=1`` shrinks the corpus for the CI smoke job.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.bench.harness import Table, throughput
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.dtd.serialize import dtd_to_text
from repro.server.client import ValidationClient
from repro.server.coordinator import RingCoordinator
from repro.server.ring import ShardedClient, ShardRing, member_label
from repro.service.compiled import schema_fingerprint
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.serialize import to_xml

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
DOCS_PER_SCHEMA = 6 if FAST else 16
TARGET_NODES = 12
SHARDS = 3
REPLICAS = 2

SCHEMA_BUILDERS = (
    catalog.paper_figure1,
    catalog.example5_t1,
    catalog.example6_t2,
    catalog.tei_lite,
    catalog.xhtml_basic,
    catalog.docbook_article,
    catalog.play,
    catalog.dictionary,
)


def _corpus() -> list[tuple[str, str | None, list[str]]]:
    batches = []
    for index, builder in enumerate(SCHEMA_BUILDERS):
        dtd = builder()
        rng = random.Random(300 + index)
        generator = DocumentGenerator(dtd, seed=300 + index)
        texts: list[str] = []
        for document in generator.documents(
            DOCS_PER_SCHEMA // 2, target_nodes=TARGET_NODES
        ):
            texts.append(to_xml(document))
            degraded, _count = degrade(document, rng, fraction=0.5)
            texts.append(to_xml(degraded))
        batches.append((dtd_to_text(dtd), dtd.root, texts))
    return batches


def _spawn_server(unix_path: str) -> subprocess.Popen:
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--no-tcp", "--unix", unix_path],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited with {process.returncode} before binding"
            )
        if os.path.exists(unix_path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(unix_path)
                return process
            except OSError:
                pass
            finally:
                probe.close()
        time.sleep(0.02)
    process.terminate()
    raise RuntimeError(f"server on {unix_path} did not come up in time")


def _stop(processes: list[subprocess.Popen]) -> None:
    for process in processes:
        if process.poll() is None:
            process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            process.kill()
            process.wait(timeout=10)


def _registry_misses(unix_path: str) -> int:
    with ValidationClient.connect_unix(unix_path) as client:
        return client.stats()["registry"]["misses"]


def _pick_paths(tmp_path, fingerprints) -> tuple[list[str], str]:
    """Shard paths that spread the corpus, plus a joiner that will own
    at least one schema — salted deterministically so the measured
    scenario (a kill on an owner; a join that takes traffic) always
    exists regardless of the random tmp directory."""
    for salt in range(128):
        paths = [
            str(tmp_path / f"shard-{index}-{salt}.sock")
            for index in range(SHARDS)
        ]
        ring = ShardRing(paths, replica_count=REPLICAS)
        owners = {member_label(ring.owner(fp)) for fp in fingerprints}
        if len(owners) <= 1:
            continue
        for joiner_salt in range(128):
            joiner = str(tmp_path / f"joiner-{joiner_salt}.sock")
            grown = ShardRing([*paths, joiner], replica_count=REPLICAS)
            if any(
                member_label(grown.owner(fp)) == joiner for fp in fingerprints
            ):
                return paths, joiner
    raise AssertionError("no salt produced a usable topology")


def test_e13_replica_failover(benchmark, tmp_path):
    batches = _corpus()
    total_docs = sum(len(docs) for _dtd, _root, docs in batches)
    fingerprints = [
        schema_fingerprint(parse_dtd(dtd, root=root))
        for dtd, root, _docs in batches
    ]
    shard_paths, joiner_path = _pick_paths(tmp_path, fingerprints)
    processes = [_spawn_server(path) for path in shard_paths]
    coordinator = RingCoordinator(
        shard_paths, replica_count=REPLICAS, prefetch=len(batches)
    )
    try:
        coordinator.publish()
        with ShardedClient(shard_paths, replica_count=REPLICAS) as ring:
            # -- phase 1: warm the ring (one compile per schema, fan-out) -----
            warm_started = time.perf_counter()
            baseline: list[bool] = []
            for dtd, root, docs in batches:
                replies, _trailer = ring.check_batch(dtd, docs, root=root)
                baseline.extend(r["potentially_valid"] for r in replies)
            warm_seconds = time.perf_counter() - warm_started
            compiles_after_warm = sum(
                _registry_misses(path) for path in shard_paths
            )
            benchmark(
                lambda: ring.check(
                    batches[0][0], batches[0][2][0], root=batches[0][1]
                )
            )

            # -- phase 2: SIGKILL the primary of a measured schema -----------
            victim = member_label(ring.ring.owner(fingerprints[0]))
            victim_index = shard_paths.index(victim)
            survivors = [
                path for path in shard_paths if path != victim
            ]
            survivor_misses_before = {
                path: _registry_misses(path) for path in survivors
            }
            kill_at = len(batches) // 2
            failed_checks = 0
            replay: list[bool] = []
            replay_started = time.perf_counter()
            for index, (dtd, root, docs) in enumerate(batches):
                if index == kill_at:
                    processes[victim_index].send_signal(signal.SIGKILL)
                    processes[victim_index].wait(timeout=10)
                    coordinator.probe_once()
                    coordinator.probe_once()  # down_after probes -> epoch bump
                for doc in docs:
                    try:
                        reply = ring.check(dtd, doc, root=root)
                    except Exception:  # noqa: BLE001 - counted, not raised
                        failed_checks += 1
                        replay.append(None)  # type: ignore[arg-type]
                        continue
                    replay.append(reply["potentially_valid"])
            replay_seconds = time.perf_counter() - replay_started
            survivor_misses_after = {
                path: _registry_misses(path) for path in survivors
            }
            recompiles = sum(
                survivor_misses_after[path] - survivor_misses_before[path]
                for path in survivors
            )

            # -- phase 3: join a prefetched shard ----------------------------
            processes.append(_spawn_server(joiner_path))
            prefetched = coordinator.add_member(joiner_path)
            joiner_misses_at_join = _registry_misses(joiner_path)
            join_verdicts: list[bool] = []
            for dtd, root, docs in batches:
                reply = ring.check(dtd, docs[0], root=root)
                join_verdicts.append(reply["potentially_valid"])
            joiner_misses_after_traffic = _registry_misses(joiner_path)
            joiner_requests = 0
            with ValidationClient.connect_unix(joiner_path) as client:
                joiner_requests = client.stats()["server"]["requests"]
            ring_stats = ring.ring_stats
    finally:
        coordinator.stop()
        _stop(processes)

    table = Table(
        "E13: replica failover (3-shard ring, R=2, subprocess servers)",
        ["phase", "docs", "seconds", "docs/s", "failed checks", "recompiles"],
    )
    table.add_row(
        "warm (cold ring)", total_docs, warm_seconds,
        throughput(total_docs, warm_seconds), 0, compiles_after_warm,
    )
    table.add_row(
        "replay + SIGKILL owner", total_docs, replay_seconds,
        throughput(total_docs, replay_seconds), failed_checks, recompiles,
    )
    table.print()
    print(f"handoffs: {ring_stats['handoffs']} "
          f"({ring_stats['handoff_bytes']} bytes), "
          f"failovers: {ring_stats['failovers']}, "
          f"epoch: {ring_stats['epoch']}")
    print(f"join: prefetched {prefetched} artifact(s); joiner compiles "
          f"at join {joiner_misses_at_join}, after traffic "
          f"{joiner_misses_after_traffic} (requests served: "
          f"{joiner_requests})")

    # Phase 1: one compile per schema ring-wide, despite R=2 owners each.
    assert compiles_after_warm == len(batches), (
        f"warm ring compiled {compiles_after_warm} != {len(batches)} schemas"
    )

    # Phase 2: the kill lost nothing — every check answered, identically,
    # and the survivors recompiled nothing (their replicas were warm).
    assert failed_checks == 0
    assert replay == baseline
    assert recompiles == 0, (
        f"killing {victim} caused {recompiles} recompile(s) on survivors"
    )
    # Recovery took one of two documented paths (timing decides which):
    # the client tripped on the dead socket and failed over, or the
    # coordinator's epoch bump re-resolved placement first.
    assert ring_stats["failovers"] >= 1 or ring_stats["epoch_refreshes"] >= 1

    # Phase 3: the joiner took traffic without ever compiling — its hot
    # set arrived by prefetch before the join was published.
    assert prefetched >= 1
    assert joiner_misses_at_join == 0
    assert joiner_misses_after_traffic == 0, (
        "the joining shard compiled despite prefetch"
    )
    assert all(join_verdicts[i] == baseline[sum(
        len(docs) for _d, _r, docs in batches[:i]
    )] for i in range(len(batches)))
    assert joiner_requests >= 1, (
        "the joiner never served a request — placement salt failed"
    )
