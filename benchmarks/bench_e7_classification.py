"""E7 — Definitions 6-8: DTD classification cost and the catalog's class mix.

Classification (recursive / PV-weak / PV-strong, plus usability and the
reachability lookup table) is a pre-processing step the paper assumes
cheap: reading the DTD is O(k).  We confirm near-linear scaling of the full
analysis in ``k`` over random DTDs, and report the classification of every
catalog DTD — reproducing the paper's qualitative observations (XHTML-like
DTDs are PV-weak recursive; the running examples T1/T2 are PV-strong).
"""

from __future__ import annotations


from repro.bench.harness import Table, fit_power_law, time_callable
from repro.core.classify import classify_dtd
from repro.dtd import catalog
from repro.dtd.analysis import analyze
from repro.dtd.random_gen import RandomDTDConfig, random_dtd

ELEMENT_COUNTS = (8, 16, 32, 64, 128)


def test_e7_classification_cost(benchmark):
    table = Table(
        "E7a: full DTD analysis wall time vs k (random weak-recursive DTDs)",
        ["m", "k", "analysis (s)"],
    )
    ks = []
    times = []
    for elements in ELEMENT_COUNTS:
        dtd = random_dtd(
            RandomDTDConfig(elements=elements, seed=2, recursion="weak")
        )
        elapsed = time_callable(
            lambda d=dtd: analyze.__wrapped__(d), repeat=3  # bypass the cache
        )
        ks.append(dtd.occurrence_count)
        times.append(elapsed)
        table.add_row(elements, dtd.occurrence_count, elapsed)
    slope = fit_power_law(ks, times)
    table.add_row("slope", "", slope)
    table.print()
    # Near-linear-in-k preprocessing (closure construction adds a small
    # superlinear term; cap generously).
    assert slope < 2.2, slope

    table2 = Table(
        "E7b: catalog classification (paper Section 4.3 observations)",
        ["DTD", "class", "m", "k", "recursive", "strong"],
    )
    for name in catalog.catalog_names():
        report = classify_dtd(catalog.load(name))
        table2.add_row(
            name,
            report.dtd_class.value,
            report.element_count,
            report.occurrence_count,
            len(report.recursive_elements),
            len(report.strong_recursive_elements),
        )
    table2.print()

    big = random_dtd(RandomDTDConfig(elements=128, seed=2, recursion="weak"))
    benchmark(lambda: analyze.__wrapped__(big))
