"""E17 — chaos: kill the coordinator AND a shard mid-corpus, lose nothing.

E14 proved balanced reads; E13 proved replica failover.  Both still
assumed a healthy control plane: one ``RingCoordinator`` process owning
health probes and epoch publication, and ``least-inflight`` balancing on
client-local counters.  E17 holds the gossip refactor to the standard
that motivated it — the ring must not care who dies:

* **coordinator SIGKILLed mid-corpus** — checks keep flowing and every
  shard keeps answering with one converged epoch, because membership
  truth lives in the shards' own gossip, not in the dead process;
* **shard SIGKILLed mid-corpus** — the survivors' gossip agents
  suspect, confirm, and mint a new epoch that drops the victim, the
  client routes around it, and **zero checks are lost**: every replay
  reproduces the warm baseline verdicts exactly;
* **bounded skew on server truth** — under ``least-inflight`` fed by
  server-reported ``inflight``/``queue_depth`` stamps, the hot schema's
  windows spread over its owners within a max/min ratio of
  ``BALANCE_RATIO`` (a client-counter-only control run — the pre-gossip
  behavior — is measured alongside for contrast).

The ring is three real ``python -m repro serve`` subprocesses, each
running its own gossip agent (``--gossip on``) seeded with the other
two; the coordinator is a real subprocess too, so SIGKILL means SIGKILL.
``REPRO_BENCH_FAST=1`` shrinks the corpus for the CI smoke job.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.bench.harness import Table, throughput
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.dtd.serialize import dtd_to_text
from repro.server.client import ValidationClient
from repro.server.ring import ShardedClient, member_label
from repro.service.compiled import schema_fingerprint
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.serialize import to_xml

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
HOT_DOCS = 64 if FAST else 96
COLD_DOCS = 3 if FAST else 6
#: Large enough that per-document verdict work dominates wire overhead.
TARGET_NODES = 160
SHARDS = 3
REPLICAS = 2
#: Max/min bound on the per-owner share of the hot schema's documents
#: (the E14 bound): scheduling is not an even split, but every live
#: owner must take a real share.
BALANCE_RATIO = 4.0
#: Fast gossip so suspect -> down -> mint fits a CI-sized timeout.
GOSSIP_INTERVAL = 0.2
CONVERGE_TIMEOUT = 30.0

HOT_BUILDER = catalog.paper_figure1
COLD_BUILDERS = (catalog.example5_t1, catalog.play, catalog.dictionary)

#: The coordinator runs as a real process so SIGKILL is honest.  It
#: publishes the initial R=2 view (superseding the self-only views the
#: shards' gossip agents mint at boot) and then just probes — exactly
#: the classic control plane the tentpole makes optional.
_COORDINATOR_DRIVER = """\
import sys
import time

from repro.server.coordinator import RingCoordinator

coordinator = RingCoordinator(
    sys.argv[1:],
    replica_count={replicas},
    read_policy="least-inflight",
    probe_interval=0.5,
)
coordinator.start()
print("published", flush=True)
while True:
    time.sleep(60)
"""


def _documents(dtd, seed: int, count: int) -> list[str]:
    generator = DocumentGenerator(dtd, seed=seed)
    return [
        to_xml(document)
        for document in generator.documents(count, target_nodes=TARGET_NODES)
    ]


def _corpus() -> list[tuple[str, str | None, list[str]]]:
    batches = []
    hot = HOT_BUILDER()
    batches.append((dtd_to_text(hot), hot.root, _documents(hot, 1700, HOT_DOCS)))
    for index, builder in enumerate(COLD_BUILDERS):
        dtd = builder()
        batches.append(
            (dtd_to_text(dtd), dtd.root,
             _documents(dtd, 1750 + index, COLD_DOCS))
        )
    return batches


def _subprocess_env() -> dict[str, str]:
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_shard(unix_path: str, seeds: list[str]) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "serve", "--no-tcp",
        "--unix", unix_path,
        "--gossip", "on", "--gossip-interval", str(GOSSIP_INTERVAL),
    ]
    if seeds:
        command += ["--gossip-seed", ",".join(seeds)]
    process = subprocess.Popen(
        command,
        env=_subprocess_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"shard exited with {process.returncode} before binding"
            )
        if os.path.exists(unix_path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(unix_path)
                return process
            except OSError:
                pass
            finally:
                probe.close()
        time.sleep(0.02)
    process.terminate()
    raise RuntimeError(f"shard on {unix_path} did not come up in time")


def _spawn_coordinator(tmp_path, shard_paths: list[str]) -> subprocess.Popen:
    driver = tmp_path / "coordinator.py"
    driver.write_text(_COORDINATOR_DRIVER.format(replicas=REPLICAS))
    process = subprocess.Popen(
        [sys.executable, str(driver), *shard_paths],
        env=_subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    assert process.stdout is not None
    line = process.stdout.readline()
    if "published" not in line:
        process.kill()
        raise RuntimeError(f"coordinator never published: {line!r}")
    return process


def _stop(processes: list[subprocess.Popen]) -> None:
    for process in processes:
        if process.poll() is None:
            process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            process.kill()
            process.wait(timeout=10)


def _health(unix_path: str) -> dict:
    with ValidationClient.connect_unix(unix_path) as client:
        return client.health()


def _await_converged(
    paths: list[str], expect_members: list[str],
    timeout: float = CONVERGE_TIMEOUT,
) -> int:
    """Poll *paths* until every one answers ``health`` with the same
    epoch over exactly *expect_members*; returns the converged epoch."""
    expected = tuple(sorted(expect_members))
    deadline = time.monotonic() + timeout
    seen: dict[str, tuple | None] = {}
    while time.monotonic() < deadline:
        seen = {}
        for path in paths:
            try:
                reply = _health(path)
            except OSError:
                seen[path] = None
                continue
            seen[path] = (
                reply.get("epoch"),
                tuple(sorted(reply.get("members") or ())),
            )
        views = set(seen.values())
        if len(views) == 1:
            view = next(iter(views))
            if view is not None and view[0] is not None and view[1] == expected:
                return view[0]
        time.sleep(0.1)
    raise AssertionError(f"ring never converged on {expected}: {seen}")


def _hot_counts(shard_paths: list[str], fingerprint: str) -> dict[str, int]:
    """Per-shard item count served for *fingerprint* (from `hot` stats)."""
    counts: dict[str, int] = {}
    for path in shard_paths:
        with ValidationClient.connect_unix(path) as client:
            stats = client.stats()
        counts[path] = dict(
            (fp, count) for fp, count in stats.get("hot") or []
        ).get(fingerprint, 0)
    return counts


def _verdicts(results) -> list[bool]:
    flat: list[bool] = []
    for replies, _trailer in results:
        assert replies is not None
        flat.extend(reply["potentially_valid"] for reply in replies)
    return flat


def _batch_verdicts(replies) -> list[bool]:
    return [reply["potentially_valid"] for reply in replies]


def _ratio(share: dict[str, int], owners: list[str]) -> float:
    shares = [share[owner] for owner in owners]
    return max(shares) / min(shares) if min(shares) else float("inf")


def test_e17_chaos(benchmark, tmp_path):
    batches = _corpus()
    corpus = [(dtd, docs, root) for dtd, root, docs in batches]
    hot_dtd, hot_root, hot_docs = batches[0]
    half = len(hot_docs) // 2
    hot_fingerprint = schema_fingerprint(parse_dtd(hot_dtd, root=hot_root))
    shard_paths = [str(tmp_path / f"shard-{i}.sock") for i in range(SHARDS)]
    processes = {
        path: _spawn_shard(path, [p for p in shard_paths if p != path])
        for path in shard_paths
    }
    coordinator = _spawn_coordinator(tmp_path, shard_paths)
    table = Table(
        "E17: chaos (3-shard gossip ring, R=2, least-inflight)",
        ["phase", "docs", "seconds", "docs/s", "notes"],
    )
    try:
        epoch_initial = _await_converged(shard_paths, shard_paths)
        with ShardedClient(
            shard_paths, replica_count=REPLICAS, read_policy="least-inflight"
        ) as ring:
            hot_owners = [
                member_label(m) for m in ring.ring.owners(hot_fingerprint)
            ]
            victim = hot_owners[-1]
            survivors = [p for p in shard_paths if p != victim]

            # -- warm: compile once ring-wide, fix the baseline verdicts
            baseline_results = ring.check_corpus(corpus)
            baseline = _verdicts(baseline_results)
            hot_expected = _batch_verdicts(baseline_results[0][0])

            # -- phase 1: hot replay balanced on server-reported truth
            before = _hot_counts(shard_paths, hot_fingerprint)
            started = time.perf_counter()
            replies, _trailer = ring.check_batch(
                hot_dtd, hot_docs, root=hot_root
            )
            truth_seconds = time.perf_counter() - started
            truth_verdicts = _batch_verdicts(replies)
            fresh_reports = [
                owner for owner in hot_owners
                if ring.router.reported_load(owner) is not None
            ]
            after_truth = _hot_counts(shard_paths, hot_fingerprint)
            truth_share = {
                path: after_truth[path] - before[path] for path in shard_paths
            }

            # -- phase 2: same replay on client-local counters only (the
            # pre-gossip behavior), as the control
            ring.router.prefer_reported = False
            started = time.perf_counter()
            replies, _trailer = ring.check_batch(
                hot_dtd, hot_docs, root=hot_root
            )
            control_seconds = time.perf_counter() - started
            control_verdicts = _batch_verdicts(replies)
            ring.router.prefer_reported = True
            after_control = _hot_counts(shard_paths, hot_fingerprint)
            control_share = {
                path: after_control[path] - after_truth[path]
                for path in shard_paths
            }

            # -- phase 3: SIGKILL the coordinator mid-corpus
            started = time.perf_counter()
            first, _trailer = ring.check_batch(
                hot_dtd, hot_docs[:half], root=hot_root
            )
            coordinator.kill()
            coordinator.wait(timeout=10)
            second, _trailer = ring.check_batch(
                hot_dtd, hot_docs[half:], root=hot_root
            )
            coordless_results = ring.check_corpus(corpus)
            coordless_seconds = time.perf_counter() - started
            coordless_verdicts = (
                _batch_verdicts(first) + _batch_verdicts(second)
            )
            epoch_coordless = _await_converged(shard_paths, shard_paths)

            # -- phase 4: SIGKILL a hot-schema owner mid-corpus
            started = time.perf_counter()
            first, _trailer = ring.check_batch(
                hot_dtd, hot_docs[:half], root=hot_root
            )
            processes[victim].kill()
            processes[victim].wait(timeout=10)
            second, _trailer = ring.check_batch(
                hot_dtd, hot_docs[half:], root=hot_root
            )
            chaos_results = ring.check_corpus(corpus)
            chaos_seconds = time.perf_counter() - started
            chaos_verdicts = _batch_verdicts(first) + _batch_verdicts(second)
            epoch_final = _await_converged(survivors, survivors)
            down_after_chaos = ring.ring_stats["down"]

            benchmark(
                lambda: ring.check(hot_dtd, hot_docs[0], root=hot_root)
            )
    finally:
        _stop([coordinator, *processes.values()])

    total_docs = sum(len(docs) for _dtd, _root, docs in batches)
    chaos_docs = len(hot_docs) + total_docs
    table.add_row(
        "server-truth replay", len(hot_docs), truth_seconds,
        throughput(len(hot_docs), truth_seconds),
        "hot share " + "/".join(
            str(truth_share[owner]) for owner in hot_owners
        ),
    )
    table.add_row(
        "client-counter control", len(hot_docs), control_seconds,
        throughput(len(hot_docs), control_seconds),
        "hot share " + "/".join(
            str(control_share[owner]) for owner in hot_owners
        ),
    )
    table.add_row(
        "coordinator SIGKILL", chaos_docs, coordless_seconds,
        throughput(chaos_docs, coordless_seconds),
        f"epoch {epoch_coordless}, all shards",
    )
    table.add_row(
        "owner SIGKILL", chaos_docs, chaos_seconds,
        throughput(chaos_docs, chaos_seconds),
        f"epoch {epoch_final}, {len(survivors)} survivors",
    )
    table.print()
    print(
        f"hot owners: {hot_owners}; victim: {victim}; epochs: "
        f"{epoch_initial} initial -> {epoch_coordless} coordinator-less -> "
        f"{epoch_final} after shard death; skew "
        f"{_ratio(truth_share, hot_owners):.2f} server-truth vs "
        f"{_ratio(control_share, hot_owners):.2f} control; "
        f"client marked down: {down_after_chaos}"
    )

    # Zero lost checks: every replay — balanced, coordinator-less, and
    # with an owner dying mid-batch — reproduces the warm baseline.
    assert truth_verdicts == hot_expected
    assert control_verdicts == hot_expected
    assert coordless_verdicts == hot_expected
    assert _verdicts(coordless_results) == baseline
    assert chaos_verdicts == hot_expected
    assert _verdicts(chaos_results) == baseline

    # The server-truth balancer had real reports to act on (otherwise
    # phase 2 is not a control), and it spread the hot schema's windows
    # over every owner within the E14 bound, touching no non-owner.
    assert fresh_reports, "no server-reported load reached the router"
    assert all(truth_share[owner] > 0 for owner in hot_owners), (
        f"an owner served nothing under server truth: {truth_share}"
    )
    assert _ratio(truth_share, hot_owners) <= BALANCE_RATIO, (
        f"per-replica skew unbounded on server truth: {truth_share}"
    )
    for path in shard_paths:
        if path not in hot_owners:
            assert truth_share[path] == 0

    # Killing the coordinator changed nothing: the survivors agree on
    # one epoch (gossip owns membership) and it did not regress.
    assert epoch_coordless >= epoch_initial

    # Killing a shard was *detected by the shards themselves*: the
    # survivors minted a strictly newer epoch whose view excludes the
    # victim (asserted inside _await_converged), and the client routed
    # around the death.
    assert epoch_final > epoch_coordless
    assert victim in down_after_chaos
