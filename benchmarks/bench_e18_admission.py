"""E18 — coarse admission: same verdicts, fewer full checks, more docs/s.

The coarse-to-fine admission stage (:mod:`repro.core.coarse`) claims to
be free correctness-wise and positive throughput-wise on realistic
mixed traffic: a skewed corpus (mostly corrupted documents, the shape
of a validation service sitting in front of a careless producer) should
see a healthy share of its rejects decided by the constant per-node
coarse pass, never paying for a full backend.

Four bars, asserted on the same corpus:

1. **Equivalence** — document by document, a batch run with
   ``admission="on"`` returns exactly the verdicts of the classic
   ``admission="off"`` run (and reports zero audit mismatches).  Speed
   claims about a filter that changes answers are meaningless.
2. **Escalation rate** — at least **30%** of the corrupted documents
   are short-circuited by the coarse pass (``BatchItem.coarse``).
3. **Throughput** — the admission-on verdict stage clears **1.2×** the
   classic verdict stage on the batch surface's default backend (the
   exact ``machine``), single core, interleaved best-of-rounds (the
   E15 measurement discipline).
4. **No regression on the kernel tier** — against the dense-table
   ``kernel``, the pure-python coarse pass costs roughly what it
   saves; the bar is only that admission stays near-free (≥ 0.85×),
   not that it wins.

Measurement notes
-----------------
The timed region is the *verdict stage* over parsed documents.  XML
parsing costs the two modes identically and, on this corpus, runs ~7×
the kernel's entire verdict time — timing it would bury the effect
under a constant.  (The end-to-end `BatchChecker` path, parse
included, is exercised untimed by the equivalence bar; the ring
client's ``coarse_filter`` additionally skips the wire for definite
documents, which no local measurement captures.)

``REPRO_BENCH_FAST=1`` shrinks the corpus for the CI smoke job and
relaxes the throughput bar (small corpora are noise-dominated); the
equivalence and escalation bars never relax.
"""

from __future__ import annotations

import math
import os
import sys
from pathlib import Path
from time import perf_counter

# The corpus generators live with the tests they were built for.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))

import corpusgen  # noqa: E402
from repro.bench.harness import Table, throughput  # noqa: E402
from repro.core.coarse import CoarseChecker  # noqa: E402
from repro.core.pv import PVChecker  # noqa: E402
from repro.service.batch import BatchChecker  # noqa: E402
from repro.service.registry import DEFAULT_REGISTRY  # noqa: E402
from repro.xmlmodel.parser import parse_xml  # noqa: E402
from repro.xmlmodel.serialize import to_xml  # noqa: E402

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
SEED = int(os.environ.get("REPRO_FUZZ_SEED", "2006"))
#: Documents per shape preset; the full corpus is three shapes' worth.
DOCS_PER_SHAPE = 20 if FAST else 80
#: The skew: most of the corpus is corrupted, one mutation per document.
CORRUPT_FRACTION = 0.85
ROUNDS = 3 if FAST else 5
#: The tentpole throughput bar (single core, vs the machine tier).
REQUIRED_RATIO = 1.1 if FAST else 1.2
#: The kernel tier only has to stay near-free, not win.  Re-measured
#: after the parse-fusion work (E19): best-of-5 interleaved runs sit at
#: 0.90-0.96x on this corpus, so the floor holds a ~0.05 noise margin.
KERNEL_FLOOR = 0.8 if FAST else 0.85
#: The escalation bar: the coarse pass must decide at least this share
#: of the corrupted documents without a full backend.  Never relaxed.
REQUIRED_SHORT_CIRCUIT = 0.3


def _interleaved_best(workloads: dict[str, object], rounds: int) -> dict[str, float]:
    """Best-of-*rounds* seconds per workload, alternating within rounds."""
    for fn in workloads.values():  # one untimed warmup apiece
        fn()
    best = {name: math.inf for name in workloads}
    for _ in range(rounds):
        for name, fn in workloads.items():
            started = perf_counter()
            fn()
            best[name] = min(best[name], perf_counter() - started)
    return best


def _skewed_corpus(dtd) -> list[tuple[str, str]]:
    """``(text, provenance)`` across all three shape presets."""
    corpus: list[tuple[str, str]] = []
    for offset, shape in enumerate(sorted(corpusgen.SHAPES)):
        for document, provenance in corpusgen.mixed_corpus(
            dtd,
            DOCS_PER_SHAPE,
            seed=SEED + offset,
            corrupt_fraction=CORRUPT_FRACTION,
            shape=shape,
        ):
            corpus.append((to_xml(document), provenance))
    return corpus


def test_e18_admission_pipeline(benchmark, manuscript_dtd):
    schema = DEFAULT_REGISTRY.get(manuscript_dtd)
    corpus = _skewed_corpus(manuscript_dtd)
    texts = [text for text, _provenance in corpus]

    # 1. Equivalence first, document by document, through the real batch
    # surface (parse included): the admission-on run must reproduce the
    # classic run's verdicts exactly.
    classic = BatchChecker(schema, admission="off")
    admitted = BatchChecker(schema, admission="on")
    baseline = classic.check_texts(texts)
    filtered = admitted.check_texts(texts)
    assert filtered.mismatch_count == 0
    for index, (before, after) in enumerate(zip(baseline.items, filtered.items)):
        assert before.ok == after.ok, (index, corpus[index][1])
        if before.ok:
            assert bool(before.verdict) == bool(after.verdict), (
                index,
                corpus[index][1],
                after.admission,
            )

    # 2. The escalation rate over the corrupted slice.
    corrupt = short_circuited = 0
    for item, (_text, provenance) in zip(filtered.items, corpus):
        if provenance == "valid":
            continue
        corrupt += 1
        short_circuited += item.coarse
    assert corrupt > 0
    rate = short_circuited / corrupt
    assert rate >= REQUIRED_SHORT_CIRCUIT, (
        f"coarse admission short-circuited only {short_circuited}/{corrupt} "
        f"corrupted documents ({rate:.0%})"
    )

    # 3/4. Verdict-stage throughput over parsed documents, single core.
    documents = [parse_xml(text) for text in texts]
    coarse = CoarseChecker(schema.coarse)

    def admitted_pass(checker) -> None:
        for document in documents:
            admission = coarse.check_document(document)
            if not admission.definite:
                checker.check_document(document)

    table = Table(
        "E18: coarse admission, verdict stage on a skewed corpus "
        "(manuscript DTD, single core)",
        ["backend", "docs", "off (s)", "on (s)", "on docs/s", "ratio"],
    )
    ratios: dict[str, float] = {}
    for backend in ("machine", "kernel"):
        checker = PVChecker(manuscript_dtd, algorithm=backend)
        best = _interleaved_best(
            {
                "off": lambda c=checker: [
                    c.check_document(d) for d in documents
                ],
                "on": lambda c=checker: admitted_pass(c),
            },
            rounds=ROUNDS,
        )
        ratios[backend] = best["off"] / best["on"]
        table.add_row(
            backend,
            len(documents),
            best["off"],
            best["on"],
            throughput(len(documents), best["on"]),
            ratios[backend],
        )
    table.print()

    assert ratios["machine"] >= REQUIRED_RATIO, (
        f"admission only {ratios['machine']:.2f}x the classic machine "
        f"verdict stage (required {REQUIRED_RATIO}x on {len(documents)} "
        f"documents, {short_circuited}/{corrupt} corrupt short-circuited)"
    )
    assert ratios["kernel"] >= KERNEL_FLOOR, (
        f"admission costs the kernel tier too much: {ratios['kernel']:.2f}x "
        f"(floor {KERNEL_FLOOR}x)"
    )

    # Headline number: the full admission-on batch (parse included).
    benchmark(lambda: admitted.check_texts(texts))
