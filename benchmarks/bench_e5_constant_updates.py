"""E5 — Section 3.3 / Proposition 3: O(1) character-data update checks.

"Checking for potential validity on character data insertion reduces to
checking whether or not an element type declaration contains #PCDATA
(hence, O(1) time complexity)" — we measure the update-time checks against
document size and fit exponents:

* text *update* check — constant (Theorem 2: always allowed),
* text *insert* fast rule (Prop 3 lookup) — constant,
* full document re-check — linear: the cost the incremental rules avoid.
"""

from __future__ import annotations


from repro.bench.harness import Table, fit_power_law, time_callable
from repro.bench.scenarios import degraded_document
from repro.core.incremental import IncrementalChecker
from repro.core.pv import PVChecker
from repro.xmlmodel.delta import delta_tokens

SIZES = (100, 200, 400, 800, 1600)


def test_e5_constant_time_updates(benchmark, manuscript_dtd):
    incremental = IncrementalChecker(manuscript_dtd)
    full = PVChecker(manuscript_dtd)
    table = Table(
        "E5: update-check wall time vs document size (manuscript DTD)",
        ["tokens", "update chk (s)", "Prop3 insert chk (s)", "full recheck (s)"],
    )
    token_counts = []
    fast_times = []
    insert_times = []
    full_times = []
    for size in SIZES:
        document = degraded_document(manuscript_dtd, size, seed=7)
        token_counts.append(len(delta_tokens(document.root)))
        # Pick a text-bearing node deep in the document.
        target = next(
            element
            for element in document.iter_elements()
            if element.name == "textline"
        )
        t_update = time_callable(
            lambda t=target: incremental.check_text_update(t, 0), repeat=5
        )
        t_insert = time_callable(
            lambda t=target: incremental.check_text_insert_fast(t), repeat=5
        )
        t_full = time_callable(
            lambda d=document: full.check_document(d), repeat=3
        )
        fast_times.append(t_update)
        insert_times.append(t_insert)
        full_times.append(t_full)
        table.add_row(token_counts[-1], t_update, t_insert, t_full)
    update_slope = fit_power_law(token_counts, fast_times)
    insert_slope = fit_power_law(token_counts, insert_times)
    full_slope = fit_power_law(token_counts, full_times)
    table.add_row("slope", update_slope, insert_slope, full_slope)
    table.print()

    # O(1) rules: flat in document size.  Full recheck: clearly growing.
    assert abs(update_slope) < 0.35, update_slope
    assert abs(insert_slope) < 0.35, insert_slope
    assert full_slope > 0.6, full_slope

    document = degraded_document(manuscript_dtd, SIZES[-1], seed=7)
    target = next(
        element
        for element in document.iter_elements()
        if element.name == "textline"
    )
    benchmark(lambda: incremental.check_text_insert_fast(target))
