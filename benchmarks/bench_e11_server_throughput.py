"""E11 — the serving front: warm server vs per-request cold compilation.

The async server's claim extends E10's amortization argument to a
long-running process: one warm registry (backed by the persistent disk
store) answers every connection's verdicts from the compiled artifact, so
a served corpus must beat an embedder that recompiles the schema per
request — *including* the server's JSON/socket overhead, which the cold
arm does not pay.  Three measured arms over the same mixed corpus:

* **cold** — per request: clear the process caches, re-parse the DTD,
  recompile the artifact, check (the naive embed-the-library service);
* **warm server** — one ``ValidationServer`` (in-memory registry + disk
  store) on a Unix socket, one persistent client connection, the corpus
  streamed through as NDJSON requests;
* **restarted server** — a brand-new server and registry over the same
  disk store, corpus replayed.

Asserted: the warm server is at least 2× faster than cold per-request
compilation, every arm returns identical verdicts, and the restarted
server performs **zero** schema compilations — its artifact comes from
the store (``compile_schema`` is instrumented and must not fire, and the
server's own stats must report ``misses == 0`` with one store hit).

``REPRO_BENCH_FAST=1`` shrinks the corpus for the CI smoke job.
"""

from __future__ import annotations

import os
import random

import repro.service.registry as registry_module
from repro.bench.harness import Table, throughput, time_callable
from repro.core.pv import PVChecker
from repro.dtd.parser import parse_dtd
from repro.dtd.serialize import dtd_to_text
from repro.server.client import ValidationClient
from repro.server.server import ServerThread
from repro.service.compiled import clear_compile_caches, compile_schema
from repro.service.registry import SchemaRegistry
from repro.service.store import ArtifactStore
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
#: Heavy-traffic shape: many small editorial documents, where per-request
#: schema work (which the warm server never repeats) dominates.
DOC_COUNT = 40 if FAST else 200
TARGET_NODES = 12
REPEAT = 2 if FAST else 3


def _corpus(dtd) -> list[str]:
    """Valid and Theorem-2-degraded documents, serialized for the wire."""
    rng = random.Random(11)
    generator = DocumentGenerator(dtd, seed=11)
    texts: list[str] = []
    for document in generator.documents(DOC_COUNT // 2, target_nodes=TARGET_NODES):
        texts.append(to_xml(document))
        degraded, _count = degrade(document, rng, fraction=0.5)
        texts.append(to_xml(degraded))
    return texts


def test_e11_server_throughput(benchmark, manuscript_dtd, tmp_path, monkeypatch):
    dtd_text = dtd_to_text(manuscript_dtd)
    root = manuscript_dtd.root
    texts = _corpus(manuscript_dtd)
    store_dir = tmp_path / "artifacts"

    # -- arm 1: per-request cold compilation (no server, no cache) ---------
    def cold_run() -> list[bool]:
        verdicts = []
        for text in texts:
            clear_compile_caches()
            schema = compile_schema(parse_dtd(dtd_text, root=root))
            checker = PVChecker.from_compiled(schema)
            verdicts.append(checker.check_document(parse_xml(text)).potentially_valid)
        return verdicts

    cold_seconds = time_callable(cold_run, repeat=REPEAT, warmup=1)
    cold_verdicts = cold_run()

    # -- arm 2: one warm server, one persistent connection ------------------
    warm_registry = SchemaRegistry(store=ArtifactStore(store_dir))
    with ServerThread(
        unix_path=str(tmp_path / "e11.sock"), registry=warm_registry
    ) as handle:
        with ValidationClient.connect_unix(handle.unix_path) as client:

            def server_run() -> list[bool]:
                return [
                    client.check(dtd_text, text, root=root)["potentially_valid"]
                    for text in texts
                ]

            warm_seconds = time_callable(server_run, repeat=REPEAT, warmup=1)
            warm_verdicts = server_run()
            benchmark(lambda: client.check(dtd_text, texts[0], root=root))

    # -- arm 3: restarted server over the warm disk store -------------------
    compile_calls: list[str] = []
    original_compile = registry_module.compile_schema

    def counting_compile(dtd, fingerprint=None):
        compile_calls.append(fingerprint or "?")
        return original_compile(dtd, fingerprint=fingerprint)

    monkeypatch.setattr(registry_module, "compile_schema", counting_compile)
    restart_registry = SchemaRegistry(store=ArtifactStore(store_dir))
    with ServerThread(
        unix_path=str(tmp_path / "e11-restart.sock"), registry=restart_registry
    ) as handle:
        with ValidationClient.connect_unix(handle.unix_path) as client:
            started_verdicts = [
                client.check(dtd_text, text, root=root)["potentially_valid"]
                for text in texts
            ]
            restart_stats = client.stats()["registry"]
    monkeypatch.setattr(registry_module, "compile_schema", original_compile)

    table = Table(
        "E11: served checking throughput (manuscript DTD)",
        ["mode", "docs", "seconds", "docs/s", "speedup vs cold"],
    )
    table.add_row(
        "cold compile/request", len(texts), cold_seconds,
        throughput(len(texts), cold_seconds), 1.0,
    )
    table.add_row(
        "warm server (unix)", len(texts), warm_seconds,
        throughput(len(texts), warm_seconds), cold_seconds / warm_seconds,
    )
    table.print()
    print(f"warm registry: {warm_registry.stats}")
    print(f"restarted registry: {restart_stats}")

    # Every arm agrees, document by document.
    assert warm_verdicts == cold_verdicts
    assert started_verdicts == cold_verdicts

    # The acceptance bar: serving from the warm registry must amortize the
    # schema work past the wire overhead.
    assert cold_seconds / warm_seconds >= 2.0, (
        f"warm server only {cold_seconds / warm_seconds:.2f}x faster than "
        f"per-request cold compilation"
    )

    # A restart must be free of recompilation: the artifact comes from the
    # disk store (one store hit, zero compiles, zero compile seconds).
    assert compile_calls == [], (
        f"restarted server compiled {len(compile_calls)} artifact(s)"
    )
    assert restart_stats["misses"] == 0
    assert restart_stats["store_hits"] == 1
    assert restart_stats["compile_seconds"] == 0.0
