"""E12 — ring scale-out: 3 shards vs one server; schemas compile once.

The sharding claim extends E11's one-warm-process argument horizontally.
Every server here is a real ``python -m repro serve`` subprocess — the
deployment shape, not an in-process thread — so shard parallelism is OS
process parallelism.  Three measured arms over one mixed 8-schema corpus
of small editorial documents (the heavy-traffic shape where per-request
wire and schema overhead matters), every server warmed before timing:

* **sequential single** — one server, one connection, one ``check``
  round trip per document: the naive client;
* **batch single** — the same server and connection driven with the
  streaming ``check-batch`` op, one batch per schema: what the bulk op
  alone buys (the DTD crosses the wire once per corpus instead of once
  per document, and round-trip stalls vanish);
* **3-shard ring** — three servers behind a ``ShardedClient``, schema
  batches fanned out to their owning shards concurrently.

Asserted: every arm returns identical verdicts; ``check-batch`` over one
connection beats N sequential ``check`` calls; with >= 2 CPUs the ring
beats the single server (both its sequential and its batched client — on
a 1-CPU host no honest benchmark can demonstrate hardware parallelism,
so there the ring is only required to stay within 1.5x of the batched
single server, and the ratios are reported); each schema fingerprint is
compiled **at most once ring-wide** — including after a membership
change, where the replayed corpus reaches remapped shards via
``get-artifact``/``put-artifact`` hand-off (observed in the
coordinator's stats) instead of recompiling.

``REPRO_BENCH_FAST=1`` shrinks the corpus for the CI smoke job.
"""

from __future__ import annotations

import os
import random
import socket
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.bench.harness import Table, throughput, time_callable
from repro.dtd import catalog
from repro.dtd.parser import parse_dtd
from repro.dtd.serialize import dtd_to_text
from repro.server.client import ValidationClient
from repro.server.ring import ShardedClient, ShardRing, member_label
from repro.service.compiled import schema_fingerprint
from repro.workloads.degrade import degrade
from repro.workloads.docgen import DocumentGenerator
from repro.xmlmodel.serialize import to_xml

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
#: Documents per schema (half valid, half Theorem-2 degraded).
DOCS_PER_SCHEMA = 8 if FAST else 24
#: Heavy-traffic shape: many small editorial documents, where the wire
#: and schema overhead the batch op amortizes is a real fraction.
TARGET_NODES = 12
REPEAT = 2 if FAST else 3
SHARDS = 3

#: The multi-schema workload: eight structurally distinct catalog DTDs.
SCHEMA_BUILDERS = (
    catalog.paper_figure1,
    catalog.example5_t1,
    catalog.example6_t2,
    catalog.tei_lite,
    catalog.xhtml_basic,
    catalog.docbook_article,
    catalog.play,
    catalog.dictionary,
)


def _corpus() -> list[tuple[str, str | None, list[str]]]:
    """``(dtd_text, root, docs)`` per schema, serialized for the wire."""
    batches = []
    for index, builder in enumerate(SCHEMA_BUILDERS):
        dtd = builder()
        rng = random.Random(100 + index)
        generator = DocumentGenerator(dtd, seed=100 + index)
        texts: list[str] = []
        for document in generator.documents(
            DOCS_PER_SCHEMA // 2, target_nodes=TARGET_NODES
        ):
            texts.append(to_xml(document))
            degraded, _count = degrade(document, rng, fraction=0.5)
            texts.append(to_xml(degraded))
        batches.append((dtd_to_text(dtd), dtd.root, texts))
    return batches


def _spawn_server(unix_path: str) -> subprocess.Popen:
    """One ``python -m repro serve`` subprocess on a Unix socket."""
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--no-tcp", "--unix", unix_path],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited with {process.returncode} before binding"
            )
        if os.path.exists(unix_path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(unix_path)
                return process
            except OSError:
                pass
            finally:
                probe.close()
        time.sleep(0.02)
    process.terminate()
    raise RuntimeError(f"server on {unix_path} did not come up in time")


def _stop(processes: list[subprocess.Popen]) -> None:
    for process in processes:
        process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            process.kill()
            process.wait(timeout=10)


def _registry_misses(unix_path: str) -> int:
    with ValidationClient.connect_unix(unix_path) as client:
        return client.stats()["registry"]["misses"]


def _ring_corpus(ring: ShardedClient, batches) -> list[bool]:
    """One ring pass via ``check_corpus``, verdicts flat in corpus order."""
    results = ring.check_corpus(
        [(dtd, docs, root) for dtd, root, docs in batches]
    )
    flat: list[bool] = []
    for replies, _trailer in results:
        flat.extend(r["potentially_valid"] for r in replies)
    return flat


def _spread_shard_paths(tmp_path, batches) -> list[str]:
    """Shard socket paths whose ring placement spreads the corpus.

    Ring placement hashes the socket *path*, and the pytest tmp
    directory is random — so with small shard counts there is a tiny
    chance every schema lands on one shard, which would make the
    scale-out measurement meaningless (and flaky).  Salting the socket
    names deterministically until the owners spread keeps the benchmark
    honest about what it measures without depending on luck.
    """
    fingerprints = [
        schema_fingerprint(parse_dtd(dtd, root=root))
        for dtd, root, _docs in batches
    ]
    for salt in range(64):
        paths = [
            str(tmp_path / f"shard-{index}-{salt}.sock")
            for index in range(SHARDS)
        ]
        trial = ShardRing(paths)
        owners = {member_label(trial.owner(fp)) for fp in fingerprints}
        if len(owners) > 1:
            return paths
    raise AssertionError("no salt spread the corpus over the shards")


def test_e12_ring_scaleout(benchmark, tmp_path):
    batches = _corpus()
    total_docs = sum(len(docs) for _dtd, _root, docs in batches)
    single_path = str(tmp_path / "single.sock")
    shard_paths = _spread_shard_paths(tmp_path, batches)
    processes = [_spawn_server(single_path)]
    try:
        processes.extend(_spawn_server(path) for path in shard_paths)

        # -- arms 1+2: one server, sequential checks vs streaming batches ----
        with ValidationClient.connect_unix(single_path) as client:

            def sequential_run() -> list[bool]:
                return [
                    client.check(dtd, doc, root=root)["potentially_valid"]
                    for dtd, root, docs in batches
                    for doc in docs
                ]

            def batch_run() -> list[bool]:
                verdicts: list[bool] = []
                for dtd, root, docs in batches:
                    replies, _trailer = client.check_batch(dtd, docs, root=root)
                    verdicts.extend(r["potentially_valid"] for r in replies)
                return verdicts

            sequential_seconds = time_callable(
                sequential_run, repeat=REPEAT, warmup=1
            )
            sequential_verdicts = sequential_run()
            batch_seconds = time_callable(batch_run, repeat=REPEAT, warmup=1)
            batch_verdicts = batch_run()
        single_misses = _registry_misses(single_path)

        # -- arm 3: the ring, schema batches fanned out concurrently ---------
        with ShardedClient(shard_paths) as ring:
            ring_seconds = time_callable(
                lambda: _ring_corpus(ring, batches), repeat=REPEAT, warmup=1
            )
            ring_verdicts = _ring_corpus(ring, batches)
            benchmark(
                lambda: ring.check(
                    batches[0][0], batches[0][2][0], root=batches[0][1]
                )
            )
            shard_misses = [_registry_misses(path) for path in shard_paths]
            owners = {
                member_label(ring.ring.owner(ring.fingerprint(dtd, root)))
                for dtd, root, _docs in batches
            }

            # -- membership change: drop one owning shard, replay ------------
            removed = ring.ring.owner(
                ring.fingerprint(batches[0][0], batches[0][1])
            )
            ring.ring.remove(removed)
            replay_verdicts = _ring_corpus(ring, batches)
            handoffs = ring.ring_stats["handoffs"]
        final_misses = [_registry_misses(path) for path in shard_paths]
    finally:
        _stop(processes)

    table = Table(
        "E12: ring scale-out (8 schemas, mixed corpus, subprocess servers)",
        ["mode", "docs", "seconds", "docs/s", "speedup vs sequential"],
    )
    table.add_row(
        "single, sequential check", total_docs, sequential_seconds,
        throughput(total_docs, sequential_seconds), 1.0,
    )
    table.add_row(
        "single, check-batch", total_docs, batch_seconds,
        throughput(total_docs, batch_seconds),
        sequential_seconds / batch_seconds,
    )
    table.add_row(
        f"{SHARDS}-shard ring", total_docs, ring_seconds,
        throughput(total_docs, ring_seconds),
        sequential_seconds / ring_seconds,
    )
    table.print()
    print(f"schemas: {len(batches)}, shard owners used: {len(owners)}")
    print(f"single-server compiles: {single_misses}")
    print(f"per-shard compiles: {shard_misses} (sum {sum(shard_misses)})")
    print(f"after membership change: {final_misses} "
          f"(sum {sum(final_misses)}), handoffs: {handoffs}")

    # Every arm agrees, document by document.
    assert batch_verdicts == sequential_verdicts
    assert ring_verdicts == sequential_verdicts
    assert replay_verdicts == sequential_verdicts

    # The streaming op must beat one round trip per document on the very
    # same connection and server.
    assert batch_seconds < sequential_seconds, (
        f"check-batch ({batch_seconds:.3f}s) did not beat sequential checks "
        f"({sequential_seconds:.3f}s)"
    )

    # The scale-out bar, honest about hardware: process parallelism needs
    # processors.
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert ring_seconds < sequential_seconds, (
            f"{SHARDS}-shard ring ({ring_seconds:.3f}s) did not beat the "
            f"single server's sequential client ({sequential_seconds:.3f}s)"
        )
        assert ring_seconds < batch_seconds, (
            f"{SHARDS}-shard ring ({ring_seconds:.3f}s) did not beat the "
            f"batched single server ({batch_seconds:.3f}s) on {cores} cores"
        )
    else:
        print(
            f"note: 1 CPU visible — ring speedups "
            f"({sequential_seconds / ring_seconds:.2f}x vs sequential, "
            f"{batch_seconds / ring_seconds:.2f}x vs batch) reported, "
            f"not asserted"
        )
        assert ring_seconds < 1.5 * batch_seconds, (
            f"ring overhead is pathological even for one core: "
            f"{ring_seconds:.3f}s vs {batch_seconds:.3f}s batched"
        )

    # Compile-at-most-once, ring-wide: every schema compiled on exactly
    # one shard, the corpus actually spread over shards, and the
    # membership-change replay moved artifacts instead of recompiling.
    assert single_misses == len(batches)
    assert sum(shard_misses) == len(batches)
    assert len(owners) > 1
    assert sum(final_misses) == len(batches), (
        f"membership change caused recompiles: {final_misses}"
    )
    assert handoffs >= 1
