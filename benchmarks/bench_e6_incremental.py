"""E6 — Section 4: markup insertion checks are two local ECPV runs.

"Checking potential validity for markup insertion into a potentially valid
document reduces to solving twice Problem ECPV: for the node inserted and
for its parent."  We measure the local two-node check against a full
document re-check across document sizes: the local check's cost tracks the
*node width*, not the document size.
"""

from __future__ import annotations

import random


from repro.bench.harness import Table, fit_power_law, time_callable
from repro.bench.scenarios import degraded_document
from repro.core.incremental import IncrementalChecker
from repro.core.pv import PVChecker
from repro.xmlmodel.delta import delta_tokens

SIZES = (100, 200, 400, 800, 1600)


def test_e6_local_insert_check_vs_full_recheck(benchmark, manuscript_dtd):
    incremental = IncrementalChecker(manuscript_dtd)
    full = PVChecker(manuscript_dtd)
    rng = random.Random(3)
    table = Table(
        "E6: markup-insert check — local 2xECPV vs full re-check (manuscript DTD)",
        ["tokens", "local check (s)", "full recheck (s)", "ratio"],
    )
    token_counts = []
    local_times = []
    full_times = []
    for size in SIZES:
        document = degraded_document(manuscript_dtd, size, seed=5)
        token_counts.append(len(delta_tokens(document.root)))
        # A realistic operation: wrap a run of a textline's children in
        # <damage> (allowed by the DTD).
        target = next(
            element
            for element in document.iter_elements()
            if element.name == "textline" and element.children
        )
        end = rng.randint(1, len(target.children))
        t_local = time_callable(
            lambda t=target, e=end: incremental.check_markup_insert(
                t, 0, e, "damage"
            ),
            repeat=5,
        )
        t_full = time_callable(lambda d=document: full.check_document(d), repeat=3)
        local_times.append(t_local)
        full_times.append(t_full)
        table.add_row(
            token_counts[-1],
            t_local,
            t_full,
            f"{t_full / max(t_local, 1e-9):.0f}x",
        )
    local_slope = fit_power_law(token_counts, local_times)
    full_slope = fit_power_law(token_counts, full_times)
    table.add_row("slope", local_slope, full_slope, "")
    table.print()

    # Locality: the two-ECPV check does not scale with document size.
    assert local_slope < 0.4, local_slope
    assert full_times[-1] > local_times[-1] * 5

    document = degraded_document(manuscript_dtd, SIZES[-1], seed=5)
    target = next(
        element
        for element in document.iter_elements()
        if element.name == "textline" and element.children
    )
    benchmark(
        lambda: incremental.check_markup_insert(target, 0, len(target.children), "damage")
    )
