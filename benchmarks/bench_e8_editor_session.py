"""E8 — the end-to-end editorial workload (the paper's motivating scenario).

A human editor incrementally marks up pre-existing text; every operation is
guarded by the incremental checks.  We replay generated markup scripts
(every intermediate state is potentially valid by Theorem 2) and measure:

* guarded operations per second (the per-keystroke budget),
* the overhead of the PV guard versus applying operations unchecked,
* plain validation vs PV checking of the final document (the "validator
  can't do this mid-edit" comparison implicit in the paper's introduction:
  the intermediate documents are all invalid yet all potentially valid).
"""

from __future__ import annotations

import random


from repro.bench.harness import Table, time_callable
from repro.bench.scenarios import valid_document
from repro.core.pv import PVChecker
from repro.editor.document import apply_operation
from repro.editor.session import EditingSession
from repro.validity.validator import DTDValidator
from repro.workloads.editscript import markup_script


def _script(dtd, size, seed=19):
    document = valid_document(dtd, size, seed=seed)
    skeleton, operations = markup_script(document, random.Random(seed))
    return document, skeleton, operations


def test_e8_editor_session_throughput(benchmark, manuscript_dtd):
    dtd = manuscript_dtd
    document, skeleton, operations = _script(dtd, 120)
    validator = DTDValidator(dtd)
    checker = PVChecker(dtd)

    def replay_guarded() -> None:
        session = EditingSession(dtd, skeleton.copy())
        for operation in operations:
            session.apply(operation)

    def replay_unchecked() -> None:
        working = skeleton.copy()
        for operation in operations:
            apply_operation(working, operation)

    t_guarded = time_callable(replay_guarded, repeat=3)
    t_unchecked = time_callable(replay_unchecked, repeat=3)
    t_validate = time_callable(lambda: validator.is_valid(document), repeat=3)
    t_pv = time_callable(lambda: checker.check_document(document), repeat=3)

    ops = len(operations)
    table = Table(
        "E8: guarded editing replay (manuscript DTD)",
        ["metric", "value"],
    )
    table.add_row("wrap operations", ops)
    table.add_row("guarded replay (s)", t_guarded)
    table.add_row("unchecked replay (s)", t_unchecked)
    table.add_row("guard overhead per op (ms)", (t_guarded - t_unchecked) / ops * 1e3)
    table.add_row("guarded ops/s", ops / t_guarded)
    table.add_row("final validate (s)", t_validate)
    table.add_row("final PV check (s)", t_pv)
    table.print()

    # The guard must be usable per keystroke: well under 50 ms/op here.
    assert (t_guarded / ops) < 0.05

    # Every intermediate state is invalid-yet-PV: spot-check the skeleton.
    assert not validator.is_valid(skeleton)
    assert checker.is_potentially_valid(skeleton)

    benchmark(replay_guarded)


def test_e8_rejection_path_cost(benchmark, figure1_dtd):
    """Rejected operations must be as cheap as accepted ones."""
    from repro.core.incremental import IncrementalChecker
    from repro.xmlmodel.parser import parse_xml

    document = parse_xml(
        "<r><a><b>A quick brown</b><c> fox jumps over a lazy</c>"
        " dog<e></e></a></r>"
    )
    checker = IncrementalChecker(figure1_dtd)
    a = document.root.element_children()[0]

    accept = lambda: checker.check_markup_insert(a, 0, 1, "d")
    reject = lambda: checker.check_markup_insert(a, 0, 4, "e")
    assert not reject()

    t_accept = time_callable(accept, repeat=5)
    t_reject = time_callable(reject, repeat=5)
    table = Table(
        "E8b: accept vs reject path (Figure 1 DTD)",
        ["path", "time (s)"],
    )
    table.add_row("accepted wrap", t_accept)
    table.add_row("rejected wrap", t_reject)
    table.print()
    assert t_reject < t_accept * 20 + 1e-3

    benchmark(reject)
