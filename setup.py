"""Legacy setup shim.

The environment has setuptools but no ``wheel`` package (and no network to
fetch one), so PEP 517 editable installs cannot build. This shim keeps
``pip install -e . --no-build-isolation --no-use-pep517`` working; all
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
