"""repro — reproduction of "On Potential Validity of Document-Centric XML
Documents" (Iacob, Dekhtyar & Dekhtyar, ICDE 2006).

The public API in five lines:

>>> from repro import parse_dtd, parse_xml, PVChecker
>>> dtd = parse_dtd("<!ELEMENT a (b, c)> <!ELEMENT b EMPTY> <!ELEMENT c (#PCDATA)>")
>>> checker = PVChecker(dtd)
>>> checker.is_potentially_valid(parse_xml("<a><c>text</c></a>"))   # b missing: insertable
True
>>> checker.is_potentially_valid(parse_xml("<a><c>text</c><b></b></a>"))  # wrong order
False

Layer map (bottom-up):

* :mod:`repro.dtd` — DTD parsing, normalization (Cor 3.1), star-groups
  (Def 4 / Prop 1), reachability ``R_T`` + lookup table ``LT`` (Def 5),
  recursion classes (Defs 6-8), corpora.
* :mod:`repro.xmlmodel` — DOM, XML parsing, the ``delta_T``/``Delta_T``
  operators.
* :mod:`repro.grammar` — ``G_{T,r}``/``G'_{T,r}`` (Sec 3), Earley baseline,
  Glushkov automata.
* :mod:`repro.validity` — standard validation, ``D(T, r)``.
* :mod:`repro.core` — the paper's contribution: the DAG model (Sec 4.2),
  the Figure-5 ECRecognizer, the exact PVMachine, Problem PV/ECPV drivers,
  incremental update checks, witnesses, constructive completion.
* :mod:`repro.baselines` — Earley whole-document checking, naive
  ``Ext(w,T)`` search.
* :mod:`repro.editor` — a guarded document-centric editing session (the
  xTagger use case).
* :mod:`repro.workloads` — generators for documents, degradations and edit
  scripts used by tests and benchmarks.
* :mod:`repro.service` — the throughput layer: compiled-schema registry
  (compile a DTD once, share the artifact everywhere), parallel batch
  checking, the persistent artifact store, and the shape dispatcher.
* :mod:`repro.server` — the asyncio NDJSON serving front (imported on
  demand; ``python -m repro serve``).
"""

from repro.config import CheckerConfig, DEFAULT_CONFIG, DEFAULT_DEPTH_BOUND
from repro.core.classify import ClassificationReport, classify_dtd
from repro.core.completion import (
    CompletionError,
    CompletionResult,
    complete_document,
)
from repro.core.incremental import IncrementalChecker, prop3_char_insert_ok
from repro.core.machine import PVMachine
from repro.core.pv import PVChecker, PVVerdict
from repro.core.recognizer import ECRecognizer
from repro.core.witness import minimal_instance
from repro.dtd.analysis import DTDClass, analyze
from repro.dtd.model import DTD, ElementDecl, PCDATA
from repro.dtd.parser import parse_dtd
from repro.dtd.serialize import dtd_to_text
from repro.service.batch import BatchChecker, BatchItem, BatchResult, check_batch
from repro.service.compiled import (
    CompiledSchema,
    compile_schema,
    schema_fingerprint,
)
from repro.service.dispatch import (
    BackendDispatcher,
    DispatchDecision,
    DispatchPolicy,
    DocumentShape,
    measure_shape,
)
from repro.service.registry import (
    DEFAULT_REGISTRY,
    RegistryStats,
    SchemaRegistry,
    default_registry,
)
from repro.service.store import ArtifactStore, StoreStats, default_store_dir
from repro.errors import (
    DTDError,
    DTDSemanticError,
    DTDSyntaxError,
    EditRejected,
    PVError,
    ReproError,
    UnknownElementError,
    UnusableElementError,
    XmlError,
    XmlSyntaxError,
)
from repro.validity.validator import DTDValidator
from repro.xmlmodel.delta import SIGMA, content_symbols, delta_symbols
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlText

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "CheckerConfig",
    "DEFAULT_CONFIG",
    "DEFAULT_DEPTH_BOUND",
    # DTD layer
    "DTD",
    "ElementDecl",
    "PCDATA",
    "parse_dtd",
    "dtd_to_text",
    "analyze",
    "DTDClass",
    # XML layer
    "XmlDocument",
    "XmlElement",
    "XmlText",
    "parse_xml",
    "to_xml",
    "SIGMA",
    "content_symbols",
    "delta_symbols",
    # validation and PV checking
    "DTDValidator",
    "PVChecker",
    "PVVerdict",
    "PVMachine",
    "ECRecognizer",
    "IncrementalChecker",
    "prop3_char_insert_ok",
    "classify_dtd",
    "ClassificationReport",
    "minimal_instance",
    "complete_document",
    "CompletionResult",
    "CompletionError",
    # service layer
    "CompiledSchema",
    "compile_schema",
    "schema_fingerprint",
    "SchemaRegistry",
    "RegistryStats",
    "DEFAULT_REGISTRY",
    "default_registry",
    "BatchChecker",
    "BatchItem",
    "BatchResult",
    "check_batch",
    "ArtifactStore",
    "StoreStats",
    "default_store_dir",
    "BackendDispatcher",
    "DispatchPolicy",
    "DispatchDecision",
    "DocumentShape",
    "measure_shape",
    # errors
    "ReproError",
    "DTDError",
    "DTDSyntaxError",
    "DTDSemanticError",
    "UnknownElementError",
    "UnusableElementError",
    "XmlError",
    "XmlSyntaxError",
    "PVError",
    "EditRejected",
]
