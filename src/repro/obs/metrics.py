"""Thread-safe counters, gauges, and log-bucketed latency histograms.

Design constraints, in order:

1. **Hot-path cost.**  Instrument sites hold a metric handle and call
   ``inc()``/``observe()`` — one lock acquire and one integer add.  The
   registry lookup (name + labels -> handle) happens once, at wiring
   time, not per request.
2. **Mergeability.**  Snapshots are plain JSON-ready dicts, and
   :func:`merge_snapshots` is associative and commutative (counters and
   gauges add; histograms add bucket-wise under identical bounds), so
   "ring-wide p99" is literally ``histogram_quantile(merge(...), 0.99)``
   no matter how the per-shard snapshots are grouped.
3. **Strippability.**  ``MetricsRegistry(enabled=False)`` hands out
   shared no-op metrics, which is how the E16 overhead benchmark builds
   its "stripped" server without a second code path.

Buckets are logarithmic (doubling from 100 µs to ~3.5 min plus +Inf),
the classic Prometheus latency layout: quantiles come from a cumulative
scan with linear interpolation inside the winning bucket, so p50/p99
are estimates bounded by one bucket's width — plenty for "which backend
tier is slow ring-wide".

Every metric name the instrumented stack may register is declared in
:data:`CATALOG`; the docs drift guard diffs it against the catalog
table in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterable, Mapping

__all__ = [
    "CATALOG",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "Stopwatch",
    "counter_value",
    "histogram_entries",
    "histogram_quantile",
    "merge_snapshots",
]

#: Log-spaced latency buckets in seconds: 100 µs doubling up to ~209 s,
#: with the implicit +Inf bucket appended by :class:`Histogram`.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    0.0001 * (2.0 ** i) for i in range(22)
)


class Stopwatch:
    """One monotonic timer, shared by reply stamps and histograms.

    The server stamps ``elapsed_ms`` on every reply *and* observes the
    same request in a latency histogram; both readings come from the
    same :class:`Stopwatch` instance so they can never disagree.
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = perf_counter()

    @property
    def seconds(self) -> float:
        return perf_counter() - self._started

    @property
    def elapsed_ms(self) -> float:
        """Milliseconds elapsed, rounded to the wire precision (3 dp)."""
        return round(self.seconds * 1000.0, 3)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up, down, or be set outright."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A log-bucketed distribution of seconds.

    Stores per-bucket (non-cumulative) counts plus a running sum and
    count; snapshots carry the bucket bounds so merging can insist they
    match.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, seconds: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += seconds
            self._count += 1

    def quantile(self, q: float) -> float | None:
        return histogram_quantile(self._entry(), q)

    def _entry(self) -> dict[str, Any]:
        with self._lock:
            return {
                "le": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


class _NullMetric:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, seconds: float) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    @property
    def value(self) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()

_KINDS = ("counter", "gauge", "histogram")


@dataclass(frozen=True)
class MetricSpec:
    """One catalog entry: a name, its kind, its label keys, and help."""

    name: str
    kind: str
    labels: tuple[str, ...]
    help: str


#: Every metric name the instrumented stack may register, server- and
#: client-side.  ``docs/OBSERVABILITY.md``'s catalog table is diffed
#: against this tuple by the docs drift tests, and the obs test suite
#: asserts that live snapshots register no name outside it.
CATALOG: tuple[MetricSpec, ...] = (
    MetricSpec("repro_requests_total", "counter", ("op",),
               "Requests handled, by wire op (batch items excluded)."),
    MetricSpec("repro_errors_total", "counter", ("code",),
               "Error replies sent, by protocol error code."),
    MetricSpec("repro_request_seconds", "histogram", ("op",),
               "End-to-end request latency, by wire op."),
    MetricSpec("repro_phase_seconds", "histogram", ("phase",),
               "Per-request phase latency: parse, queue, decide, "
               "verdict, artifact."),
    MetricSpec("repro_verdict_seconds", "histogram", ("backend",),
               "Verdict computation latency, by resolved backend."),
    MetricSpec("repro_dispatch_total", "counter", ("backend",),
               "Verdicts produced, by resolved backend."),
    MetricSpec("repro_batch_items_total", "counter", (),
               "Documents checked inside check-batch streams."),
    MetricSpec("repro_slow_requests_total", "counter", (),
               "Requests slower than the served --slow-ms threshold."),
    MetricSpec("repro_traced_requests_total", "counter", (),
               "Requests that carried an opt-in trace id."),
    MetricSpec("repro_inflight", "gauge", (),
               "Checks currently in flight on this server."),
    MetricSpec("repro_connections", "gauge", (),
               "Open client connections on this server."),
    MetricSpec("repro_registry_events_total", "counter", ("event",),
               "Schema registry events: hit, miss, store_hit, eviction."),
    MetricSpec("repro_store_events_total", "counter", ("event",),
               "Artifact store events: hit, miss, corrupt, save, upgrade."),
    MetricSpec("repro_ring_reads_total", "counter", ("member",),
               "Client-side reads served, by ring member."),
    MetricSpec("repro_ring_failovers_total", "counter", (),
               "Client-side reads served by a non-primary owner."),
    MetricSpec("repro_ring_requeues_total", "counter", (),
               "Corpus windows re-queued after a replica died mid-run."),
    MetricSpec("repro_ring_steals_total", "counter", (),
               "Corpus windows executed on a non-primary owner."),
    MetricSpec("repro_gossip_probe_seconds", "histogram", (),
               "Direct gossip probe round-trip latency."),
    MetricSpec("repro_gossip_suspects_total", "counter", (),
               "Members this agent marked suspect after failed probes."),
    MetricSpec("repro_gossip_refutes_total", "counter", (),
               "Suspicions about this member refuted by incarnation bump."),
    MetricSpec("repro_gossip_down_total", "counter", (),
               "Suspicions this agent confirmed down after timeout."),
    MetricSpec("repro_view_epoch", "gauge", (),
               "Placement view epoch this member currently holds."),
    MetricSpec("repro_admission_total", "counter", ("outcome",),
               "Coarse admission outcomes: accept, reject, uncertain."),
    MetricSpec("repro_admission_seconds", "histogram", (),
               "Coarse admission pass latency."),
    MetricSpec("repro_admission_mismatches_total", "counter", (),
               "Audit-mode disagreements between a definite coarse "
               "outcome and the full backend verdict."),
    MetricSpec("repro_parse_seconds", "histogram", (),
               "Document parse latency on the server check path."),
    MetricSpec("repro_verdict_cache_total", "counter", ("outcome",),
               "Verdict cache lookups: hit, miss, evict."),
)

CATALOG_NAMES: frozenset[str] = frozenset(spec.name for spec in CATALOG)


def _check_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ValueError(f"invalid metric name: {name!r}")


class MetricsRegistry:
    """Process-wide registry of named, labelled metrics.

    ``counter(name, **labels)`` (and ``gauge``/``histogram``) get or
    create the metric for that exact label set; callers keep the handle.
    ``snapshot()`` returns a JSON-ready dict; :func:`merge_snapshots`
    aggregates snapshots ring-wide.

    A registry built with ``enabled=False`` hands out shared no-op
    metrics and snapshots empty — the "stripped" configuration the E16
    overhead benchmark compares against.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        # kind -> {(name, sorted-label-items) -> metric}
        self._metrics: dict[str, dict[tuple, Any]] = {
            kind: {} for kind in _KINDS
        }

    def _get(self, kind: str, name: str, labels: Mapping[str, str],
             factory) -> Any:
        if not self.enabled:
            return _NULL_METRIC
        _check_name(name)
        key = (name, tuple(sorted(labels.items())))
        table = self._metrics[kind]
        with self._lock:
            for other in _KINDS:
                if other != kind and key in self._metrics[other]:
                    raise ValueError(
                        f"metric {name!r} already registered as a {other}"
                    )
            metric = table.get(key)
            if metric is None:
                metric = table[key] = factory()
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(self, name: str,
                  bounds: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        return self._get("histogram", name, labels,
                         lambda: Histogram(bounds))

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready, deterministically ordered snapshot."""
        with self._lock:
            items = {
                kind: sorted(table.items())
                for kind, table in self._metrics.items()
            }
        out: dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
        for (name, labels), metric in items["counter"]:
            out["counters"].append(
                {"name": name, "labels": dict(labels), "value": metric.value}
            )
        for (name, labels), metric in items["gauge"]:
            out["gauges"].append(
                {"name": name, "labels": dict(labels), "value": metric.value}
            )
        for (name, labels), metric in items["histogram"]:
            entry = metric._entry()
            entry.update(name=name, labels=dict(labels))
            out["histograms"].append(entry)
        return out


def _key(entry: Mapping[str, Any]) -> tuple:
    return (entry["name"], tuple(sorted(entry.get("labels", {}).items())))


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Aggregate snapshots: counters and gauges add, histograms add
    bucket-wise.  Associative and commutative; raises ``ValueError`` on
    histograms with mismatched bucket bounds."""
    counters: dict[tuple, dict[str, Any]] = {}
    gauges: dict[tuple, dict[str, Any]] = {}
    histograms: dict[tuple, dict[str, Any]] = {}
    for snapshot in snapshots:
        for entry in snapshot.get("counters", []):
            merged = counters.setdefault(
                _key(entry), {"name": entry["name"],
                              "labels": dict(entry.get("labels", {})),
                              "value": 0.0})
            merged["value"] += entry["value"]
        for entry in snapshot.get("gauges", []):
            merged = gauges.setdefault(
                _key(entry), {"name": entry["name"],
                              "labels": dict(entry.get("labels", {})),
                              "value": 0.0})
            merged["value"] += entry["value"]
        for entry in snapshot.get("histograms", []):
            key = _key(entry)
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "name": entry["name"],
                    "labels": dict(entry.get("labels", {})),
                    "le": list(entry["le"]),
                    "counts": list(entry["counts"]),
                    "sum": entry["sum"],
                    "count": entry["count"],
                }
                continue
            if merged["le"] != list(entry["le"]):
                raise ValueError(
                    f"histogram {entry['name']!r} bucket bounds differ "
                    f"across snapshots"
                )
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], entry["counts"])
            ]
            merged["sum"] += entry["sum"]
            merged["count"] += entry["count"]
    return {
        "counters": [counters[k] for k in sorted(counters)],
        "gauges": [gauges[k] for k in sorted(gauges)],
        "histograms": [histograms[k] for k in sorted(histograms)],
    }


def histogram_quantile(entry: Mapping[str, Any], q: float) -> float | None:
    """Estimate the *q* quantile (in seconds) from a histogram entry.

    Cumulative scan with linear interpolation inside the winning bucket;
    the +Inf bucket degrades to its lower bound (the largest finite
    bound).  Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = entry["count"]
    if total <= 0:
        return None
    target = q * total
    bounds = entry["le"]
    cumulative = 0
    for index, count in enumerate(entry["counts"]):
        if count <= 0:
            continue
        if cumulative + count >= target:
            if index >= len(bounds):  # the +Inf bucket
                return float(bounds[-1])
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (target - cumulative) / count
            return lower + (upper - lower) * max(0.0, min(1.0, fraction))
        cumulative += count
    return float(bounds[-1])


def counter_value(snapshot: Mapping[str, Any], name: str,
                  **labels: str) -> float:
    """Sum of a snapshot's counters named *name* whose labels contain
    *labels* (a convenience for tests, the CLI, and the coordinator)."""
    total = 0.0
    for entry in snapshot.get("counters", []):
        if entry["name"] != name:
            continue
        entry_labels = entry.get("labels", {})
        if all(entry_labels.get(k) == v for k, v in labels.items()):
            total += entry["value"]
    return total


def histogram_entries(snapshot: Mapping[str, Any],
                      name: str) -> list[dict[str, Any]]:
    """The snapshot's histogram entries named *name*."""
    return [e for e in snapshot.get("histograms", []) if e["name"] == name]
