"""Opt-in request tracing: client-generated ids, per-hop span records.

A trace is requested by the caller (``trace=True`` on the ring client,
or a ``"trace": "<id>"`` field on the wire) and costs nothing when it
is not: servers only build a span object for requests that carried an
id, and ring clients only allocate a :class:`TraceContext` when asked.

The wire shape, end to end:

* request — ``"trace": "f3a9c2d417b8e05a"`` (any non-empty string; ids
  from :func:`new_trace_id` are 16 hex chars).
* server reply — ``"trace": {"id": ..., "span": {...}}`` where the span
  records ``member``, ``op``, ``total_ms``, and the phase timings the
  server measured (``queue_ms``, ``parse_ms``, ``decide_ms``,
  ``verdict_ms``, ``artifact_ms`` — whichever apply).
* ring client reply — the server object is folded into per-hop records:
  ``"trace": {"id": ..., "failovers": N, "hops": [{"member", "elapsed_ms",
  "error"?, "span"?}, ...]}``.  Every member attempted is one hop, in
  order; failed hops carry the error string, the serving hop carries the
  server's span, and ``failovers`` counts the failed hops.
"""

from __future__ import annotations

import binascii
import os
from time import perf_counter
from typing import Any

__all__ = ["TraceContext", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 16-hex-char client-generated trace id."""
    return binascii.hexlify(os.urandom(8)).decode("ascii")


class TraceContext:
    """Accumulates per-hop span records for one traced ring call."""

    __slots__ = ("id", "hops")

    def __init__(self, trace_id: str | None = None) -> None:
        self.id = trace_id or new_trace_id()
        self.hops: list[dict[str, Any]] = []

    @classmethod
    def make(cls, trace: bool | str | None) -> "TraceContext | None":
        """``None`` for a falsy *trace*; a context otherwise.  A string
        *trace* becomes the id, ``True`` draws a fresh one."""
        if not trace:
            return None
        return cls(trace if isinstance(trace, str) else None)

    def begin_hop(self, member: str) -> dict[str, Any]:
        hop = {"member": member, "_started": perf_counter()}
        self.hops.append(hop)
        return hop

    @staticmethod
    def _finish(hop: dict[str, Any]) -> None:
        started = hop.pop("_started", None)
        if started is not None:
            hop["elapsed_ms"] = round((perf_counter() - started) * 1000.0, 3)

    def fail_hop(self, hop: dict[str, Any], error: object) -> None:
        self._finish(hop)
        hop["error"] = str(error) or type(error).__name__

    def end_hop(self, hop: dict[str, Any], reply: Any) -> None:
        """Close the serving hop, folding the server's span (from the
        reply dict, or a ``(replies, trailer)`` batch result) in."""
        self._finish(hop)
        trailer = reply[1] if isinstance(reply, tuple) else reply
        if isinstance(trailer, dict):
            server = trailer.pop("trace", None)
            if isinstance(server, dict) and "span" in server:
                hop["span"] = server["span"]

    @property
    def failovers(self) -> int:
        return sum(1 for hop in self.hops if "error" in hop)

    def as_dict(self) -> dict[str, Any]:
        hops = []
        for hop in self.hops:
            cleaned = {k: v for k, v in hop.items() if not k.startswith("_")}
            hops.append(cleaned)
        return {"id": self.id, "failovers": self.failovers, "hops": hops}

    def attach(self, reply: Any) -> Any:
        """Set the context as the reply's (or batch trailer's) trace."""
        trailer = reply[1] if isinstance(reply, tuple) else reply
        if isinstance(trailer, dict):
            trailer["trace"] = self.as_dict()
        return reply
