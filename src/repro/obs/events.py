"""A structured JSON-line event log with a configurable sink.

One event is one JSON object on one line: ``{"ts": ..., "event": ...,
**fields}``.  The sink is anything callable (receives the line, no
newline), anything file-like (``write`` + optional ``flush``), or
``None`` — the default, which disables the log entirely so un-operated
deployments pay a single attribute check per would-be event.

The stack emits a small, stable vocabulary: ``member-up`` /
``member-down`` / ``member-joined`` / ``member-removed`` and
``epoch-published`` from the coordinator, ``member-down`` / ``member-up``
from client connection pools, ``member-suspect`` / ``member-down`` /
``member-refuted`` / ``member-removed`` from the gossip agent,
``failover`` from :class:`ShardedClient`,
``window-requeued`` from the corpus scheduler, ``store-upgrade`` from
the artifact store, and ``slow-request`` from servers run with
``--slow-ms``.  ``docs/OBSERVABILITY.md`` documents the per-event
fields.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, IO

__all__ = ["EventLog"]


class EventLog:
    """Thread-safe JSON-line event emitter.

    ``EventLog()`` is disabled; ``EventLog(sink)`` writes one line per
    :meth:`emit` to a callable or file-like sink.  Use
    :meth:`EventLog.to_path` for an append-mode file sink.
    """

    def __init__(self,
                 sink: Callable[[str], Any] | IO[str] | None = None) -> None:
        self._lock = threading.Lock()
        self._owned: IO[str] | None = None
        if sink is None:
            self._write: Callable[[str], Any] | None = None
        elif callable(sink):
            self._write = sink
        else:
            self._write = self._file_writer(sink)

    @staticmethod
    def _file_writer(stream: IO[str]) -> Callable[[str], Any]:
        def write(line: str) -> None:
            stream.write(line + "\n")
            flush = getattr(stream, "flush", None)
            if flush is not None:
                flush()

        return write

    @classmethod
    def to_path(cls, path: str) -> "EventLog":
        """An event log appending to *path* (opened line-by-line safe)."""
        stream = open(path, "a", encoding="utf-8")
        log = cls(stream)
        log._owned = stream
        return log

    @property
    def enabled(self) -> bool:
        return self._write is not None

    def emit(self, event: str, **fields: Any) -> None:
        """Emit one event line; a no-op when the log is disabled.

        Non-JSON-serializable field values degrade to ``str`` rather
        than raise — the log must never take down the instrumented
        path.
        """
        if self._write is None:
            return
        record = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=str)
        with self._lock:
            self._write(line)

    def close(self) -> None:
        if self._owned is not None:
            self._owned.close()
            self._owned = None
            self._write = None
