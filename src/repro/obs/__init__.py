"""Observability: metrics, request tracing, events, and exposition.

The package is deliberately stdlib-only and dependency-free in both
directions: nothing in :mod:`repro.obs` imports the server stack, and
every hook the server stack calls is cheap enough to stay on the hot
path (a dict probe plus a lock-guarded integer add).  The four modules:

* :mod:`repro.obs.metrics` — thread-safe counters, gauges, and
  log-bucketed latency histograms in a :class:`MetricsRegistry`;
  snapshots are plain JSON-ready dicts that merge associatively, so
  ring-wide aggregation is ``merge_snapshots(per_shard_snapshots)``.
* :mod:`repro.obs.promtext` — Prometheus text exposition (version
  0.0.4) rendered from a snapshot, plus a validator for tests.
* :mod:`repro.obs.trace` — client-generated trace ids and the per-hop
  span accumulator threaded through ring calls and failover retries.
* :mod:`repro.obs.events` — a structured JSON-line event log with a
  configurable sink (disabled by default).

The metric catalog — every name the instrumented stack may register —
lives in :data:`repro.obs.metrics.CATALOG` and is diffed against
``docs/OBSERVABILITY.md`` by the docs drift tests.
"""

from __future__ import annotations

from repro.obs.events import EventLog
from repro.obs.metrics import (
    CATALOG,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Stopwatch,
    histogram_quantile,
    merge_snapshots,
)
from repro.obs.promtext import render, validate_exposition
from repro.obs.trace import TraceContext, new_trace_id

__all__ = [
    "CATALOG",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Stopwatch",
    "TraceContext",
    "histogram_quantile",
    "merge_snapshots",
    "new_trace_id",
    "render",
    "validate_exposition",
]
