"""Prometheus text exposition (format 0.0.4) for metric snapshots.

Stdlib only, deterministic output: families sorted by name, samples in
snapshot order (which :meth:`MetricsRegistry.snapshot` already sorts),
histogram buckets cumulative with the canonical ``+Inf`` terminator and
``_sum``/``_count`` samples.  :func:`validate_exposition` is the
line-level checker the tests and the CI ring-smoke job use to assert
the output stays parseable.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

__all__ = ["render", "validate_exposition"]

_HELP: dict[str, str] = {}


def _help_texts() -> dict[str, str]:
    if not _HELP:
        from repro.obs.metrics import CATALOG

        _HELP.update({spec.name: spec.help for spec in CATALOG})
    return _HELP


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _number(value: float) -> str:
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _bound(value: float) -> str:
    return format(float(value), "g")


def render(snapshot: Mapping[str, Any]) -> str:
    """Render a snapshot (or a merged snapshot) as exposition text."""
    families: dict[str, tuple[str, list[str]]] = {}

    def family(name: str, kind: str) -> list[str]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (kind, [])
        elif entry[0] != kind:
            raise ValueError(f"metric {name!r} rendered as {entry[0]} "
                             f"and {kind}")
        return entry[1]

    for entry in snapshot.get("counters", []):
        family(entry["name"], "counter").append(
            f"{entry['name']}{_labels(entry.get('labels', {}))} "
            f"{_number(entry['value'])}"
        )
    for entry in snapshot.get("gauges", []):
        family(entry["name"], "gauge").append(
            f"{entry['name']}{_labels(entry.get('labels', {}))} "
            f"{_number(entry['value'])}"
        )
    for entry in snapshot.get("histograms", []):
        name = entry["name"]
        labels = entry.get("labels", {})
        lines = family(name, "histogram")
        cumulative = 0
        for bound, count in zip(entry["le"], entry["counts"]):
            cumulative += count
            le = 'le="' + _bound(bound) + '"'
            lines.append(
                f"{name}_bucket{_labels(labels, le)} {_number(cumulative)}"
            )
        cumulative += entry["counts"][len(entry["le"])]
        inf = 'le="+Inf"'
        lines.append(
            f"{name}_bucket{_labels(labels, inf)} {_number(cumulative)}"
        )
        lines.append(f"{name}_sum{_labels(labels)} {_number(entry['sum'])}")
        lines.append(f"{name}_count{_labels(labels)} "
                     f"{_number(entry['count'])}")

    helps = _help_texts()
    out: list[str] = []
    for name in sorted(families):
        kind, lines = families[name]
        help_text = helps.get(name)
        if help_text:
            out.append(f"# HELP {name} {_escape(help_text)}")
        out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    return "\n".join(out) + "\n" if out else ""


_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"               # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_+][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
)
_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def validate_exposition(text: str) -> int:
    """Check *text* line-by-line against the exposition grammar.

    Returns the number of sample lines; raises ``ValueError`` naming
    the first offending line.
    """
    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    samples = 0
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            if not _COMMENT.match(line):
                raise ValueError(f"line {number}: bad comment: {line!r}")
            continue
        if not _SAMPLE.match(line):
            raise ValueError(f"line {number}: bad sample: {line!r}")
        samples += 1
    return samples
