"""SWIM-style gossip membership: failure detection without a coordinator.

:class:`GossipAgent` is the per-server membership loop.  Each interval
it picks one random peer from its server's
:class:`~repro.server.placement.PlacementView` and probes it with a
``health`` request carrying this view's full epoch-stamped gossip table
(:meth:`PlacementView.gossip_delta`); the peer merges it and answers
with its own, so one round trip synchronizes both sides.  When the
direct probe fails, the agent asks up to *indirect* other live members
to reach the peer on its behalf (the ``probe`` wire op) before marking
it **suspect** — one flaky link must not take a healthy shard out of
the ring.  A suspicion that survives *suspect_after* seconds unrefuted
is confirmed **down** (the view mints a new epoch and the ring
reshapes); a member down for *remove_after* seconds is purged from the
table entirely.

Refutation closes the false-positive loop: a live member that learns —
via any merge — that the cluster thinks it is suspect or down
re-announces itself **alive at incarnation + 1**, which supersedes the
rumor everywhere it has spread (see ``placement._supersedes``).

The agent also keeps its :class:`~repro.server.pool.ConnectionPool`
honest: a member the table holds **down** is quarantined (a sticky down
mark that a mid-request reply cannot lift — see
:meth:`ConnectionPool.quarantine`), and the quarantine is released only
when the table says alive again.

Instruments (all in ``MetricsRegistry``'s catalog):
``repro_gossip_probe_seconds`` (direct-probe round trips),
``repro_gossip_suspects_total`` / ``repro_gossip_refutes_total`` /
``repro_gossip_down_total`` (lifecycle transitions this agent drove),
and ``repro_view_epoch`` (the epoch this view currently holds).
Events: ``member-suspect`` and ``member-refuted`` here, plus the pool's
``member-down`` / ``member-up`` on quarantine transitions.
"""

from __future__ import annotations

import random
import threading
from time import monotonic
from typing import Any

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, Stopwatch
from repro.server.client import ServerError, ValidationClient
from repro.server.placement import (
    Member,
    PlacementView,
    member_label,
    parse_member,
)
from repro.server.pool import ConnectionPool
from repro.server.protocol import ProtocolError

__all__ = [
    "DEFAULT_INDIRECT_PROBES",
    "DEFAULT_PROBE_INTERVAL",
    "DEFAULT_REMOVE_AFTER",
    "DEFAULT_SUSPECT_AFTER",
    "GossipAgent",
]

#: Seconds between probe rounds.
DEFAULT_PROBE_INTERVAL = 1.0

#: Seconds an unrefuted suspicion stands before it is confirmed down.
DEFAULT_SUSPECT_AFTER = 3.0

#: Seconds a down member lingers in the table (spreading the rumor)
#: before it is purged.  ``0`` disables purging.
DEFAULT_REMOVE_AFTER = 60.0

#: How many other members are asked to probe a peer indirectly before
#: a failed direct probe becomes a suspicion.
DEFAULT_INDIRECT_PROBES = 2


class GossipAgent:
    """The SWIM-ish probe/merge loop of one validation server.

    Parameters
    ----------
    view:
        The server's own :class:`PlacementView` — gossip mutates the
        very view the server's epoch gate and stats serve, which is
        what makes any shard an authoritative membership source.
    self_label:
        This server's member label (``host:port`` or unix path) — the
        identity defended by refutation and excluded from probing.
    seeds:
        Addresses to contact while the table knows no other peer
        (bootstrap/join); ignored once the view has live peers.
    connect:
        Connection factory for the probe pool, injectable for tests.
    """

    def __init__(
        self,
        view: PlacementView,
        self_label: str,
        seeds: tuple[Member, ...] = (),
        interval: float = DEFAULT_PROBE_INTERVAL,
        suspect_after: float | None = None,
        remove_after: float | None = None,
        indirect: int = DEFAULT_INDIRECT_PROBES,
        timeout: float = 2.0,
        connect: Any | None = None,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._view = view
        self._self_label = self_label
        self._seeds = tuple(seeds)
        self.interval = interval
        self.suspect_after = (
            suspect_after if suspect_after is not None else 3.0 * interval
        )
        self.remove_after = (
            remove_after if remove_after is not None else DEFAULT_REMOVE_AFTER
        )
        self.indirect = max(0, indirect)
        self._events = events if events is not None else EventLog()
        self._pool = ConnectionPool(
            timeout=timeout, connect=connect, events=self._events
        )
        self._pool.remember(self._seeds)
        self._rng = rng if rng is not None else random.Random()
        metrics = metrics if metrics is not None else MetricsRegistry(
            enabled=False
        )
        self._h_probe = metrics.histogram("repro_gossip_probe_seconds")
        self._m_suspects = metrics.counter("repro_gossip_suspects_total")
        self._m_refutes = metrics.counter("repro_gossip_refutes_total")
        self._m_down = metrics.counter("repro_gossip_down_total")
        self._g_epoch = metrics.gauge("repro_view_epoch")
        self._suspected_at: dict[str, float] = {}
        self._down_at: dict[str, float] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Announce this member alive and start the probe loop."""
        if self._thread is not None:
            return
        self._view.note_alive(self._self_label)
        self._g_epoch.set(float(self._view.epoch or 0))
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=f"gossip:{self._self_label}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        self._pool.close()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.step()
            except Exception:  # pragma: no cover - the loop must survive
                pass

    # -- wire payloads -------------------------------------------------------

    def gossip_payload(self) -> dict[str, Any]:
        """This view's full epoch-stamped table, ready for the wire."""
        return self._view.gossip_delta()

    def merge_wire(self, payload: Any) -> list[str]:
        """Merge a gossip object received on the wire (loose: anything
        malformed is ignored), then defend this member's own liveness
        and re-sync pool quarantines."""
        changed: list[str] = []
        if isinstance(payload, dict):
            epoch = payload.get("epoch")
            changed = self._view.merge_delta(
                payload.get("members") or [],
                epoch=epoch if isinstance(epoch, int) else None,
            )
        if changed:
            self._defend_self()
            self._sync_pool()
            self._g_epoch.set(float(self._view.epoch or 0))
        return changed

    # -- one round -----------------------------------------------------------

    def step(self) -> None:
        """One gossip round: probe a random peer, then sweep lifecycles."""
        peer = self._pick_peer()
        if peer is not None:
            self._probe(peer)
        self._defend_self()
        self._sweep()
        self._sync_pool()
        self._g_epoch.set(float(self._view.epoch or 0))

    def _pick_peer(self) -> str | None:
        peers = [
            label
            for label, (status, _inc) in self._view.membership().items()
            if label != self._self_label and status != "down"
        ]
        if not peers:
            seeds = [
                member_label(m)
                for m in self._seeds
                if member_label(m) != self._self_label
            ]
            if not seeds:
                return None
            return self._rng.choice(seeds)
        return self._rng.choice(peers)

    def _probe(self, label: str) -> None:
        watch = Stopwatch()
        try:
            reply = self._request(
                label,
                lambda client: client.health(gossip=self.gossip_payload()),
            )
        except (OSError, ProtocolError, ServerError):
            self._on_probe_failure(label)
            return
        self._h_probe.observe(watch.seconds)
        self.merge_wire(reply.get("gossip"))
        # The peer answered in person: refute any standing rumor.
        status = self._view.member_status(label)
        if status is not None and status[0] != "alive":
            self._view.note_alive(label)

    def _on_probe_failure(self, label: str) -> None:
        """A failed direct probe: try *indirect* relays, then suspect."""
        helpers = [
            helper
            for helper, (status, _inc) in self._view.membership().items()
            if status == "alive" and helper not in (self._self_label, label)
        ]
        self._rng.shuffle(helpers)
        for helper in helpers[: self.indirect]:
            try:
                reply = self._request(
                    helper,
                    lambda client: client.probe(
                        label, gossip=self.gossip_payload()
                    ),
                )
            except (OSError, ProtocolError, ServerError):
                continue
            self.merge_wire(reply.get("gossip"))
            if reply.get("reachable"):
                # Alive, just not reachable from here — no suspicion.
                status = self._view.member_status(label)
                if status is not None and status[0] == "suspect":
                    self._view.note_alive(label)
                return
        if self._view.suspect(label):
            self._suspected_at[label] = monotonic()
            self._m_suspects.inc()
            self._events.emit("member-suspect", member=label)

    def _request(self, label: str, fn: Any) -> dict[str, Any]:
        member = self._pool.address(label)
        if member is None:
            member = parse_member(label)
        client = None
        try:
            with self._pool.lock(member):
                client = self._pool.client(member)
                try:
                    return fn(client)
                except (ProtocolError, ServerError):
                    self._pool.discard(member, client)
                    raise
        except OSError:
            self._pool.mark_down(member, client)
            raise

    # -- lifecycle sweeps ----------------------------------------------------

    def _defend_self(self) -> None:
        """Refute a rumor about this member: alive at incarnation + 1."""
        status = self._view.member_status(self._self_label)
        if status is not None and status[0] != "alive":
            self._view.note_alive(self._self_label)
            self._m_refutes.inc()
            self._events.emit("member-refuted", member=self._self_label)

    def _sweep(self) -> None:
        """Confirm timed-out suspicions down; purge long-down members."""
        now = monotonic()
        for label, (status, _inc) in self._view.membership().items():
            if label == self._self_label:
                continue
            if status == "suspect":
                started = self._suspected_at.setdefault(label, now)
                if now - started >= self.suspect_after:
                    self._suspected_at.pop(label, None)
                    if self._view.confirm_down(label):
                        self._down_at[label] = now
                        self._m_down.inc()
                        self._events.emit("member-down", member=label)
            else:
                self._suspected_at.pop(label, None)
            if status == "down":
                started = self._down_at.setdefault(label, now)
                if self.remove_after and now - started >= self.remove_after:
                    self._down_at.pop(label, None)
                    if self._view.remove_member(label):
                        self._events.emit("member-removed", member=label)
            else:
                self._down_at.pop(label, None)

    def _sync_pool(self) -> None:
        """Align the probe pool's liveness with the membership table."""
        for label, (status, _inc) in self._view.membership().items():
            if label == self._self_label:
                continue
            try:
                member = self._pool.address(label) or parse_member(label)
            except ValueError:  # pragma: no cover - table labels parse
                continue
            if status == "down":
                if not self._pool.is_quarantined(member):
                    self._pool.quarantine(member)
            else:
                self._pool.lift_quarantine(member)
