"""The asyncio serving front: one warm registry, many connections.

This package turns the :mod:`repro.service` layer into a long-running
process serving traffic:

* :mod:`repro.server.protocol` — the newline-delimited JSON wire format
  (requests ``check``/``classify``/``validate``/``stats``; structured,
  recoverable errors).
* :mod:`repro.server.server` — :class:`ValidationServer` (TCP and Unix
  sockets, CPU-bound verdicts on threads or a process pool seeded with
  compiled artifacts by fingerprint, graceful draining shutdown) and
  :class:`ServerThread` (a server on its own event-loop thread).
* :mod:`repro.server.client` — :class:`ValidationClient`, the blocking
  NDJSON client used by tests, the benchmark, and the CI smoke job.

Start one from the shell with ``python -m repro serve``.
"""

from repro.server.client import ServerError, ValidationClient
from repro.server.protocol import (
    ALGORITHMS,
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    Request,
    decode_reply,
    decode_request,
    encode,
    error_payload,
    verdict_fields,
)
from repro.server.server import ArtifactMissError, ServerThread, ValidationServer

__all__ = [
    "ValidationServer",
    "ServerThread",
    "ValidationClient",
    "ServerError",
    "ArtifactMissError",
    "ProtocolError",
    "Request",
    "OPS",
    "ALGORITHMS",
    "MAX_LINE_BYTES",
    "decode_request",
    "decode_reply",
    "encode",
    "error_payload",
    "verdict_fields",
]
