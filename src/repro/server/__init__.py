"""The asyncio serving front: one warm registry, many connections.

This package turns the :mod:`repro.service` layer into a long-running
process serving traffic:

* :mod:`repro.server.protocol` — the newline-delimited JSON wire format
  (requests ``check``/``classify``/``validate``/``stats``; structured,
  recoverable errors).
* :mod:`repro.server.server` — :class:`ValidationServer` (TCP and Unix
  sockets, CPU-bound verdicts on threads or a process pool seeded with
  compiled artifacts by fingerprint, graceful draining shutdown) and
  :class:`ServerThread` (a server on its own event-loop thread).
* :mod:`repro.server.client` — :class:`ValidationClient`, the blocking
  NDJSON client (pipelining, streaming ``check-batch``, artifact
  transfer) used by tests, the benchmarks, and the CI smoke jobs.
* :mod:`repro.server.placement` — the placement core shared by client,
  server, and coordinator: :class:`ShardRing` (consistent hashing with
  virtual nodes and replica sets) and :class:`PlacementView` (the
  epoch-stamped view with a bounded fingerprint→owners memo and both
  wire reconciliation disciplines).
* :mod:`repro.server.pool` — :class:`ConnectionPool`, pooled blocking
  connections with per-member locks and liveness marks.
* :mod:`repro.server.router` — :class:`Router`, pluggable read
  policies (``primary-first`` / ``round-robin`` / ``least-inflight``)
  over the placement view.
* :mod:`repro.server.scheduler` — :class:`CorpusScheduler`,
  replica-aware corpus spreading (seed-window compile-once, window
  work-stealing, straggler hand-off).
* :mod:`repro.server.ring` — :class:`ShardedClient`, the routing
  client composed of the layers above (fingerprint routing to a live
  replica picked by the read policy, deterministic failover,
  compile-at-most-once artifact hand-off and replica fan-out,
  epoch-driven placement refresh).
* :mod:`repro.server.coordinator` — :class:`RingCoordinator`, the
  control plane: ``health``-probe-driven live membership, epoch-stamped
  ``ring-config`` publishing, and hot-artifact prefetch so a joining
  shard takes its first request warm.

Start one from the shell with ``python -m repro serve`` (or a local
ring of N shards with R replicas per schema via ``python -m repro
serve --ring N --replicas R``); inspect a running ring with ``python
-m repro ring-status ADDR[,ADDR...]``.
"""

from repro.server.client import ServerError, ValidationClient
from repro.server.coordinator import RingCoordinator
from repro.server.placement import PlacementView
from repro.server.pool import ConnectionPool
from repro.server.protocol import (
    ALGORITHMS,
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    READ_POLICIES,
    SCHEMA_OPS,
    BatchItem,
    ProtocolError,
    Request,
    decode_batch_item,
    decode_reply,
    decode_request,
    encode,
    error_payload,
    verdict_fields,
)
from repro.server.ring import (
    ShardedClient,
    ShardRing,
    ShardUnavailableError,
    member_label,
    parse_member,
)
from repro.server.router import DEFAULT_READ_POLICY, Router
from repro.server.scheduler import CorpusScheduler
from repro.server.server import (
    HANDLED_OPS,
    ArtifactMissError,
    ServerThread,
    ValidationServer,
)

__all__ = [
    "ValidationServer",
    "ServerThread",
    "ValidationClient",
    "ServerError",
    "ArtifactMissError",
    "ShardRing",
    "ShardedClient",
    "ShardUnavailableError",
    "PlacementView",
    "ConnectionPool",
    "Router",
    "CorpusScheduler",
    "RingCoordinator",
    "member_label",
    "parse_member",
    "READ_POLICIES",
    "DEFAULT_READ_POLICY",
    "ProtocolError",
    "Request",
    "BatchItem",
    "OPS",
    "SCHEMA_OPS",
    "ALGORITHMS",
    "ERROR_CODES",
    "HANDLED_OPS",
    "MAX_LINE_BYTES",
    "decode_request",
    "decode_batch_item",
    "decode_reply",
    "encode",
    "error_payload",
    "verdict_fields",
]
