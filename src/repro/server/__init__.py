"""The asyncio serving front: one warm registry, many connections.

This package turns the :mod:`repro.service` layer into a long-running
process serving traffic:

* :mod:`repro.server.protocol` — the newline-delimited JSON wire format
  (requests ``check``/``classify``/``validate``/``stats``; structured,
  recoverable errors).
* :mod:`repro.server.server` — :class:`ValidationServer` (TCP and Unix
  sockets, CPU-bound verdicts on threads or a process pool seeded with
  compiled artifacts by fingerprint, graceful draining shutdown) and
  :class:`ServerThread` (a server on its own event-loop thread).
* :mod:`repro.server.client` — :class:`ValidationClient`, the blocking
  NDJSON client (pipelining, streaming ``check-batch``, artifact
  transfer) used by tests, the benchmarks, and the CI smoke jobs.
* :mod:`repro.server.ring` — the horizontal-scaling layer:
  :class:`ShardRing` (consistent hashing with virtual nodes and replica
  sets) and :class:`ShardedClient` (fingerprint routing to any live
  replica, deterministic failover, compile-at-most-once artifact
  hand-off and replica fan-out, epoch-driven placement refresh).
* :mod:`repro.server.coordinator` — :class:`RingCoordinator`, the
  control plane: ``health``-probe-driven live membership, epoch-stamped
  ``ring-config`` publishing, and hot-artifact prefetch so a joining
  shard takes its first request warm.

Start one from the shell with ``python -m repro serve`` (or a local
ring of N shards with R replicas per schema via ``python -m repro
serve --ring N --replicas R``); inspect a running ring with ``python
-m repro ring-status ADDR[,ADDR...]``.
"""

from repro.server.client import ServerError, ValidationClient
from repro.server.coordinator import RingCoordinator
from repro.server.protocol import (
    ALGORITHMS,
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    SCHEMA_OPS,
    BatchItem,
    ProtocolError,
    Request,
    decode_batch_item,
    decode_reply,
    decode_request,
    encode,
    error_payload,
    verdict_fields,
)
from repro.server.ring import (
    ShardedClient,
    ShardRing,
    ShardUnavailableError,
    member_label,
    parse_member,
)
from repro.server.server import (
    HANDLED_OPS,
    ArtifactMissError,
    ServerThread,
    ValidationServer,
)

__all__ = [
    "ValidationServer",
    "ServerThread",
    "ValidationClient",
    "ServerError",
    "ArtifactMissError",
    "ShardRing",
    "ShardedClient",
    "ShardUnavailableError",
    "RingCoordinator",
    "member_label",
    "parse_member",
    "ProtocolError",
    "Request",
    "BatchItem",
    "OPS",
    "SCHEMA_OPS",
    "ALGORITHMS",
    "ERROR_CODES",
    "HANDLED_OPS",
    "MAX_LINE_BYTES",
    "decode_request",
    "decode_batch_item",
    "decode_reply",
    "encode",
    "error_payload",
    "verdict_fields",
]
