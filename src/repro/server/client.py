"""A small blocking client for the validation server.

:class:`ValidationClient` speaks the NDJSON protocol over a plain socket
— TCP or Unix domain — one request per call, responses decoded to dicts.
It is intentionally synchronous: the test suite, the CI smoke job, the
E11 benchmark, and shell-adjacent tooling all want a straight-line call
site, and the server's concurrency lives server-side.

>>> with ValidationClient.connect_tcp("127.0.0.1", 8750) as client:
...     reply = client.check("<!ELEMENT r (a*)><!ELEMENT a EMPTY>", "<r/>")
...     reply["potentially_valid"]
True
"""

from __future__ import annotations

import socket
from typing import Any

from repro.server import protocol

__all__ = ["ServerError", "ValidationClient"]


class ServerError(Exception):
    """An ``ok: false`` reply, surfaced with its structured code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ValidationClient:
    """One connection to a :class:`~repro.server.server.ValidationServer`."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")

    # -- constructors --------------------------------------------------------

    @classmethod
    def connect_tcp(
        cls, host: str, port: int, timeout: float | None = 30.0
    ) -> "ValidationClient":
        return cls(socket.create_connection((host, port), timeout=timeout))

    @classmethod
    def connect_unix(
        cls, path: str, timeout: float | None = 30.0
    ) -> "ValidationClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        return cls(sock)

    @classmethod
    def connect(cls, address: tuple[str, int] | str) -> "ValidationClient":
        """Connect to a ``(host, port)`` tuple or a Unix socket path."""
        if isinstance(address, tuple):
            return cls.connect_tcp(*address)
        return cls.connect_unix(address)

    # -- the wire ------------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one raw request object; return the decoded reply.

        Raises :class:`ServerError` for ``ok: false`` replies and
        :class:`ConnectionError` if the server hangs up mid-reply.
        """
        self._file.write(protocol.encode(payload))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply = protocol.decode_reply(line)
        if not reply.get("ok"):
            error = reply.get("error") or {}
            raise ServerError(
                str(error.get("code", "unknown")),
                str(error.get("message", "(no message)")),
            )
        return reply

    def send_raw(self, line: bytes) -> dict[str, Any]:
        """Ship pre-encoded bytes (protocol tests use this to send garbage)."""
        self._file.write(line)
        self._file.flush()
        reply_line = self._file.readline()
        if not reply_line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_reply(reply_line)

    # -- the ops -------------------------------------------------------------

    def check(
        self,
        dtd: str,
        doc: str,
        algorithm: str | None = None,
        root: str | None = None,
        id: Any = None,
    ) -> dict[str, Any]:
        """Potential-validity check; the reply carries the verdict fields."""
        return self.request(
            self._payload("check", dtd=dtd, doc=doc, algorithm=algorithm,
                          root=root, id=id)
        )

    def validate(
        self, dtd: str, doc: str, root: str | None = None, id: Any = None
    ) -> dict[str, Any]:
        """Standard DTD validation."""
        return self.request(
            self._payload("validate", dtd=dtd, doc=doc, root=root, id=id)
        )

    def classify(
        self, dtd: str, root: str | None = None, id: Any = None
    ) -> dict[str, Any]:
        """Definition 6-8 classification of a DTD."""
        return self.request(self._payload("classify", dtd=dtd, root=root, id=id))

    def stats(self) -> dict[str, Any]:
        """Server, registry, store, and dispatcher statistics."""
        return self.request({"op": "stats"})

    @staticmethod
    def _payload(op: str, **fields: Any) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": op}
        payload.update(
            (key, value) for key, value in fields.items() if value is not None
        )
        return payload

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ValidationClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
