"""A small blocking client for the validation server.

:class:`ValidationClient` speaks the NDJSON protocol over a plain socket
— TCP or Unix domain — responses decoded to dicts.  It is intentionally
synchronous: the test suite, the CI smoke job, the benchmarks, and
shell-adjacent tooling all want a straight-line call site, and the
server's concurrency lives server-side.

>>> with ValidationClient.connect_tcp("127.0.0.1", 8750) as client:
...     reply = client.check("<!ELEMENT r (a*)><!ELEMENT a EMPTY>", "<r/>")
...     reply["potentially_valid"]
True

Beyond one-request-per-round-trip calls, the client supports

* **pipelining** — :meth:`ValidationClient.pipeline` sends N requests
  before reading any reply and correlates the replies by their echoed
  ``id`` (falsy ids like ``0``, ``false``, and ``""`` included), so a
  high-latency link costs one round trip for the lot;
* **streaming batches** — :meth:`ValidationClient.check_batch` drives the
  wire protocol's ``check-batch`` op: one header, NDJSON item lines, and
  per-item replies read concurrently with a bounded send window (so
  neither side's socket buffer can deadlock the exchange);
* **artifact hand-off** — :meth:`ValidationClient.get_artifact` /
  :meth:`ValidationClient.put_artifact` move compiled schema artifacts
  between servers by fingerprint, the primitive the sharding ring's
  coordinator uses;
* **membership ops** — :meth:`ValidationClient.health` (the liveness
  probe, carrying the shard's ring view) and
  :meth:`ValidationClient.ring_config` (publish an epoch-stamped view),
  plus an optional ``epoch=`` on every routed op so stale placement is
  answered ``wrong-epoch`` with the refresh.

The wire format behind all of this is specified in
``docs/PROTOCOL.md``.
"""

from __future__ import annotations

import base64
import json
import socket
from typing import Any

from repro.server import protocol

__all__ = ["ServerError", "ValidationClient", "correlation_key"]


def correlation_key(id: Any) -> str:
    """A hashable key distinguishing every JSON ``id`` value.

    Python would conflate ``0``, ``0.0`` and ``False`` as dict keys; their
    JSON serializations (``0`` vs ``0.0`` vs ``false``) stay distinct, so
    pipelined correlation keeps them apart.
    """
    return json.dumps(id, sort_keys=True, separators=(",", ":"))


class ServerError(Exception):
    """An ``ok: false`` reply, surfaced with its structured code.

    The full decoded reply object rides along as :attr:`reply` (and its
    echoed correlation id as :attr:`id`), so pipelined callers can tell
    *which* request an error reply answers instead of losing everything
    but the message text.
    """

    def __init__(
        self, code: str, message: str, reply: dict[str, Any] | None = None
    ) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.reply: dict[str, Any] = reply if reply is not None else {}
        self.id: Any = self.reply.get("id")


def _raise_for_error(reply: dict[str, Any]) -> dict[str, Any]:
    if not reply.get("ok"):
        error = reply.get("error") or {}
        raise ServerError(
            str(error.get("code", "unknown")),
            str(error.get("message", "(no message)")),
            reply=reply,
        )
    return reply


class ValidationClient:
    """One connection to a :class:`~repro.server.server.ValidationServer`."""

    #: How many batch items may be in flight ahead of the replies read —
    #: bounds both sides' socket buffering so a large batch cannot
    #: write-write deadlock the exchange.
    BATCH_WINDOW = 64

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")

    # -- constructors --------------------------------------------------------

    @classmethod
    def connect_tcp(
        cls, host: str, port: int, timeout: float | None = 30.0
    ) -> "ValidationClient":
        return cls(socket.create_connection((host, port), timeout=timeout))

    @classmethod
    def connect_unix(
        cls, path: str, timeout: float | None = 30.0
    ) -> "ValidationClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        return cls(sock)

    @classmethod
    def connect(
        cls, address: tuple[str, int] | str, timeout: float | None = 30.0
    ) -> "ValidationClient":
        """Connect to a ``(host, port)`` tuple or a Unix socket path."""
        if isinstance(address, tuple):
            return cls.connect_tcp(*address, timeout=timeout)
        return cls.connect_unix(address, timeout=timeout)

    # -- the wire ------------------------------------------------------------

    def send(self, payload: dict[str, Any], flush: bool = True) -> None:
        """Write one request object without reading a reply (pipelining)."""
        self._file.write(protocol.encode(payload))
        if flush:
            self._file.flush()

    def recv(self) -> dict[str, Any]:
        """Read one reply object (``ok: false`` replies are returned, not
        raised — a pipelining caller correlates them by ``id``)."""
        return self._read_reply()

    def _read_reply(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            # readline returned a fragment at EOF: the server died with a
            # reply partially written.
            raise ConnectionError("server hung up mid-reply")
        return protocol.decode_reply(line)

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one raw request object; return the decoded reply.

        Raises :class:`ServerError` for ``ok: false`` replies (carrying
        the full reply object and its ``id``), :class:`ConnectionError`
        if the server hangs up before or during the reply, and
        :class:`~repro.server.protocol.ProtocolError` (code ``bad-reply``)
        if the reply line is not valid JSON.
        """
        self.send(payload)
        return _raise_for_error(self._read_reply())

    def send_raw(self, line: bytes) -> dict[str, Any]:
        """Ship pre-encoded bytes (protocol tests use this to send garbage)."""
        self._file.write(line)
        self._file.flush()
        return self._read_reply()

    def pipeline(self, payloads: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Send every request before reading any reply; correlate by ``id``.

        Returns one reply per payload, **in payload order**.  When every
        payload carries an ``"id"`` key (any JSON value — ``0``, ``false``
        and ``""`` work) the replies are matched by their echoed ids, so
        the result stays correct even if reply order ever diverged from
        request order; otherwise arrival order is trusted.  Error replies
        are returned in place, not raised — the caller inspects ``ok``.
        """
        for payload in payloads:
            self.send(payload, flush=False)
        self._file.flush()
        replies = [self._read_reply() for _ in payloads]
        if not all("id" in payload for payload in payloads):
            return replies
        by_id: dict[str, list[dict[str, Any]]] = {}
        for reply in replies:
            by_id.setdefault(correlation_key(reply.get("id")), []).append(reply)
        ordered: list[dict[str, Any]] = []
        for payload in payloads:
            bucket = by_id.get(correlation_key(payload["id"]))
            if not bucket:
                raise ConnectionError(
                    f"no reply correlates with request id {payload['id']!r}"
                )
            ordered.append(bucket.pop(0))
        return ordered

    # -- the ops -------------------------------------------------------------

    def check(
        self,
        dtd: str,
        doc: str,
        algorithm: str | None = None,
        root: str | None = None,
        id: Any = None,
        epoch: int | None = None,
        trace: str | None = None,
        coarse: bool | None = None,
    ) -> dict[str, Any]:
        """Potential-validity check; the reply carries the verdict fields.

        *epoch*, when given, stamps the request with the ring epoch this
        client routed under; a shard holding a newer view answers with a
        ``wrong-epoch`` error carrying the refresh (see ``ring-config``).
        *trace*, when given, opts the request into tracing: the reply
        gains a ``trace`` object with the server's per-phase span.
        *coarse*, when true, asks the server to stamp the schema's
        base64 admission summary into the reply under ``"coarse"``.
        """
        return self.request(
            self._payload("check", dtd=dtd, doc=doc, algorithm=algorithm,
                          root=root, id=id, epoch=epoch, trace=trace,
                          coarse=coarse)
        )

    def check_batch(
        self,
        dtd: str,
        docs: list[str],
        algorithm: str | None = None,
        root: str | None = None,
        id: Any = None,
        window: int | None = None,
        epoch: int | None = None,
        trace: str | None = None,
        coarse: bool | None = None,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Stream *docs* through one ``check-batch`` op on this connection.

        Returns ``(item_replies, trailer)`` with one reply per document in
        document order (items are correlated by their 0-based index, which
        the client supplies as each item's ``id``).  Item replies may be
        ``ok: false`` for per-document defects; the batch still completes.
        At most *window* items (default :data:`BATCH_WINDOW`) are in
        flight ahead of the replies read.  *epoch* stamps the header with
        the routing epoch (a stale one is a ``wrong-epoch`` header error).
        """
        window = self.BATCH_WINDOW if window is None else max(1, window)
        header = self._payload(
            "check-batch", dtd=dtd, algorithm=algorithm, root=root, id=id,
            epoch=epoch, trace=trace, coarse=coarse,
        )
        header["count"] = len(docs)
        self.send(header, flush=False)
        replies: list[dict[str, Any] | None] = [None] * len(docs)
        sent = received = 0
        while received < len(docs):
            try:
                # Refill the send window in one write: encode the pending
                # chunk into a single buffer instead of a write()+encode
                # round per item (per-item writes dominated large-batch
                # client profiles).  Refilling only once in-flight drops to
                # half the window keeps the chunks large while never
                # letting more than *window* items ride ahead of the reads.
                if sent < len(docs) and sent - received <= window // 2:
                    stop = min(len(docs), received + window)
                    self._file.write(
                        b"".join(
                            protocol.encode({"doc": docs[index], "id": index})
                            for index in range(sent, stop)
                        )
                    )
                    sent = stop
                self._file.flush()
            except (BrokenPipeError, ConnectionResetError):
                # The server abandoned the batch (e.g. a bad header) and
                # closed; its structured error reply is still readable.
                _raise_for_error(self._read_reply())
                raise
            reply = self._read_reply()
            if reply.get("op") != "check-batch-item":
                # The header itself failed (bad dtd, bad count): the server
                # answered with a plain error and abandoned the batch.
                _raise_for_error(reply)
                raise ConnectionError(
                    f"expected a check-batch-item reply, got {reply.get('op')!r}"
                )
            index = reply.get("id")
            if not isinstance(index, int) or not 0 <= index < len(docs):
                raise ConnectionError(
                    f"batch item reply has unknown id {index!r}"
                )
            replies[index] = reply
            received += 1
        self._file.flush()  # an empty batch never enters the loop above
        trailer = _raise_for_error(self._read_reply())
        if trailer.get("op") != "check-batch":
            raise ConnectionError(
                f"expected the check-batch trailer, got {trailer.get('op')!r}"
            )
        assert all(reply is not None for reply in replies)
        return replies, trailer  # type: ignore[return-value]

    def validate(
        self,
        dtd: str,
        doc: str,
        root: str | None = None,
        id: Any = None,
        epoch: int | None = None,
        trace: str | None = None,
    ) -> dict[str, Any]:
        """Standard DTD validation."""
        return self.request(
            self._payload("validate", dtd=dtd, doc=doc, root=root, id=id,
                          epoch=epoch, trace=trace)
        )

    def classify(
        self,
        dtd: str,
        root: str | None = None,
        id: Any = None,
        epoch: int | None = None,
    ) -> dict[str, Any]:
        """Definition 6-8 classification of a DTD."""
        return self.request(
            self._payload("classify", dtd=dtd, root=root, id=id, epoch=epoch)
        )

    def stats(self) -> dict[str, Any]:
        """Server, registry, store, hot-fingerprint, and dispatch statistics."""
        return self.request({"op": "stats"})

    def metrics(self) -> dict[str, Any]:
        """The metrics scrape: a mergeable snapshot (``"metrics"``) plus
        Prometheus text exposition (``"prometheus"``)."""
        return self.request({"op": "metrics"})

    def health(
        self, gossip: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """The liveness probe: status, uptime, and the shard's ring view.

        *gossip*, when given, piggybacks the caller's membership table
        on the probe (the shard merges it and answers with its own
        under ``"gossip"``) — the anti-entropy exchange of
        coordinator-less rings.
        """
        return self.request(self._payload("health", gossip=gossip))

    def probe(
        self, target: str, gossip: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Ask this shard to probe *target*'s health (the SWIM indirect
        probe).  The reply carries ``"reachable"`` plus the prober's own
        gossip table; like ``health``, the op is never epoch-gated."""
        return self.request(
            self._payload("probe", target=target, gossip=gossip)
        )

    def ring_config(
        self,
        epoch: int,
        members: list[str],
        replica_count: int = 1,
        read_policy: str | None = None,
    ) -> dict[str, Any]:
        """Publish a ring view (epoch + member labels) to this shard.

        The shard adopts the view only when *epoch* is at least as new as
        the one it holds; an older push raises :class:`ServerError` with
        code ``wrong-epoch`` carrying the shard's current view.
        *read_policy*, when given, is advertised with the view so
        routing clients without an explicit policy follow it.
        """
        payload: dict[str, Any] = {
            "op": "ring-config",
            "epoch": epoch,
            "members": list(members),
            "replica_count": replica_count,
        }
        if read_policy is not None:
            payload["read_policy"] = read_policy
        return self.request(payload)

    def get_artifact(self, fingerprint: str) -> bytes:
        """The server's compiled artifact for *fingerprint*, as the
        :mod:`repro.service.store` wire/file format bytes."""
        reply = self.request({"op": "get-artifact", "fingerprint": fingerprint})
        return base64.b64decode(reply["artifact"].encode("ascii"))

    def get_coarse(self, fingerprint: str) -> bytes:
        """The server's coarse admission summary for *fingerprint*, as the
        pickled :class:`~repro.core.coarse.CoarseSummary` bytes — the
        few-hundred-byte payload a ring client caches to pre-filter
        batches locally."""
        reply = self.request({"op": "get-coarse", "fingerprint": fingerprint})
        return base64.b64decode(reply["coarse"].encode("ascii"))

    def put_artifact(self, fingerprint: str, blob: bytes) -> dict[str, Any]:
        """Seed an artifact (store-format *blob*) into the server."""
        return self.request(
            {
                "op": "put-artifact",
                "fingerprint": fingerprint,
                "artifact": base64.b64encode(blob).decode("ascii"),
            }
        )

    @staticmethod
    def _payload(op: str, **fields: Any) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": op}
        payload.update(
            (key, value) for key, value in fields.items() if value is not None
        )
        return payload

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            # Closing the buffered file flushes any bytes a failed call
            # left behind; with the server already gone that is EPIPE,
            # which must not mask the close itself.
            self._file.close()
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ValidationClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
