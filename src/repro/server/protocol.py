"""The newline-delimited JSON wire protocol of the validation server.

One request per line, one response per line, UTF-8 JSON either way.

Request object::

    {"op": "check" | "classify" | "validate" | "stats",
     "dtd": "<!ELEMENT ...>",        # required except for "stats"
     "doc": "<r>...</r>",            # required for "check"/"validate"
     "algorithm": "machine" | "figure5" | "earley" | "auto",  # optional
     "root": "r",                    # optional DTD root override
     "id": <any JSON value>}         # optional, echoed back verbatim

Responses always carry ``"ok"``.  Success responses echo ``"op"`` (and
``"id"`` when given) plus op-specific fields — the verdict, wall time in
milliseconds, and the schema's registry disposition::

    {"ok": true, "op": "check", "potentially_valid": true, "failures": [],
     "depth_limited": false, "algorithm": "machine",
     "dispatch_reason": "...",                  # present when dispatched
     "elapsed_ms": 0.41,
     "schema": {"fingerprint": "9f...", "registry": "hit"}}

Failures are structured, never a dropped connection::

    {"ok": false, "error": {"code": "bad-json", "message": "..."}}

Error codes: ``bad-json`` (line is not JSON), ``bad-request`` (JSON but
not a valid request object), ``bad-dtd`` / ``bad-document`` (payload does
not parse), ``unsupported-op``, ``internal``.  A protocol-level error is
recoverable — the server keeps the connection open and reads the next
line — so one malformed request never costs a client its warm socket.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.pv import PVVerdict

__all__ = [
    "OPS",
    "ALGORITHMS",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "Request",
    "decode_request",
    "encode",
    "decode_reply",
    "error_payload",
    "verdict_fields",
]

#: Operations the server understands.
OPS = ("check", "classify", "validate", "stats")

#: Accepted ``algorithm`` values; ``auto`` routes through the dispatcher.
ALGORITHMS = ("machine", "figure5", "earley", "auto")

#: Upper bound on one request line (shields the server from unbounded
#: buffering; generous enough for multi-megabyte documents).
MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(Exception):
    """A request the server rejects with a structured error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """A decoded, field-validated request line."""

    op: str
    dtd: str | None = None
    doc: str | None = None
    algorithm: str | None = None
    root: str | None = None
    id: Any = field(default=None)


def decode_request(line: str | bytes) -> Request:
    """Parse one request line, raising :class:`ProtocolError` on defects."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError("bad-json", f"request is not UTF-8: {error}")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError("bad-json", f"request is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(
            "unsupported-op",
            f"op must be one of {', '.join(OPS)} (got {op!r})",
        )
    for key in ("dtd", "doc", "root"):
        value = payload.get(key)
        if value is not None and not isinstance(value, str):
            raise ProtocolError("bad-request", f"{key!r} must be a string")
    algorithm = payload.get("algorithm")
    if algorithm is not None and algorithm not in ALGORITHMS:
        raise ProtocolError(
            "bad-request",
            f"algorithm must be one of {', '.join(ALGORITHMS)} (got {algorithm!r})",
        )
    request = Request(
        op=op,
        dtd=payload.get("dtd"),
        doc=payload.get("doc"),
        algorithm=algorithm,
        root=payload.get("root"),
        id=payload.get("id"),
    )
    if request.op != "stats" and request.dtd is None:
        raise ProtocolError("bad-request", f"op {op!r} requires 'dtd'")
    if request.op in ("check", "validate") and request.doc is None:
        raise ProtocolError("bad-request", f"op {op!r} requires 'doc'")
    return request


def encode(payload: dict[str, Any]) -> bytes:
    """One response (or request) object as a newline-terminated JSON line."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_reply(line: str | bytes) -> dict[str, Any]:
    """Parse a response line (the client side of :func:`encode`)."""
    payload = json.loads(line)
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError("bad-reply", "reply must be an object with 'ok'")
    return payload


def error_payload(code: str, message: str, id: Any = None) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if id is not None:
        payload["id"] = id
    return payload


def verdict_fields(verdict: PVVerdict) -> dict[str, Any]:
    """The JSON rendering of a potential-validity verdict."""
    return {
        "potentially_valid": verdict.potentially_valid,
        "failures": [
            {
                "path": failure.path,
                "element": failure.element,
                "reason": failure.reason,
            }
            for failure in verdict.failures
        ],
        "depth_limited": verdict.depth_limited,
    }
