"""The newline-delimited JSON wire protocol of the validation server.

One request per line, one response per line, UTF-8 JSON either way.

Request object::

    {"op": "check" | "classify" | "validate" | "stats"
           | "check-batch" | "put-artifact" | "get-artifact"
           | "get-coarse" | "health" | "ring-config" | "metrics"
           | "probe",
     "dtd": "<!ELEMENT ...>",        # required for schema-carrying ops
     "doc": "<r>...</r>",            # required for "check"/"validate"
     "algorithm": "machine" | "kernel" | "figure5" | "earley"
                | "auto",                # optional
     "root": "r",                    # optional DTD root override
     "fingerprint": "9f...",         # required for the artifact ops
     "artifact": "<base64>",         # required for "put-artifact"
     "coarse": true,                 # optional: stamp the admission
                                     # summary into the check reply
     "count": 12,                    # optional item count for "check-batch"
     "epoch": 3,                     # optional ring epoch (see below)
     "members": ["host:port", ...],  # required for "ring-config"
     "replica_count": 2,             # optional for "ring-config"
     "read_policy": "round-robin",   # optional for "ring-config"
     "gossip": {"epoch": 3,          # optional piggybacked membership
                "members": [{"member": "host:port", "status": "alive",
                             "incarnation": 0}, ...]},
     "target": "host:port",          # required for "probe"
     "trace": "f3a9c2d417b8e05a",    # optional opt-in trace id
     "id": <any JSON value>}         # optional, echoed back verbatim

Observability ops and tracing
-----------------------------
``metrics`` answers with the server's metrics snapshot (counters,
gauges, log-bucketed latency histograms — the :mod:`repro.obs.metrics`
snapshot shape, mergeable across shards) plus a ready-rendered
Prometheus text exposition under ``"prometheus"``.  Like ``health`` it
carries no payload and is **not** epoch-gated: scrapers talk to a shard
directly, not through ring routing.  A request carrying a non-empty
``trace`` string opts into tracing: the success reply (for
``check-batch``, the trailer; item replies get a timing stub) gains a
``"trace": {"id", "span"}`` object whose span records the member, op,
total wall time, and the per-phase timings the server measured.
Requests without the field pay nothing.

Streaming batch op
------------------
``check-batch`` is one request header followed by NDJSON *item* lines —
``{"doc": "<r>...</r>", "id": ...}`` — either exactly ``count`` of them
(when the header carries a count) or terminated by a blank line.  The
server replies with one ``check-batch-item`` line per item as it is
checked (correlated by the item's ``id``, defaulting to its 0-based
index) and a final ``check-batch`` trailer summarizing the run.  The DTD
is resolved once for the whole batch, and item replies stream back while
later items are still in flight, so a batch over one connection costs one
round trip instead of one per document.

Artifact hand-off ops
---------------------
``get-artifact`` returns a compiled schema artifact held by this server —
the :mod:`repro.service.store` file format (versioned header + pickle),
base64-encoded — and ``put-artifact`` seeds one into the registry (and
the disk store, when attached).  Together they let a ring coordinator
move artifacts between shards by fingerprint so each schema is compiled
at most once ring-wide.

``get-coarse`` is the lightweight sibling: it returns only the
few-hundred-byte coarse admission summary
(:mod:`repro.core.coarse`, pickled and base64-encoded) for a
fingerprint this server holds, so a routing client can pre-filter
batches locally without pulling the full artifact.  A ``check`` or
``check-batch`` request carrying ``"coarse": true`` additionally gets
the summary stamped into the (trailer) reply under ``"coarse"`` — the
first-miss path that saves the extra round trip.

Membership ops and epochs
-------------------------
``health`` is the liveness probe: it carries no payload and answers with
the server's status, uptime, and — when a ring view has been published
to it — the current ring ``epoch``, ``members``, and ``replica_count``.
``ring-config`` publishes a ring view to a shard: a monotonically
increasing ``epoch``, the member labels of the ring, the replica
count, and optionally a ``read_policy`` the ring advertises to routing
clients (one of :data:`READ_POLICIES`; clients with no explicit policy
follow it).  A shard holding a view stamps ``"epoch"`` into every success
reply; a request carrying an ``epoch`` **older** than the shard's view
is answered with error code ``wrong-epoch`` whose error object carries
the shard's current ``epoch``, ``members``, and ``replica_count`` — the
full refresh a client needs to re-resolve placement without restarting.
A ``ring-config`` older than the view already held is rejected the same
way, so two racing membership changes converge on the newest epoch.

Gossip membership
-----------------
Servers running with gossip enabled maintain the SWIM-style membership
table of :class:`~repro.server.placement.PlacementView` and exchange it
as ``"gossip"`` payloads: a ``health`` request may carry one (the
server merges it) and the ``health`` reply carries the server's own
table back; the ``probe`` op asks a shard to reach ``target``'s
``health`` on the asker's behalf (the SWIM indirect probe) and answers
``{"ok": true, "op": "probe", "target": ..., "reachable": true|false}``
plus the prober's gossip.  Success replies additionally stamp a
``"load": {"inflight", "queue_depth"}`` object (server-reported truth
for ``least-inflight`` routing) whenever the shard holds a ring view.
Like ``health``, ``probe`` is not epoch-gated.  Gossip payloads are
merged loosely: malformed entries are skipped, never rejected — a
membership rumor must not poison a liveness probe.

.. warning:: **Trust model.**  The protocol has no authentication, and
   ``put-artifact`` payloads are unpickled (after header and fingerprint
   verification, which cannot make unpickling itself safe).  Run servers
   only on trusted networks — Unix sockets, localhost, or a private
   segment between your own shards — exactly like the disk store, which
   already trusts its pickle files.  TLS + auth on TCP endpoints is
   named in the roadmap; until then, do not expose the port publicly.

Responses always carry ``"ok"``.  Success responses echo ``"op"`` (and
``"id"`` when given) plus op-specific fields — the verdict, wall time in
milliseconds, and the schema's registry disposition::

    {"ok": true, "op": "check", "potentially_valid": true, "failures": [],
     "depth_limited": false, "algorithm": "machine",
     "dispatch_reason": "...",                  # present when dispatched
     "elapsed_ms": 0.41,
     "schema": {"fingerprint": "9f...", "registry": "hit"}}

Failures are structured, never a dropped connection::

    {"ok": false, "error": {"code": "bad-json", "message": "..."}}

Error codes: ``bad-json`` (line is not JSON), ``bad-request`` (JSON but
not a valid request object), ``bad-dtd`` / ``bad-document`` (payload does
not parse), ``bad-item`` (a batch item line is defective),
``bad-artifact`` (a ``put-artifact`` blob fails decoding or fingerprint
verification), ``artifact-miss`` (``get-artifact`` for a fingerprint this
server does not hold), ``wrong-epoch`` (the request's ring epoch is
older than the shard's view; the error object carries the current view),
``unsupported-op``, ``internal``.  A
protocol-level error is recoverable — the server keeps the connection
open and reads the next line — so one malformed request never costs a
client its warm socket.  On the client side, a reply line that is not
valid JSON raises :class:`ProtocolError` with code ``bad-reply`` (the
same structured-failure contract, pointed the other way).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.pv import PVVerdict

__all__ = [
    "OPS",
    "SCHEMA_OPS",
    "ALGORITHMS",
    "ERROR_CODES",
    "READ_POLICIES",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "Request",
    "BatchItem",
    "decode_request",
    "decode_batch_item",
    "encode",
    "decode_reply",
    "error_payload",
    "verdict_fields",
]

#: Operations the server understands.
OPS = (
    "check",
    "classify",
    "validate",
    "stats",
    "check-batch",
    "put-artifact",
    "get-artifact",
    "get-coarse",
    "health",
    "ring-config",
    "metrics",
    "probe",
)

#: Every structured error code a server may answer with, plus the two
#: client-side codes that reuse the same ``{"code", "message"}`` shape:
#: ``bad-reply`` (a garbled reply line) and ``unreachable`` (no replica
#: of a fingerprint answered — raised by the ring client and used in
#: ``check_corpus`` failure entries).  ``docs/PROTOCOL.md`` documents
#: each one; a test diffs that document against this tuple.
ERROR_CODES = (
    "bad-json",
    "bad-request",
    "bad-dtd",
    "bad-document",
    "bad-item",
    "bad-artifact",
    "artifact-miss",
    "wrong-epoch",
    "unsupported-op",
    "internal",
    "bad-reply",
    "unreachable",
)

#: Operations that carry a DTD and therefore require the ``dtd`` field.
SCHEMA_OPS = ("check", "classify", "validate", "check-batch")

#: Accepted ``algorithm`` values; ``auto`` routes through the dispatcher.
ALGORITHMS = ("machine", "kernel", "figure5", "earley", "auto")

#: Read policies a ring may advertise (``ring-config``) and a routing
#: client may apply: ``primary-first`` serves every read from a
#: fingerprint's primary replica (the compatibility default),
#: ``round-robin`` rotates reads across the live replica set, and
#: ``least-inflight`` picks the live replica with the fewest requests
#: currently in flight from this client.
READ_POLICIES = ("primary-first", "round-robin", "least-inflight")

#: Upper bound on one request line (shields the server from unbounded
#: buffering; generous enough for multi-megabyte documents).
MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(Exception):
    """A request the server rejects with a structured error response.

    *details*, when given, is merged into the wire error object — the
    mechanism ``wrong-epoch`` uses to carry the current ring view
    (``epoch``/``members``/``replica_count``) alongside code and message.
    """

    def __init__(
        self, code: str, message: str, details: dict[str, Any] | None = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.details = details


@dataclass(frozen=True)
class Request:
    """A decoded, field-validated request line."""

    op: str
    dtd: str | None = None
    doc: str | None = None
    algorithm: str | None = None
    root: str | None = None
    fingerprint: str | None = None
    artifact: str | None = None
    coarse: bool | None = None
    count: int | None = None
    epoch: int | None = None
    members: list[str] | None = None
    replica_count: int | None = None
    read_policy: str | None = None
    gossip: dict[str, Any] | None = None
    target: str | None = None
    trace: str | None = None
    id: Any = field(default=None)


@dataclass(frozen=True)
class BatchItem:
    """One decoded ``check-batch`` item line."""

    doc: str
    id: Any = field(default=None)


def decode_request(line: str | bytes) -> Request:
    """Parse one request line, raising :class:`ProtocolError` on defects."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError("bad-json", f"request is not UTF-8: {error}")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError("bad-json", f"request is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(
            "unsupported-op",
            f"op must be one of {', '.join(OPS)} (got {op!r})",
        )
    for key in ("dtd", "doc", "root", "fingerprint", "artifact", "trace",
                "target"):
        value = payload.get(key)
        if value is not None and not isinstance(value, str):
            raise ProtocolError("bad-request", f"{key!r} must be a string")
    trace = payload.get("trace")
    if trace is not None and not trace:
        raise ProtocolError("bad-request", "'trace' must be a non-empty string")
    algorithm = payload.get("algorithm")
    if algorithm is not None and algorithm not in ALGORITHMS:
        raise ProtocolError(
            "bad-request",
            f"algorithm must be one of {', '.join(ALGORITHMS)} (got {algorithm!r})",
        )
    count = payload.get("count")
    if count is not None and (isinstance(count, bool) or not isinstance(count, int)
                             or count < 0):
        raise ProtocolError("bad-request", "'count' must be a non-negative integer")
    epoch = payload.get("epoch")
    if epoch is not None and (isinstance(epoch, bool) or not isinstance(epoch, int)
                              or epoch < 0):
        raise ProtocolError("bad-request", "'epoch' must be a non-negative integer")
    members = payload.get("members")
    if members is not None and (
        not isinstance(members, list)
        or not members
        or not all(isinstance(m, str) and m for m in members)
    ):
        raise ProtocolError(
            "bad-request", "'members' must be a non-empty list of member labels"
        )
    replica_count = payload.get("replica_count")
    if replica_count is not None and (
        isinstance(replica_count, bool)
        or not isinstance(replica_count, int)
        or replica_count < 1
    ):
        raise ProtocolError(
            "bad-request", "'replica_count' must be a positive integer"
        )
    read_policy = payload.get("read_policy")
    if read_policy is not None and read_policy not in READ_POLICIES:
        raise ProtocolError(
            "bad-request",
            "'read_policy' must be one of "
            f"{', '.join(READ_POLICIES)} (got {read_policy!r})",
        )
    gossip = payload.get("gossip")
    if gossip is not None and not isinstance(gossip, dict):
        raise ProtocolError("bad-request", "'gossip' must be an object")
    coarse = payload.get("coarse")
    if coarse is not None and not isinstance(coarse, bool):
        raise ProtocolError("bad-request", "'coarse' must be a boolean")
    request = Request(
        op=op,
        dtd=payload.get("dtd"),
        doc=payload.get("doc"),
        algorithm=algorithm,
        root=payload.get("root"),
        fingerprint=payload.get("fingerprint"),
        artifact=payload.get("artifact"),
        coarse=coarse,
        count=count,
        epoch=epoch,
        members=members,
        replica_count=replica_count,
        read_policy=read_policy,
        gossip=gossip,
        target=payload.get("target"),
        trace=trace,
        id=payload.get("id"),
    )
    if request.op in SCHEMA_OPS and request.dtd is None:
        raise ProtocolError("bad-request", f"op {op!r} requires 'dtd'")
    if request.op in ("check", "validate") and request.doc is None:
        raise ProtocolError("bad-request", f"op {op!r} requires 'doc'")
    if (
        request.op in ("put-artifact", "get-artifact", "get-coarse")
        and request.fingerprint is None
    ):
        raise ProtocolError("bad-request", f"op {op!r} requires 'fingerprint'")
    if request.op == "put-artifact" and request.artifact is None:
        raise ProtocolError("bad-request", "op 'put-artifact' requires 'artifact'")
    if request.op == "ring-config" and (request.epoch is None or members is None):
        raise ProtocolError(
            "bad-request", "op 'ring-config' requires 'epoch' and 'members'"
        )
    if request.op == "probe" and not request.target:
        raise ProtocolError("bad-request", "op 'probe' requires 'target'")
    return request


def decode_batch_item(line: str | bytes) -> BatchItem:
    """Parse one ``check-batch`` item line, raising on defects.

    Every defect carries code ``bad-item`` so the server can answer it as
    a structured per-item error and keep the batch (and the connection)
    alive.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError("bad-item", f"batch item is not UTF-8: {error}")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError("bad-item", f"batch item is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError("bad-item", "batch item must be a JSON object")
    doc = payload.get("doc")
    if not isinstance(doc, str):
        raise ProtocolError("bad-item", "batch item requires a string 'doc'")
    return BatchItem(doc=doc, id=payload.get("id"))


def encode(payload: dict[str, Any]) -> bytes:
    """One response (or request) object as a newline-terminated JSON line."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_reply(line: str | bytes) -> dict[str, Any]:
    """Parse a response line (the client side of :func:`encode`).

    Failures are structured here too: a reply line that is not UTF-8 or
    not valid JSON raises :class:`ProtocolError` with code ``bad-reply``
    rather than leaking a raw :class:`json.JSONDecodeError` (or
    :class:`UnicodeDecodeError`) to the caller.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError("bad-reply", f"reply is not UTF-8: {error}")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError("bad-reply", f"reply is not valid JSON: {error}")
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError("bad-reply", "reply must be an object with 'ok'")
    return payload


def error_payload(
    code: str,
    message: str,
    id: Any = None,
    details: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A structured ``ok: false`` reply object.

    *details* keys are merged into the error object (``code`` and
    ``message`` always win) — how ``wrong-epoch`` ships the current ring
    view to the client that needs it.
    """
    error: dict[str, Any] = dict(details) if details else {}
    error["code"] = code
    error["message"] = message
    payload: dict[str, Any] = {"ok": False, "error": error}
    if id is not None:
        payload["id"] = id
    return payload


def verdict_fields(verdict: PVVerdict) -> dict[str, Any]:
    """The JSON rendering of a potential-validity verdict."""
    return {
        "potentially_valid": verdict.potentially_valid,
        "failures": [
            {
                "path": failure.path,
                "element": failure.element,
                "reason": failure.reason,
            }
            for failure in verdict.failures
        ],
        "depth_limited": verdict.depth_limited,
    }
