"""Schema sharding across validation servers: the routing client.

This module is the data plane of the horizontal-scaling layer over
:mod:`repro.server`: a fleet of independent
:class:`~repro.server.server.ValidationServer` processes ("shards"),
each with its own registry (and optionally its own disk store), fronted
by a client that routes every request to a shard owning the request's
schema.  It composes the focused layers of the ring stack:

* :mod:`repro.server.placement` — :class:`ShardRing` (consistent
  hashing with virtual nodes and replica sets) and
  :class:`~repro.server.placement.PlacementView` (the epoch-stamped
  single source of truth for membership and ownership, shared with the
  server and the coordinator).  Re-exported here for compatibility.
* :mod:`repro.server.pool` — :class:`~repro.server.pool.ConnectionPool`
  (pooled blocking connections with liveness marks).
* :mod:`repro.server.router` — :class:`~repro.server.router.Router`
  (pluggable read policies: ``primary-first``, ``round-robin``,
  ``least-inflight``).
* :mod:`repro.server.scheduler` —
  :class:`~repro.server.scheduler.CorpusScheduler` (replica-aware
  corpus spreading with straggler hand-off).

:class:`ShardedClient` is the blocking coordinator over those layers.
It fingerprints each request's DTD locally (memoized), routes ``check``
/ ``classify`` / ``validate`` / ``check-batch`` to a live replica of
the owning set picked by the read policy, and fails over
deterministically along the ring's preference order when a shard is
unreachable.  When routing would land a schema on a shard that has not
seen it while another shard already holds the compiled artifact, the
client moves the artifact first — ``get-artifact`` from a holder,
``put-artifact`` to the target — and when a shard is observed compiling
a schema the artifact is fanned out to the rest of its replica set, so
each schema is compiled **at most once ring-wide** and killing any
single replica loses neither checks nor compiled work.

Live membership: replies from shards holding a published ring view are
stamped with the view's **epoch**; a request routed under a stale epoch
is answered ``wrong-epoch`` together with the current member list, and
the client adopts the new view — which also invalidates every cached
placement decision — and re-resolves, no restart.
:class:`repro.server.coordinator.RingCoordinator` is the piece that
probes shard health and publishes those views.
"""

from __future__ import annotations

import base64
import threading
from collections import OrderedDict
from typing import Any, Callable, Iterable

from repro.core.coarse import CoarseChecker, decode_coarse
from repro.dtd.parser import parse_dtd
from repro.errors import ReproError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.trace import TraceContext
from repro.server.client import ServerError, ValidationClient
from repro.server.placement import (
    DEFAULT_VNODES,
    Member,
    PlacementView,
    ShardRing,
    member_label,
    parse_member,
)
from repro.server.pool import ConnectionPool
from repro.server.protocol import ProtocolError, READ_POLICIES
from repro.server.router import Router
from repro.server.scheduler import DEFAULT_WINDOW, CorpusScheduler
from repro.service.compiled import schema_fingerprint
from repro.xmlmodel.parser import parse_xml

__all__ = [
    "Member",
    "ShardRing",
    "ShardedClient",
    "ShardUnavailableError",
    "member_label",
    "parse_member",
    "READ_POLICIES",
]

#: How many wrong-epoch refreshes one routed call will follow before
#: giving up — bounds the retry loop when membership churns faster than
#: the client can re-resolve.
_MAX_EPOCH_REFRESHES = 4

#: Bound on the coordinator's (dtd text, root) -> fingerprint memo.
_FINGERPRINT_MEMO_SIZE = 1024

#: Bound on the per-fingerprint coarse-summary cache (each entry is a
#: few hundred bytes plus a tiny checker).
_COARSE_CACHE_SIZE = 256


class ShardUnavailableError(ServerError, ConnectionError):
    """No replica (nor any fallback member) of a fingerprint is reachable.

    Raised by :class:`ShardedClient` when every candidate shard for a
    request failed — a **clear, immediate** error, never a hang.  It is
    both a :class:`~repro.server.client.ServerError` (structured code
    ``unreachable``) and a :class:`ConnectionError`, so callers written
    against either contract catch it.
    """

    def __init__(self, message: str, fingerprint: str | None = None) -> None:
        ServerError.__init__(self, "unreachable", message)
        self.fingerprint = fingerprint


class ShardedClient:
    """A blocking routing client over a replicated validation ring.

    Parameters
    ----------
    members:
        Shard addresses (Unix paths and/or ``(host, port)`` tuples).
    replica_count:
        Replica-set size R: every fingerprint's reads may be served by
        any of its R owners, and compiled artifacts are fanned out to
        all R, so any R-1 of them can die without losing a check or a
        compile.
    read_policy:
        How reads pick among a fingerprint's live replicas — one of
        :data:`~repro.server.protocol.READ_POLICIES`.  ``None`` (the
        default) follows the policy the ring advertises in its
        published view, falling back to ``primary-first``.
    vnodes:
        Virtual nodes per member for the ring.
    timeout:
        Per-connection socket timeout, seconds.
    connect:
        Connection factory, ``(member, timeout) -> ValidationClient``;
        injectable for tests.
    telemetry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` mirroring
        the client-side routing counters (reads per member, failovers,
        corpus requeues/steals).  Named ``telemetry`` — not ``metrics``
        — because :meth:`metrics` is the ring-wide scrape op.
    events:
        Optional :class:`~repro.obs.events.EventLog`; the client emits
        ``failover`` and (via its pool) ``member-down`` / ``member-up``.
    coarse_filter:
        When true, :meth:`check_batch` pre-filters batches client-side
        with the schema's few-hundred-byte coarse admission summary
        (:mod:`repro.core.coarse`): documents the summary decides
        definitely are answered locally (``algorithm == "coarse"``)
        and only the ``uncertain`` remainder crosses the wire.  The
        summary is fetched per fingerprint with the ``get-coarse`` op
        (and cached); when no shard holds the artifact yet, the first
        batch runs unfiltered with ``"coarse": true`` so the trailer's
        stamp primes the cache.

    The client is thread-safe: placement sits in a
    :class:`~repro.server.placement.PlacementView`, connections in a
    :class:`~repro.server.pool.ConnectionPool` (one lock per member),
    and load accounting in a :class:`~repro.server.router.Router`, so
    :meth:`check_corpus` can drive every shard from its own thread
    while artifact hand-offs stay serialized per connection.

    Live membership: once a reply stamps a ring ``epoch``, requests
    carry it; a ``wrong-epoch`` answer (a shard holds a newer view)
    delivers the new member list in its error object, and the client
    adopts it and re-resolves the call — placement refreshes without
    any restart.  A success reply stamped with a *newer* epoch triggers
    a one-round-trip ``health`` fetch of the membership behind it.
    **Every** adoption path invalidates the fingerprint→owners memo, so
    a stale placement decision can never route to a removed member.
    """

    def __init__(
        self,
        members: Iterable[Member],
        replica_count: int = 1,
        read_policy: str | None = None,
        vnodes: int = DEFAULT_VNODES,
        timeout: float | None = 30.0,
        connect: Callable[[Member, float | None], ValidationClient] | None = None,
        telemetry: MetricsRegistry | None = None,
        events: EventLog | None = None,
        coarse_filter: bool = False,
    ) -> None:
        self.placement = PlacementView(
            members, replica_count=replica_count, vnodes=vnodes
        )
        if not len(self.placement):
            raise ValueError("a sharded client needs at least one member")
        self.timeout = timeout
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()
        self.pool = ConnectionPool(
            timeout=timeout, connect=connect, events=self.events
        )
        self.pool.remember(self.placement.members)
        self.router = Router(
            self.placement, self.pool, policy=read_policy,
            metrics=self.telemetry,
        )
        self._m_failovers = self.telemetry.counter("repro_ring_failovers_total")
        self._lock = threading.Lock()
        self._holders: dict[str, set[str]] = {}
        self._fingerprints: OrderedDict[tuple[str, str | None], str] = OrderedDict()
        self._handoffs = 0
        self._handoff_bytes = 0
        self._failovers = 0
        self._compiles_observed = 0
        self.coarse_filter = bool(coarse_filter)
        self._coarse: OrderedDict[str, CoarseChecker] = OrderedDict()
        self._coarse_filtered = 0
        self._server_cache_hits = 0

    # -- placement compatibility surface -------------------------------------

    @property
    def ring(self) -> ShardRing:
        """The current placement ring (mutable; embedders and tests
        drive scale events by mutating it directly — the placement
        view's memo tracks the mutation)."""
        return self.placement.ring

    @property
    def epoch(self) -> int | None:
        """The ring epoch this client routes under (``None`` until one is
        learned from a reply stamp, a refresh, or :meth:`refresh`)."""
        return self.placement.epoch

    @property
    def read_policy(self) -> str:
        """The effective read policy (explicit, else ring-advertised)."""
        return self.router.policy

    def refresh(
        self,
        members: Iterable[Member],
        epoch: int | None = None,
        replica_count: int | None = None,
    ) -> None:
        """Adopt a new ring view: rebuild placement over *members*.

        Called internally on ``wrong-epoch`` answers; public so embedders
        driving their own membership source can push views too.  An
        *epoch* older than the one already held is ignored (two racing
        membership changes converge on the newest).
        """
        if self.placement.adopt(
            members, epoch=epoch, replica_count=replica_count
        ):
            self.pool.remember(self.placement.members)

    def _adopt_view(self, fields: dict[str, Any]) -> bool:
        """Refresh from a ``wrong-epoch`` error object (or health reply)."""
        if self.placement.adopt_fields(fields):
            self.pool.remember(self.placement.members)
            return True
        return False

    def mark_up(self, member: Member) -> None:
        """Forget that *member* was unreachable (it is retried next call)."""
        self.pool.mark_up(member)

    # -- schema identity -----------------------------------------------------

    def fingerprint(self, dtd: str, root: str | None = None) -> str:
        """The routing fingerprint of *dtd* (parsed locally, memoized).

        Raises :class:`~repro.server.protocol.ProtocolError` with code
        ``bad-dtd`` on unparseable text, mirroring the server's own
        verdict for the same defect.
        """
        key = (dtd, root)
        with self._lock:
            cached = self._fingerprints.get(key)
            if cached is not None:
                self._fingerprints.move_to_end(key)
                return cached
        try:
            fingerprint = schema_fingerprint(parse_dtd(dtd, root=root))
        except ReproError as error:
            raise ProtocolError("bad-dtd", str(error))
        with self._lock:
            self._fingerprints[key] = fingerprint
            while len(self._fingerprints) > _FINGERPRINT_MEMO_SIZE:
                self._fingerprints.popitem(last=False)
        return fingerprint

    # -- epoch chasing -------------------------------------------------------

    def _maybe_refresh(self, member: Member, result: Any) -> None:
        """Chase the view behind an epoch stamped on a success reply.

        The stamp carries only the epoch int; the full view behind it —
        membership, replica count, the advertised read policy — is one
        ``health`` round trip away on the shard that answered.  Runs on
        the first stamp a client ever sees and on every stamp newer
        than the held epoch.  Adoption (like every other path) rebuilds
        placement and drops the owners memo.
        """
        reply = result[1] if isinstance(result, tuple) else result
        if not isinstance(reply, dict):
            return
        stamped = reply.get("epoch")
        if not isinstance(stamped, int):
            return
        current = self.placement.epoch
        if current is not None and stamped <= current:
            return
        try:
            with self.pool.lock(member):
                view = self.pool.client(member).health()
        except (OSError, ServerError, ProtocolError):
            view = None  # best-effort; fall back to the stamp alone
        if view is not None and self._adopt_view(view):
            return
        if current is None:
            # The health fetch failed (or carried no view): adopt at
            # least the epoch — membership already matches, this shard
            # just answered the routed request.
            self.placement.adopt(self.placement.members, epoch=stamped)

    # -- routing core --------------------------------------------------------

    def _call(
        self,
        fingerprint: str,
        fn: Callable[[ValidationClient, int | None], Any],
        handoff: bool = True,
        trace: TraceContext | None = None,
    ) -> Any:
        """Run *fn* against a live replica picked by the read policy,
        failing over down the preference list; hand the artifact over
        first when possible.  *fn* receives the connection **and the
        epoch** to stamp on the request; a ``wrong-epoch`` answer
        refreshes the ring from the error object and re-resolves
        (bounded), so membership changes never require a client
        restart.  With a :class:`~repro.obs.trace.TraceContext` every
        attempted member becomes one hop record on the context."""
        last_error: Exception | None = None
        for _refresh in range(_MAX_EPOCH_REFRESHES):
            candidates = self.router.candidates(fingerprint)
            owner = candidates[0]
            stale = False
            for member in candidates:
                label = member_label(member)
                if handoff:
                    self._ensure_artifact(member, fingerprint)
                client: ValidationClient | None = None
                wrong_epoch: ServerError | None = None
                epoch = self.placement.epoch
                hop = trace.begin_hop(label) if trace is not None else None
                self.router.begin(member)
                served = False
                try:
                    with self.pool.lock(member):
                        client = self.pool.client(member)
                        try:
                            result = fn(client, epoch)
                            served = True
                        except ServerError as error:
                            if error.code != "wrong-epoch":
                                raise
                            # The shard holds a newer view; its error
                            # object carries the refresh.  Drop the
                            # connection while still holding the member
                            # lock (a batch header rejection closes it
                            # server-side, and no peer thread can be
                            # mid-request on it under the lock).
                            self.pool.discard(member, client)
                            wrong_epoch = error
                except OSError as error:  # covers ConnectionError and timeouts
                    self.pool.mark_down(member, client)
                    if hop is not None and trace is not None:
                        trace.fail_hop(hop, error)
                    last_error = error
                    continue
                finally:
                    self.router.finish(member, served=served)
                if wrong_epoch is not None:
                    if hop is not None and trace is not None:
                        trace.fail_hop(hop, "wrong-epoch")
                    self._adopt_view(wrong_epoch.reply.get("error") or {})
                    last_error = wrong_epoch
                    stale = True
                    break  # re-resolve placement under the new view
                if hop is not None and trace is not None:
                    trace.end_hop(hop, result)
                if member is not owner:
                    with self._lock:
                        self._failovers += 1
                    self._m_failovers.inc()
                    self.events.emit(
                        "failover",
                        fingerprint=fingerprint[:16],
                        member=label,
                        owner=member_label(owner),
                    )
                compiled = self._note_schema(label, result)
                self._note_load(member, result)
                self._note_cached(result)
                if compiled and self.placement.replica_count > 1:
                    # The one honest compile just happened: fan the
                    # artifact out to the rest of the replica set now, so
                    # killing this shard later loses nothing.
                    self._replicate(fingerprint)
                self._maybe_refresh(member, result)
                return result
            if not stale:
                break
        raise ShardUnavailableError(
            f"no reachable replica for fingerprint {fingerprint[:16]}...: "
            f"{last_error}",
            fingerprint=fingerprint,
        )

    def _note_load(self, member: Member, result: Any) -> None:
        """Feed a reply's server-reported load stamp into the router.

        Servers holding a ring view stamp ``{"inflight", "queue_depth"}``
        into every success reply (and batch trailer); ``least-inflight``
        scores on these in preference to client-local counters.
        """
        reply = result[1] if isinstance(result, tuple) else result
        load = reply.get("load") if isinstance(reply, dict) else None
        if not isinstance(load, dict):
            return
        inflight = load.get("inflight")
        if isinstance(inflight, int):
            queue_depth = load.get("queue_depth")
            self.router.note_load(
                member,
                inflight,
                queue_depth if isinstance(queue_depth, int) else 0,
            )

    def _note_cached(self, result: Any) -> None:
        """Tally server-side verdict-cache hits stamped on replies.

        A server running with ``--verdict-cache`` stamps ``"cached":
        true`` on every reply it answered from its memo cache — single
        ``check`` replies and ``check-batch-item`` replies alike (for a
        batch, *result* is the ``(item_replies, trailer)`` tuple).
        """
        replies = result[0] if isinstance(result, tuple) else (result,)
        hits = sum(
            1
            for reply in replies
            if isinstance(reply, dict) and reply.get("cached")
        )
        if hits:
            with self._lock:
                self._server_cache_hits += hits

    def _note_schema(self, label: str, result: Any) -> bool:
        """Record which shard holds the schema a reply names; ``True``
        when the reply shows the shard compiled it just now."""
        reply = result[1] if isinstance(result, tuple) else result
        schema = reply.get("schema") if isinstance(reply, dict) else None
        if not isinstance(schema, dict):
            return False
        fingerprint = schema.get("fingerprint")
        if not isinstance(fingerprint, str):
            return False
        with self._lock:
            holders = self._holders.setdefault(fingerprint, set())
            holders.add(label)
            if schema.get("registry") == "miss":
                # The shard compiled: the one compile this schema gets.
                self._compiles_observed += 1
                return True
        return False

    def _replicate(self, fingerprint: str) -> None:
        """Fan the compiled artifact out to every replica of *fingerprint*.

        Best-effort, like all artifact movement: an unreachable replica
        simply compiles for itself if traffic ever reaches it cold.
        """
        for member in self.placement.owners(fingerprint):
            self._ensure_artifact(member, fingerprint)

    def _ensure_artifact(self, member: Member, fingerprint: str) -> None:
        """Move the compiled artifact to *member* when another shard has it.

        Best-effort: any failure (no holder, a holder gone dark, a
        transfer error) simply lets the target shard compile for itself —
        slower, never wrong.
        """
        label = member_label(member)
        down = self.pool.down
        with self._lock:
            holders = self._holders.get(fingerprint, set())
            if label in holders:
                return
            sources = [h for h in holders if h not in down and h != label]
        if not sources:
            return
        blob: bytes | None = None
        for source in sources:
            source_member = self._member_by_label(source)
            if source_member is None:
                continue
            source_client: ValidationClient | None = None
            try:
                with self.pool.lock(source_member):
                    source_client = self.pool.client(source_member)
                    blob = source_client.get_artifact(fingerprint)
                break
            except OSError:
                self.pool.mark_down(source_member, source_client)
            except ProtocolError:
                return  # garbled transfer: let the target compile
            except Exception:
                # artifact-miss and kin: the holder hint was stale.
                with self._lock:
                    self._holders.get(fingerprint, set()).discard(source)
        if blob is None:
            return
        try:
            with self.pool.lock(member):
                self.pool.client(member).put_artifact(fingerprint, blob)
        except Exception:  # noqa: BLE001 - best-effort transfer
            return  # the routed call will fail over / compile as needed
        with self._lock:
            self._holders.setdefault(fingerprint, set()).add(label)
            self._handoffs += 1
            self._handoff_bytes += len(blob)

    def _member_by_label(self, label: str) -> Member | None:
        known = self.pool.address(label)
        if known is not None:
            return known
        for member in self.placement.members:
            if member_label(member) == label:
                return member
        return None

    # -- the ops -------------------------------------------------------------

    def check(
        self,
        dtd: str,
        doc: str,
        algorithm: str | None = None,
        root: str | None = None,
        id: Any = None,
        trace: bool | str = False,
    ) -> dict[str, Any]:
        """Potential-validity check, served by a live replica of the
        schema's owning set picked by the read policy.

        With ``trace=True`` (or a caller-chosen trace id string) the
        reply's ``trace`` object records every hop the routed call
        attempted — failed members with their errors, the serving member
        with the server's per-phase span (see :mod:`repro.obs.trace`).
        """
        fingerprint = self.fingerprint(dtd, root)
        ctx = TraceContext.make(trace)
        trace_id = ctx.id if ctx is not None else None
        result = self._call(
            fingerprint,
            lambda client, epoch: client.check(
                dtd, doc, algorithm=algorithm, root=root, id=id, epoch=epoch,
                trace=trace_id,
            ),
            trace=ctx,
        )
        return ctx.attach(result) if ctx is not None else result

    def validate(
        self, dtd: str, doc: str, root: str | None = None, id: Any = None,
        trace: bool | str = False,
    ) -> dict[str, Any]:
        """Standard DTD validation, routed (and traced) like :meth:`check`."""
        fingerprint = self.fingerprint(dtd, root)
        ctx = TraceContext.make(trace)
        trace_id = ctx.id if ctx is not None else None
        result = self._call(
            fingerprint,
            lambda client, epoch: client.validate(
                dtd, doc, root=root, id=id, epoch=epoch, trace=trace_id
            ),
            trace=ctx,
        )
        return ctx.attach(result) if ctx is not None else result

    def classify(
        self, dtd: str, root: str | None = None, id: Any = None
    ) -> dict[str, Any]:
        """Definition 6-8 classification, routed like :meth:`check`."""
        fingerprint = self.fingerprint(dtd, root)
        return self._call(
            fingerprint,
            lambda client, epoch: client.classify(
                dtd, root=root, id=id, epoch=epoch
            ),
        )

    # -- the client-side coarse pre-filter -----------------------------------

    def _coarse_checker(self, fingerprint: str) -> CoarseChecker | None:
        """The cached (or ``get-coarse``-fetched) admission checker.

        ``None`` when no shard holds the artifact yet — the caller's
        cue to run the batch unfiltered with the reply-stamp ask.
        """
        with self._lock:
            checker = self._coarse.get(fingerprint)
            if checker is not None:
                self._coarse.move_to_end(fingerprint)
                return checker
        for member in self.router.candidates(fingerprint):
            coarse_client: ValidationClient | None = None
            try:
                with self.pool.lock(member):
                    coarse_client = self.pool.client(member)
                    blob = coarse_client.get_coarse(fingerprint)
            except OSError:
                self.pool.mark_down(member, coarse_client)
                continue
            except (ServerError, ProtocolError):
                continue  # artifact-miss (or a garbled reply): try the next
            summary = decode_coarse(blob)
            if summary is None:
                continue
            return self._remember_coarse(fingerprint, summary)
        return None

    def _remember_coarse(self, fingerprint: str, summary: Any) -> CoarseChecker:
        checker = CoarseChecker(summary)
        with self._lock:
            checker = self._coarse.setdefault(fingerprint, checker)
            self._coarse.move_to_end(fingerprint)
            while len(self._coarse) > _COARSE_CACHE_SIZE:
                self._coarse.popitem(last=False)
        return checker

    def _adopt_coarse_stamp(
        self, fingerprint: str, reply: dict[str, Any]
    ) -> None:
        """Cache the admission summary a reply stamped (first-miss path)."""
        stamp = reply.get("coarse")
        if not isinstance(stamp, str):
            return
        try:
            blob = base64.b64decode(stamp.encode("ascii"), validate=True)
        except Exception:  # noqa: BLE001 - a bad stamp only skips the cache
            return
        summary = decode_coarse(blob)
        if summary is not None:
            self._remember_coarse(fingerprint, summary)

    def _local_item(self, index: int, verdict: Any) -> dict[str, Any]:
        """A definite coarse outcome as a ``check-batch-item`` reply."""
        reply: dict[str, Any] = {
            "ok": True,
            "op": "check-batch-item",
            "id": index,
            "potentially_valid": verdict.outcome == "accept",
            "failures": [],
            "depth_limited": False,
            "algorithm": "coarse",
            "admission": verdict.outcome,
            "filtered": True,
        }
        if verdict.outcome == "reject":
            reply["failures"] = [
                {
                    "path": verdict.path,
                    "element": verdict.element,
                    "reason": verdict.reason,
                }
            ]
        return reply

    def _filtered_batch(
        self,
        dtd: str,
        docs: list[str],
        algorithm: str | None,
        root: str | None,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Answer definite documents locally; route only the uncertain."""
        fingerprint = self.fingerprint(dtd, root)
        checker = self._coarse_checker(fingerprint)
        if checker is None:
            # No shard holds the artifact yet: run unfiltered, ask for
            # the stamp, and cache it for the next batch.
            replies, trailer = self.routed_batch(
                dtd, docs, algorithm=algorithm, root=root, coarse=True
            )
            self._adopt_coarse_stamp(fingerprint, trailer)
            return replies, trailer
        merged: list[dict[str, Any] | None] = [None] * len(docs)
        escalate: list[int] = []
        for index, doc in enumerate(docs):
            try:
                document = parse_xml(doc)
            except ReproError:
                escalate.append(index)  # the server owns bad-document
                continue
            verdict = checker.check_document(document)
            if verdict.definite:
                merged[index] = self._local_item(index, verdict)
            else:
                escalate.append(index)
        filtered = len(docs) - len(escalate)
        with self._lock:
            self._coarse_filtered += filtered
        if escalate:
            replies, trailer = self._dispatch_batch(
                dtd, [docs[i] for i in escalate], algorithm, root, False
            )
            for position, index in enumerate(escalate):
                reply = dict(replies[position])
                reply["id"] = index
                merged[index] = reply
            trailer = dict(trailer)
        else:
            trailer = {"ok": True, "op": "check-batch", "errors": 0}
        trailer["items"] = len(docs)
        trailer["filtered"] = filtered
        assert all(reply is not None for reply in merged)
        return merged, trailer  # type: ignore[return-value]

    def check_batch(
        self,
        dtd: str,
        docs: list[str],
        algorithm: str | None = None,
        root: str | None = None,
        trace: bool | str = False,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Stream a corpus for one schema — split across its live
        replicas when the read policy balances reads.

        With ``coarse_filter`` enabled (and the call untraced, using
        ``auto`` dispatch), documents the cached admission summary
        decides definitely are answered locally and only the uncertain
        remainder crosses the wire; the trailer gains ``"filtered"``.

        Under ``primary-first``, a single-replica ring, a traced call,
        or a corpus that fits one scheduler window, this is one stream
        to one owning replica (byte-for-byte the classic behavior, see
        :meth:`routed_batch`).  Otherwise the documents are handed to
        the :class:`~repro.server.scheduler.CorpusScheduler`, which
        splits them into windows spread over the schema's live owners —
        with straggler hand-off and re-queue on mid-run death — and
        merges the replies back into document order.
        """
        if (
            self.coarse_filter
            and not trace
            and algorithm in (None, "auto")
            and docs
        ):
            return self._filtered_batch(dtd, docs, algorithm, root)
        return self._dispatch_batch(dtd, docs, algorithm, root, trace)

    def _dispatch_batch(
        self,
        dtd: str,
        docs: list[str],
        algorithm: str | None,
        root: str | None,
        trace: bool | str,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """The classic scheduler-or-single-stream batch path."""
        if (
            not trace
            and self.placement.replica_count > 1
            and len(docs) > DEFAULT_WINDOW
            and self.read_policy != "primary-first"
        ):
            scheduler = CorpusScheduler(self)
            replies, trailer = scheduler.run(
                [(dtd, docs)], algorithm=algorithm, root=root
            )[0]
            if replies is not None:
                return replies, trailer
            # The scheduler gave up (every replica dark mid-run); fall
            # through to the single-stream path, which fails over along
            # the full preference list and raises the structured error.
        return self.routed_batch(
            dtd, docs, algorithm=algorithm, root=root, trace=trace
        )

    def routed_batch(
        self,
        dtd: str,
        docs: list[str],
        algorithm: str | None = None,
        root: str | None = None,
        trace: bool | str = False,
        coarse: bool | None = None,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Stream a whole corpus for one schema to a live owning replica.

        The single-stream primitive :meth:`check_batch` and the corpus
        scheduler build on: one member, picked by the read policy, with
        failover down the preference list.  With ``trace`` the batch
        **trailer** carries the hop records (per-item replies carry
        lightweight per-item spans).
        """
        fingerprint = self.fingerprint(dtd, root)
        ctx = TraceContext.make(trace)
        trace_id = ctx.id if ctx is not None else None
        result = self._call(
            fingerprint,
            lambda client, epoch: client.check_batch(
                dtd, docs, algorithm=algorithm, root=root, epoch=epoch,
                trace=trace_id, coarse=coarse,
            ),
            trace=ctx,
        )
        return ctx.attach(result) if ctx is not None else result

    def batch_on_member(
        self,
        member: Member,
        dtd: str,
        docs: list[str],
        algorithm: str | None = None,
        root: str | None = None,
        fingerprint: str | None = None,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Stream one ``check-batch`` window to a **specific** member.

        The direct-placement primitive the
        :class:`~repro.server.scheduler.CorpusScheduler` spreads windows
        with: artifact hand-off, epoch stamping, in-flight accounting,
        and ``wrong-epoch`` adoption all apply, but there is no
        failover — a transport failure marks the member down and raises,
        so the scheduler can re-queue the window onto survivors.
        """
        if fingerprint is None:
            fingerprint = self.fingerprint(dtd, root)
        label = member_label(member)
        wrong_epoch: ServerError | None = None
        for _refresh in range(_MAX_EPOCH_REFRESHES):
            self._ensure_artifact(member, fingerprint)
            epoch = self.placement.epoch
            client: ValidationClient | None = None
            wrong_epoch = None
            self.router.begin(member)
            served = False
            try:
                with self.pool.lock(member):
                    client = self.pool.client(member)
                    try:
                        result = client.check_batch(
                            dtd, docs, algorithm=algorithm, root=root,
                            epoch=epoch,
                        )
                        served = True
                    except ServerError as error:
                        if error.code != "wrong-epoch":
                            raise
                        self.pool.discard(member, client)
                        wrong_epoch = error
            except OSError:
                self.pool.mark_down(member, client)
                raise
            finally:
                self.router.finish(member, served=served)
            if wrong_epoch is None:
                self._note_schema(label, result)
                self._note_load(member, result)
                self._note_cached(result)
                self._maybe_refresh(member, result)
                return result
            # The member is alive and just taught us the newer view;
            # adopt it (clearing cached placement) and retry right here —
            # servers gate on epoch, not ownership.
            self._adopt_view(wrong_epoch.reply.get("error") or {})
        raise ConnectionError(
            f"shard {label} kept answering wrong-epoch: {wrong_epoch}"
        )

    def check_corpus(
        self,
        batches: list[tuple],
        algorithm: str | None = None,
        root: str | None = None,
        read_policy: str | None = None,
        window: int = DEFAULT_WINDOW,
    ) -> list[tuple[list[dict[str, Any]] | None, dict[str, Any]]]:
        """Check many schema batches across the ring.

        Each batch is ``(dtd, docs)`` or ``(dtd, docs, root)`` — a
        per-batch root overrides the *root* default.  Scheduling is the
        :class:`~repro.server.scheduler.CorpusScheduler`'s: under
        ``primary-first`` each schema streams to its primary owner
        (batches grouped per shard, shards driven in parallel — the
        classic placement, byte for byte); under ``round-robin`` /
        ``least-inflight`` each schema's documents are split into
        *window*-sized chunks spread over all R live owners with
        straggler hand-off.  *read_policy* overrides the client's
        effective policy for this corpus only.

        Results come back in *batches* order.  A batch that failed —
        every candidate shard unreachable, a server rejection — does
        **not** abort the rest of the corpus: its entry is
        ``(None, trailer)`` where the trailer is the structured error
        shape ``{"ok": False, "error": {"code": ..., "message": ...}}``,
        so callers distinguish per-batch failures positionally, exactly
        like per-item errors inside a batch.
        """
        scheduler = CorpusScheduler(self, policy=read_policy, window=window)
        return scheduler.run(batches, algorithm=algorithm, root=root)

    def stats(self) -> dict[str, Any]:
        """Per-shard server stats plus the client's own counters."""
        shards: dict[str, Any] = {}
        for member in self.placement.members:
            label = member_label(member)
            stats_client: ValidationClient | None = None
            try:
                with self.pool.lock(member):
                    stats_client = self.pool.client(member)
                    shards[label] = stats_client.stats()
            except OSError:
                self.pool.mark_down(member, stats_client)
                shards[label] = None
        return {"shards": shards, "ring": self.ring_stats}

    def metrics(self) -> dict[str, Any]:
        """Ring-wide metrics scrape: per-shard snapshots, their merge,
        and the client's own telemetry snapshot.

        ``shards`` maps member label to that shard's snapshot (``None``
        for an unreachable shard); ``merged`` is the
        :func:`~repro.obs.metrics.merge_snapshots` aggregation of the
        reachable ones — ring-wide p99 is one
        :func:`~repro.obs.metrics.histogram_quantile` call away.
        """
        shards: dict[str, Any] = {}
        reachable: list[dict[str, Any]] = []
        for member in self.placement.members:
            label = member_label(member)
            metrics_client: ValidationClient | None = None
            try:
                with self.pool.lock(member):
                    metrics_client = self.pool.client(member)
                    reply = metrics_client.metrics()
            except OSError:
                self.pool.mark_down(member, metrics_client)
                shards[label] = None
                continue
            snapshot = reply.get("metrics") or {}
            shards[label] = snapshot
            reachable.append(snapshot)
        return {
            "shards": shards,
            "merged": merge_snapshots(reachable),
            "client": self.telemetry.snapshot(),
        }

    @property
    def ring_stats(self) -> dict[str, Any]:
        """The client's routing counters (JSON-ready)."""
        router_stats = self.router.stats()
        with self._lock:
            return {
                "members": [member_label(m) for m in self.placement.members],
                "down": sorted(self.pool.down),
                "epoch": self.placement.epoch,
                "epoch_refreshes": self.placement.refreshes,
                "replica_count": self.placement.replica_count,
                "read_policy": router_stats["policy"],
                "requests_by_member": router_stats["requests_by_member"],
                "inflight": router_stats["inflight"],
                "handoffs": self._handoffs,
                "handoff_bytes": self._handoff_bytes,
                "failovers": self._failovers,
                "compiles_observed": self._compiles_observed,
                "schemas_tracked": len(self._holders),
                "coarse_filtered": self._coarse_filtered,
                "coarse_cached": len(self._coarse),
                "server_cache_hits": self._server_cache_hits,
            }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "ShardedClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
