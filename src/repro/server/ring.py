"""Schema sharding across validation servers: the consistent-hash ring.

This module is the horizontal-scaling layer over :mod:`repro.server`: a
fleet of independent :class:`~repro.server.server.ValidationServer`
processes ("shards"), each with its own registry (and optionally its own
disk store), fronted by a coordinator that routes every request to the
shard *owning* the request's schema.

* :class:`ShardRing` — a consistent-hash ring with virtual nodes mapping
  schema fingerprints to members.  Placement is stable under membership
  change: removing one of N members remaps only the keys that member
  owned (about 1/N of them), never shuffling the rest — the property
  that keeps every other shard's warm registry warm through a scale
  event.
* :class:`ShardedClient` — the blocking coordinator.  It fingerprints
  each request's DTD locally (memoized), routes ``check`` / ``classify``
  / ``validate`` / ``check-batch`` to the owning shard, and fails over
  deterministically along the ring's preference order when a shard is
  unreachable.  When routing would land a schema on a shard that has not
  seen it while another shard already holds the compiled artifact, the
  coordinator moves the artifact first — ``get-artifact`` from a holder,
  ``put-artifact`` to the target, in the artifact store's own file
  format — so each schema is compiled **at most once ring-wide**, no
  matter how membership shifts.

Addresses are either a Unix socket path (``str``) or a ``(host, port)``
tuple; :func:`parse_member` turns CLI-style ``host:port`` strings into
the latter.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from collections import Counter, OrderedDict
from typing import Any, Callable, Iterable

from repro.dtd.parser import parse_dtd
from repro.errors import ReproError
from repro.server.client import ValidationClient
from repro.server.protocol import ProtocolError
from repro.service.compiled import schema_fingerprint

__all__ = [
    "Member",
    "ShardRing",
    "ShardedClient",
    "member_label",
    "parse_member",
]

#: A shard address: a Unix socket path or a ``(host, port)`` pair.
Member = Any

#: Virtual nodes per member.  More replicas smooth the key distribution
#: (the std-dev of shard load shrinks like 1/sqrt(replicas)) at the cost
#: of a longer sorted point array; 64 keeps a 3-shard ring within a few
#: percent of even.
DEFAULT_REPLICAS = 64

#: Bound on the coordinator's (dtd text, root) -> fingerprint memo.
_FINGERPRINT_MEMO_SIZE = 1024


def member_label(member: Member) -> str:
    """The canonical display / hashing label of a member address."""
    if isinstance(member, tuple):
        host, port = member
        return f"{host}:{port}"
    return str(member)


def parse_member(text: str) -> Member:
    """A CLI address string to a member: ``host:port`` or a socket path.

    Anything containing a path separator (or with no colon at all) is a
    Unix socket path; otherwise the last colon splits host from port.  A
    colon-bearing, separator-free string whose port is not a number is a
    typo, not a path — it raises :class:`ValueError` so the CLI can
    report bad usage instead of failing to connect to a phantom socket.
    """
    if "/" in text or ":" not in text:
        return text
    host, _, port_text = text.rpartition(":")
    try:
        return (host, int(port_text))
    except ValueError:
        raise ValueError(f"bad ring address {text!r}: port {port_text!r} "
                         "is not a number")


def _point(token: str) -> int:
    """A stable 64-bit position on the ring for *token*."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """A consistent-hash ring with virtual nodes.

    Keys (schema fingerprints, but any string works) map to the first
    member point at or clockwise after the key's own point.  Each member
    contributes *replicas* points, so load spreads evenly and a
    membership change only remaps keys adjacent to the changed member's
    points.
    """

    def __init__(
        self, members: Iterable[Member] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._members: dict[str, Member] = {}
        # Parallel arrays sorted by point: bisect runs on the ints alone.
        self._points: list[int] = []
        self._labels: list[str] = []
        for member in members:
            self.add(member)

    # -- membership ----------------------------------------------------------

    @property
    def members(self) -> list[Member]:
        """Current members, in label order (stable for display)."""
        return [self._members[label] for label in sorted(self._members)]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: object) -> bool:
        return member_label(member) in self._members

    def add(self, member: Member) -> None:
        """Add *member* (idempotent)."""
        label = member_label(member)
        if label in self._members:
            return
        self._members[label] = member
        pairs = list(zip(self._points, self._labels))
        pairs.extend(
            (_point(f"{label}#{replica}"), label)
            for replica in range(self.replicas)
        )
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._labels = [entry for _, entry in pairs]

    def remove(self, member: Member) -> None:
        """Remove *member* (a no-op when absent)."""
        label = member_label(member)
        if self._members.pop(label, None) is None:
            return
        kept = [
            (point, entry)
            for point, entry in zip(self._points, self._labels)
            if entry != label
        ]
        self._points = [point for point, _ in kept]
        self._labels = [entry for _, entry in kept]

    # -- placement -----------------------------------------------------------

    def owner(self, key: str) -> Member:
        """The member owning *key* (raises when the ring is empty)."""
        return self.preference(key)[0]

    def preference(self, key: str) -> list[Member]:
        """Every member, in deterministic failover order for *key*.

        The first entry is the owner; the rest are the distinct members
        encountered walking the ring clockwise from the key's point —
        the order a coordinator tries when shards are unreachable, and
        the order that keeps failover placement as stable as primary
        placement under membership change.
        """
        if not self._points:
            raise ValueError("ring has no members")
        start = bisect_right(self._points, _point(key))
        seen: list[Member] = []
        seen_labels: set[str] = set()
        count = len(self._points)
        for offset in range(count):
            label = self._labels[(start + offset) % count]
            if label not in seen_labels:
                seen_labels.add(label)
                seen.append(self._members[label])
                if len(seen_labels) == len(self._members):
                    break
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ", ".join(sorted(self._members))
        return f"ShardRing([{labels}], replicas={self.replicas})"


class ShardedClient:
    """A blocking coordinator routing requests over a :class:`ShardRing`.

    Parameters
    ----------
    members:
        Shard addresses (Unix paths and/or ``(host, port)`` tuples).
    replicas:
        Virtual nodes per member for the ring.
    timeout:
        Per-connection socket timeout, seconds.
    connect:
        Connection factory, ``(member, timeout) -> ValidationClient``;
        injectable for tests.

    The coordinator is thread-safe: shared routing state sits behind one
    lock and each member's connection behind its own, so
    :meth:`check_corpus` can drive every shard from its own thread while
    artifact hand-offs stay serialized per connection.
    """

    def __init__(
        self,
        members: Iterable[Member],
        replicas: int = DEFAULT_REPLICAS,
        timeout: float | None = 30.0,
        connect: Callable[[Member, float | None], ValidationClient] | None = None,
    ) -> None:
        self.ring = ShardRing(members, replicas=replicas)
        if not len(self.ring):
            raise ValueError("a sharded client needs at least one member")
        self.timeout = timeout
        self._connect = connect or (
            lambda member, timeout: ValidationClient.connect(member, timeout=timeout)
        )
        self._lock = threading.Lock()
        self._member_locks: dict[str, threading.Lock] = {}
        self._clients: dict[str, ValidationClient] = {}
        # Every address this coordinator has ever known, keyed by label.
        # Ring membership may shrink (scale-in), but a departed member can
        # still be reachable and is exactly where hand-off artifacts come
        # from — placement and reachability are separate facts.
        self._addresses: dict[str, Member] = {
            member_label(member): member for member in self.ring.members
        }
        self._down: set[str] = set()
        self._holders: dict[str, set[str]] = {}
        self._fingerprints: OrderedDict[tuple[str, str | None], str] = OrderedDict()
        self._requests_by_member: Counter[str] = Counter()
        self._handoffs = 0
        self._handoff_bytes = 0
        self._failovers = 0
        self._compiles_observed = 0

    # -- schema identity -----------------------------------------------------

    def fingerprint(self, dtd: str, root: str | None = None) -> str:
        """The routing fingerprint of *dtd* (parsed locally, memoized).

        Raises :class:`~repro.server.protocol.ProtocolError` with code
        ``bad-dtd`` on unparseable text, mirroring the server's own
        verdict for the same defect.
        """
        key = (dtd, root)
        with self._lock:
            cached = self._fingerprints.get(key)
            if cached is not None:
                self._fingerprints.move_to_end(key)
                return cached
        try:
            fingerprint = schema_fingerprint(parse_dtd(dtd, root=root))
        except ReproError as error:
            raise ProtocolError("bad-dtd", str(error))
        with self._lock:
            self._fingerprints[key] = fingerprint
            while len(self._fingerprints) > _FINGERPRINT_MEMO_SIZE:
                self._fingerprints.popitem(last=False)
        return fingerprint

    # -- connections ---------------------------------------------------------

    def _member_lock(self, label: str) -> threading.Lock:
        with self._lock:
            lock = self._member_locks.get(label)
            if lock is None:
                lock = self._member_locks[label] = threading.Lock()
            return lock

    def _client(self, member: Member) -> ValidationClient:
        """The live connection for *member*, connecting on first use.

        Caller must hold the member's connection lock.
        """
        label = member_label(member)
        with self._lock:
            client = self._clients.get(label)
        if client is not None:
            return client
        client = self._connect(member, self.timeout)
        with self._lock:
            self._clients[label] = client
            self._addresses[label] = member
            self._down.discard(label)
        return client

    def _mark_down(
        self, member: Member, failed: ValidationClient | None = None
    ) -> None:
        """Record a failure of *member*, closing the *failed* connection.

        Only the connection that actually failed is evicted: between a
        caller's failure and this call another thread may already have
        reconnected a healthy client under the member lock, and closing
        that one would abort its in-flight work and mark a live shard
        down for nothing.
        """
        label = member_label(member)
        with self._lock:
            cached = self._clients.get(label)
            if failed is None or cached is failed:
                self._clients.pop(label, None)
                self._down.add(label)
            to_close = failed if failed is not None else cached
        if to_close is not None:
            try:
                to_close.close()
            except OSError:
                pass

    def mark_up(self, member: Member) -> None:
        """Forget that *member* was unreachable (it is retried next call)."""
        with self._lock:
            self._down.discard(member_label(member))

    # -- routing core --------------------------------------------------------

    def _candidates(self, fingerprint: str) -> list[Member]:
        preference = self.ring.preference(fingerprint)
        with self._lock:
            up = [m for m in preference if member_label(m) not in self._down]
        # With every preference down, try them all anyway: a shard may
        # have come back, and an error beats silently giving up.
        return up or preference

    def _call(
        self,
        fingerprint: str,
        fn: Callable[[ValidationClient], Any],
        handoff: bool = True,
    ) -> Any:
        """Run *fn* against the owning shard, failing over down the
        preference list; hand the artifact over first when possible."""
        candidates = self._candidates(fingerprint)
        owner = candidates[0]
        last_error: Exception | None = None
        for member in candidates:
            label = member_label(member)
            if handoff:
                self._ensure_artifact(member, fingerprint)
            client: ValidationClient | None = None
            try:
                with self._member_lock(label):
                    client = self._client(member)
                    result = fn(client)
            except OSError as error:  # covers ConnectionError and timeouts
                self._mark_down(member, client)
                last_error = error
                continue
            with self._lock:
                self._requests_by_member[label] += 1
                if member is not owner:
                    self._failovers += 1
            self._note_schema(label, result)
            return result
        raise ConnectionError(
            f"no reachable shard for fingerprint {fingerprint[:16]}...: {last_error}"
        )

    def _note_schema(self, label: str, result: Any) -> None:
        reply = result[1] if isinstance(result, tuple) else result
        schema = reply.get("schema") if isinstance(reply, dict) else None
        if not isinstance(schema, dict):
            return
        fingerprint = schema.get("fingerprint")
        if not isinstance(fingerprint, str):
            return
        with self._lock:
            holders = self._holders.setdefault(fingerprint, set())
            holders.add(label)
            if schema.get("registry") == "miss":
                # The shard compiled: the one compile this schema gets.
                self._compiles_observed += 1

    def _ensure_artifact(self, member: Member, fingerprint: str) -> None:
        """Move the compiled artifact to *member* when another shard has it.

        Best-effort: any failure (no holder, a holder gone dark, a
        transfer error) simply lets the target shard compile for itself —
        slower, never wrong.
        """
        label = member_label(member)
        with self._lock:
            holders = self._holders.get(fingerprint, set())
            if label in holders:
                return
            sources = [h for h in holders if h not in self._down and h != label]
        if not sources:
            return
        blob: bytes | None = None
        for source in sources:
            source_member = self._member_by_label(source)
            if source_member is None:
                continue
            source_client: ValidationClient | None = None
            try:
                with self._member_lock(source):
                    source_client = self._client(source_member)
                    blob = source_client.get_artifact(fingerprint)
                break
            except OSError:
                self._mark_down(source_member, source_client)
            except ProtocolError:
                return  # garbled transfer: let the target compile
            except Exception:
                # artifact-miss and kin: the holder hint was stale.
                with self._lock:
                    self._holders.get(fingerprint, set()).discard(source)
        if blob is None:
            return
        try:
            with self._member_lock(label):
                self._client(member).put_artifact(fingerprint, blob)
        except Exception:  # noqa: BLE001 - best-effort transfer
            return  # the routed call will fail over / compile as needed
        with self._lock:
            self._holders.setdefault(fingerprint, set()).add(label)
            self._handoffs += 1
            self._handoff_bytes += len(blob)

    def _member_by_label(self, label: str) -> Member | None:
        with self._lock:
            known = self._addresses.get(label)
        if known is not None:
            return known
        for member in self.ring.members:
            if member_label(member) == label:
                return member
        return None

    # -- the ops -------------------------------------------------------------

    def check(
        self,
        dtd: str,
        doc: str,
        algorithm: str | None = None,
        root: str | None = None,
        id: Any = None,
    ) -> dict[str, Any]:
        """Potential-validity check, routed to the schema's owning shard."""
        fingerprint = self.fingerprint(dtd, root)
        return self._call(
            fingerprint,
            lambda client: client.check(
                dtd, doc, algorithm=algorithm, root=root, id=id
            ),
        )

    def validate(
        self, dtd: str, doc: str, root: str | None = None, id: Any = None
    ) -> dict[str, Any]:
        fingerprint = self.fingerprint(dtd, root)
        return self._call(
            fingerprint,
            lambda client: client.validate(dtd, doc, root=root, id=id),
        )

    def classify(
        self, dtd: str, root: str | None = None, id: Any = None
    ) -> dict[str, Any]:
        fingerprint = self.fingerprint(dtd, root)
        return self._call(
            fingerprint, lambda client: client.classify(dtd, root=root, id=id)
        )

    def check_batch(
        self,
        dtd: str,
        docs: list[str],
        algorithm: str | None = None,
        root: str | None = None,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Stream a whole corpus for one schema to its owning shard."""
        fingerprint = self.fingerprint(dtd, root)
        return self._call(
            fingerprint,
            lambda client: client.check_batch(
                dtd, docs, algorithm=algorithm, root=root
            ),
        )

    def check_corpus(
        self,
        batches: list[tuple],
        algorithm: str | None = None,
        root: str | None = None,
    ) -> list[tuple[list[dict[str, Any]], dict[str, Any]]]:
        """Check many schema batches, shards driven in parallel.

        Each batch is ``(dtd, docs)`` or ``(dtd, docs, root)`` — a
        per-batch root overrides the *root* default.  Batches are grouped
        by owning shard and each shard's groups run sequentially over its
        one connection while distinct shards run concurrently (one thread
        per shard) — the scale-out shape the E12 benchmark measures.
        Results come back in *batches* order; a batch whose every shard
        candidate failed raises.
        """
        normalized: list[tuple[str, list[str], str | None]] = [
            (entry[0], entry[1], entry[2] if len(entry) > 2 else root)
            for entry in batches
        ]
        by_member: dict[str, list[int]] = {}
        for index, (dtd, _docs, batch_root) in enumerate(normalized):
            label = member_label(
                self.ring.owner(self.fingerprint(dtd, batch_root))
            )
            by_member.setdefault(label, []).append(index)
        results: list[Any] = [None] * len(batches)
        errors: list[Exception] = []

        def run(indexes: list[int]) -> None:
            for index in indexes:
                dtd, docs, batch_root = normalized[index]
                try:
                    results[index] = self.check_batch(
                        dtd, docs, algorithm=algorithm, root=batch_root
                    )
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)
                    return

        threads = [
            threading.Thread(target=run, args=(indexes,), daemon=True)
            for indexes in by_member.values()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results

    def stats(self) -> dict[str, Any]:
        """Per-shard server stats plus the coordinator's own counters."""
        shards: dict[str, Any] = {}
        for member in self.ring.members:
            label = member_label(member)
            stats_client: ValidationClient | None = None
            try:
                with self._member_lock(label):
                    stats_client = self._client(member)
                    shards[label] = stats_client.stats()
            except OSError:
                self._mark_down(member, stats_client)
                shards[label] = None
        return {"shards": shards, "ring": self.ring_stats}

    @property
    def ring_stats(self) -> dict[str, Any]:
        """The coordinator's routing counters (JSON-ready)."""
        with self._lock:
            return {
                "members": [member_label(m) for m in self.ring.members],
                "down": sorted(self._down),
                "requests_by_member": dict(self._requests_by_member),
                "handoffs": self._handoffs,
                "handoff_bytes": self._handoff_bytes,
                "failovers": self._failovers,
                "compiles_observed": self._compiles_observed,
                "schemas_tracked": len(self._holders),
            }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except OSError:
                pass

    def __enter__(self) -> "ShardedClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
