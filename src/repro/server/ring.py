"""Schema sharding across validation servers: the consistent-hash ring.

This module is the horizontal-scaling layer over :mod:`repro.server`: a
fleet of independent :class:`~repro.server.server.ValidationServer`
processes ("shards"), each with its own registry (and optionally its own
disk store), fronted by a coordinator that routes every request to the
shard *owning* the request's schema.

* :class:`ShardRing` — a consistent-hash ring with virtual nodes mapping
  schema fingerprints to members.  Placement is stable under membership
  change: removing one of N members remaps only the keys that member
  owned (about 1/N of them), never shuffling the rest — the property
  that keeps every other shard's warm registry warm through a scale
  event.  With ``replica_count=R`` every fingerprint maps to a *replica
  set* — the first R distinct members along the ring — so reads survive
  R-1 shard failures and the preference order stays deterministic under
  membership change.
* :class:`ShardedClient` — the blocking coordinator.  It fingerprints
  each request's DTD locally (memoized), routes ``check`` / ``classify``
  / ``validate`` / ``check-batch`` to any live replica of the owning
  set (primary first), and fails over deterministically along the ring's
  preference order when a shard is unreachable.  When routing would land
  a schema on a shard that has not seen it while another shard already
  holds the compiled artifact, the coordinator moves the artifact first —
  ``get-artifact`` from a holder, ``put-artifact`` to the target, in the
  artifact store's own file format — and when a shard is observed
  compiling a schema the artifact is fanned out to the rest of its
  replica set, so each schema is compiled **at most once ring-wide** and
  killing any single replica loses neither checks nor compiled work.
* Live membership: replies from shards holding a published ring view are
  stamped with the view's **epoch**; a request routed under a stale
  epoch is answered ``wrong-epoch`` together with the current member
  list, and the client rebuilds its ring and re-resolves — no restart.
  :class:`repro.server.coordinator.RingCoordinator` is the piece that
  probes shard health and publishes those views.

Addresses are either a Unix socket path (``str``) or a ``(host, port)``
tuple; :func:`parse_member` turns CLI-style ``host:port`` strings into
the latter.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from collections import Counter, OrderedDict
from typing import Any, Callable, Iterable

from repro.dtd.parser import parse_dtd
from repro.errors import ReproError
from repro.server.client import ServerError, ValidationClient
from repro.server.protocol import ProtocolError
from repro.service.compiled import schema_fingerprint

__all__ = [
    "Member",
    "ShardRing",
    "ShardedClient",
    "ShardUnavailableError",
    "member_label",
    "parse_member",
]

#: A shard address: a Unix socket path or a ``(host, port)`` pair.
Member = Any

#: Virtual nodes per member.  More vnodes smooth the key distribution
#: (the std-dev of shard load shrinks like 1/sqrt(vnodes)) at the cost
#: of a longer sorted point array; 64 keeps a 3-shard ring within a few
#: percent of even.
DEFAULT_VNODES = 64

#: How many wrong-epoch refreshes one routed call will follow before
#: giving up — bounds the retry loop when membership churns faster than
#: the client can re-resolve.
_MAX_EPOCH_REFRESHES = 4

#: Bound on the coordinator's (dtd text, root) -> fingerprint memo.
_FINGERPRINT_MEMO_SIZE = 1024


class ShardUnavailableError(ServerError, ConnectionError):
    """No replica (nor any fallback member) of a fingerprint is reachable.

    Raised by :class:`ShardedClient` when every candidate shard for a
    request failed — a **clear, immediate** error, never a hang.  It is
    both a :class:`~repro.server.client.ServerError` (structured code
    ``unreachable``) and a :class:`ConnectionError`, so callers written
    against either contract catch it.
    """

    def __init__(self, message: str, fingerprint: str | None = None) -> None:
        ServerError.__init__(self, "unreachable", message)
        self.fingerprint = fingerprint


def member_label(member: Member) -> str:
    """The canonical display / hashing label of a member address."""
    if isinstance(member, tuple):
        host, port = member
        return f"{host}:{port}"
    return str(member)


def parse_member(text: str) -> Member:
    """A CLI address string to a member: ``host:port`` or a socket path.

    Anything containing a path separator (or with no colon at all) is a
    Unix socket path; otherwise the last colon splits host from port.  A
    colon-bearing, separator-free string whose port is not a number is a
    typo, not a path — it raises :class:`ValueError` so the CLI can
    report bad usage instead of failing to connect to a phantom socket.
    """
    if "/" in text or ":" not in text:
        return text
    host, _, port_text = text.rpartition(":")
    try:
        return (host, int(port_text))
    except ValueError:
        raise ValueError(f"bad ring address {text!r}: port {port_text!r} "
                         "is not a number")


def _point(token: str) -> int:
    """A stable 64-bit position on the ring for *token*."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """A consistent-hash ring with virtual nodes and replica sets.

    Keys (schema fingerprints, but any string works) map to the first
    member point at or clockwise after the key's own point.  Each member
    contributes *vnodes* points, so load spreads evenly and a membership
    change only remaps keys adjacent to the changed member's points.

    With ``replica_count=R`` each key maps to a **replica set** — the
    first R *distinct* members walking clockwise from the key
    (:meth:`owners`); the first is the primary.  Because the walk order
    is a pure function of the hash space, the set (and the failover
    order beyond it, :meth:`preference`) is deterministic and stays
    stable for surviving members under any membership change.  A ring
    smaller than R simply yields every member.
    """

    def __init__(
        self,
        members: Iterable[Member] = (),
        vnodes: int = DEFAULT_VNODES,
        replica_count: int = 1,
    ) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        if replica_count < 1:
            raise ValueError("replica_count must be >= 1")
        self.vnodes = vnodes
        self.replica_count = replica_count
        self._members: dict[str, Member] = {}
        # Parallel arrays sorted by point: bisect runs on the ints alone.
        self._points: list[int] = []
        self._labels: list[str] = []
        for member in members:
            self.add(member)

    # -- membership ----------------------------------------------------------

    @property
    def members(self) -> list[Member]:
        """Current members, in label order (stable for display)."""
        return [self._members[label] for label in sorted(self._members)]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: object) -> bool:
        return member_label(member) in self._members

    def add(self, member: Member) -> None:
        """Add *member* (idempotent)."""
        label = member_label(member)
        if label in self._members:
            return
        self._members[label] = member
        pairs = list(zip(self._points, self._labels))
        pairs.extend(
            (_point(f"{label}#{vnode}"), label)
            for vnode in range(self.vnodes)
        )
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._labels = [entry for _, entry in pairs]

    def remove(self, member: Member) -> None:
        """Remove *member* (a no-op when absent)."""
        label = member_label(member)
        if self._members.pop(label, None) is None:
            return
        kept = [
            (point, entry)
            for point, entry in zip(self._points, self._labels)
            if entry != label
        ]
        self._points = [point for point, _ in kept]
        self._labels = [entry for _, entry in kept]

    # -- placement -----------------------------------------------------------

    def owner(self, key: str) -> Member:
        """The primary owner of *key* (raises when the ring is empty)."""
        return self.preference(key)[0]

    def owners(self, key: str) -> list[Member]:
        """The replica set of *key*: its first ``replica_count`` distinct
        members in preference order (all members when the ring is
        smaller than the replica count).  ``owners(key)[0]`` is the
        primary; ``put-artifact`` fan-out targets the whole list."""
        return self.preference(key)[: self.replica_count]

    def preference(self, key: str) -> list[Member]:
        """Every member, in deterministic failover order for *key*.

        The first entry is the owner; the rest are the distinct members
        encountered walking the ring clockwise from the key's point —
        the order a coordinator tries when shards are unreachable, and
        the order that keeps failover placement as stable as primary
        placement under membership change.
        """
        if not self._points:
            raise ValueError("ring has no members")
        start = bisect_right(self._points, _point(key))
        seen: list[Member] = []
        seen_labels: set[str] = set()
        count = len(self._points)
        for offset in range(count):
            label = self._labels[(start + offset) % count]
            if label not in seen_labels:
                seen_labels.add(label)
                seen.append(self._members[label])
                if len(seen_labels) == len(self._members):
                    break
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ", ".join(sorted(self._members))
        return (
            f"ShardRing([{labels}], vnodes={self.vnodes}, "
            f"replica_count={self.replica_count})"
        )


class ShardedClient:
    """A blocking coordinator routing requests over a :class:`ShardRing`.

    Parameters
    ----------
    members:
        Shard addresses (Unix paths and/or ``(host, port)`` tuples).
    replica_count:
        Replica-set size R: every fingerprint's reads may be served by
        any of its R owners, and compiled artifacts are fanned out to
        all R, so any R-1 of them can die without losing a check or a
        compile.
    vnodes:
        Virtual nodes per member for the ring.
    timeout:
        Per-connection socket timeout, seconds.
    connect:
        Connection factory, ``(member, timeout) -> ValidationClient``;
        injectable for tests.

    The coordinator is thread-safe: shared routing state sits behind one
    lock and each member's connection behind its own, so
    :meth:`check_corpus` can drive every shard from its own thread while
    artifact hand-offs stay serialized per connection.

    Live membership: once a reply stamps a ring ``epoch``, requests carry
    it; a ``wrong-epoch`` answer (a shard holds a newer view) delivers
    the new member list in its error object, and the client rebuilds its
    ring and re-resolves the call — placement refreshes without any
    restart.  A success reply stamped with a *newer* epoch triggers a
    one-round-trip ``health`` fetch of the membership behind it.
    """

    def __init__(
        self,
        members: Iterable[Member],
        replica_count: int = 1,
        vnodes: int = DEFAULT_VNODES,
        timeout: float | None = 30.0,
        connect: Callable[[Member, float | None], ValidationClient] | None = None,
    ) -> None:
        self.ring = ShardRing(members, vnodes=vnodes, replica_count=replica_count)
        if not len(self.ring):
            raise ValueError("a sharded client needs at least one member")
        self.timeout = timeout
        self._connect = connect or (
            lambda member, timeout: ValidationClient.connect(member, timeout=timeout)
        )
        self._lock = threading.Lock()
        self._member_locks: dict[str, threading.Lock] = {}
        self._clients: dict[str, ValidationClient] = {}
        # Every address this coordinator has ever known, keyed by label.
        # Ring membership may shrink (scale-in), but a departed member can
        # still be reachable and is exactly where hand-off artifacts come
        # from — placement and reachability are separate facts.
        self._addresses: dict[str, Member] = {
            member_label(member): member for member in self.ring.members
        }
        self._down: set[str] = set()
        self._holders: dict[str, set[str]] = {}
        self._fingerprints: OrderedDict[tuple[str, str | None], str] = OrderedDict()
        self._requests_by_member: Counter[str] = Counter()
        self._epoch: int | None = None
        self._epoch_refreshes = 0
        self._handoffs = 0
        self._handoff_bytes = 0
        self._failovers = 0
        self._compiles_observed = 0

    # -- schema identity -----------------------------------------------------

    def fingerprint(self, dtd: str, root: str | None = None) -> str:
        """The routing fingerprint of *dtd* (parsed locally, memoized).

        Raises :class:`~repro.server.protocol.ProtocolError` with code
        ``bad-dtd`` on unparseable text, mirroring the server's own
        verdict for the same defect.
        """
        key = (dtd, root)
        with self._lock:
            cached = self._fingerprints.get(key)
            if cached is not None:
                self._fingerprints.move_to_end(key)
                return cached
        try:
            fingerprint = schema_fingerprint(parse_dtd(dtd, root=root))
        except ReproError as error:
            raise ProtocolError("bad-dtd", str(error))
        with self._lock:
            self._fingerprints[key] = fingerprint
            while len(self._fingerprints) > _FINGERPRINT_MEMO_SIZE:
                self._fingerprints.popitem(last=False)
        return fingerprint

    # -- connections ---------------------------------------------------------

    def _member_lock(self, label: str) -> threading.Lock:
        with self._lock:
            lock = self._member_locks.get(label)
            if lock is None:
                lock = self._member_locks[label] = threading.Lock()
            return lock

    def _client(self, member: Member) -> ValidationClient:
        """The live connection for *member*, connecting on first use.

        Caller must hold the member's connection lock.
        """
        label = member_label(member)
        with self._lock:
            client = self._clients.get(label)
        if client is not None:
            return client
        client = self._connect(member, self.timeout)
        with self._lock:
            self._clients[label] = client
            self._addresses[label] = member
            self._down.discard(label)
        return client

    def _mark_down(
        self, member: Member, failed: ValidationClient | None = None
    ) -> None:
        """Record a failure of *member*, closing the *failed* connection.

        Only the connection that actually failed is evicted: between a
        caller's failure and this call another thread may already have
        reconnected a healthy client under the member lock, and closing
        that one would abort its in-flight work and mark a live shard
        down for nothing.
        """
        label = member_label(member)
        with self._lock:
            cached = self._clients.get(label)
            if failed is None or cached is failed:
                self._clients.pop(label, None)
                self._down.add(label)
            to_close = failed if failed is not None else cached
        if to_close is not None:
            try:
                to_close.close()
            except OSError:
                pass

    def _drop_client_locked(self, label: str, client: ValidationClient) -> None:
        """Evict and close a connection without marking the member down.

        Used after a ``wrong-epoch`` answer: the shard is alive and
        healthy (it just answered), but a rejected batch header closes
        the connection server-side, so the cached client must go.
        **Caller must hold the member's connection lock** — that is what
        guarantees no other thread is mid-request on this client, so
        closing it here cannot abort a healthy peer call (the hazard
        :meth:`_mark_down` documents).
        """
        with self._lock:
            if self._clients.get(label) is client:
                self._clients.pop(label)
        try:
            client.close()
        except OSError:
            pass

    def mark_up(self, member: Member) -> None:
        """Forget that *member* was unreachable (it is retried next call)."""
        with self._lock:
            self._down.discard(member_label(member))

    # -- ring view / epochs --------------------------------------------------

    @property
    def epoch(self) -> int | None:
        """The ring epoch this client routes under (``None`` until one is
        learned from a reply stamp, a refresh, or :meth:`refresh`)."""
        with self._lock:
            return self._epoch

    def refresh(
        self,
        members: Iterable[Member],
        epoch: int | None = None,
        replica_count: int | None = None,
    ) -> None:
        """Adopt a new ring view: rebuild placement over *members*.

        Called internally on ``wrong-epoch`` answers; public so embedders
        driving their own membership source can push views too.  An
        *epoch* older than the one already held is ignored (two racing
        membership changes converge on the newest).
        """
        old = self.ring
        with self._lock:
            if (
                epoch is not None
                and self._epoch is not None
                and epoch < self._epoch
            ):
                return
            new_ring = ShardRing(
                members,
                vnodes=old.vnodes,
                replica_count=(
                    replica_count
                    if replica_count is not None
                    else old.replica_count
                ),
            )
            if not len(new_ring):
                return  # an empty view routes nothing: keep the old one
            self.ring = new_ring
            if epoch is not None:
                self._epoch = epoch
                self._epoch_refreshes += 1
            for member in new_ring.members:
                self._addresses.setdefault(member_label(member), member)

    def _adopt_view(self, fields: dict[str, Any]) -> bool:
        """Refresh from a ``wrong-epoch`` error object (or health reply)."""
        epoch = fields.get("epoch")
        members = fields.get("members")
        if not isinstance(epoch, int) or not isinstance(members, list):
            return False
        try:
            parsed = [parse_member(str(m)) for m in members if m]
        except ValueError:
            return False
        if not parsed:
            return False
        replica_count = fields.get("replica_count")
        self.refresh(
            parsed,
            epoch=epoch,
            replica_count=(
                replica_count if isinstance(replica_count, int) else None
            ),
        )
        return True

    def _maybe_refresh(self, member: Member, result: Any) -> None:
        """Chase a newer epoch stamped on a success reply.

        The stamp carries only the epoch int; the membership behind it is
        one ``health`` round trip away on the shard that answered.
        """
        reply = result[1] if isinstance(result, tuple) else result
        if not isinstance(reply, dict):
            return
        stamped = reply.get("epoch")
        if not isinstance(stamped, int):
            return
        with self._lock:
            current = self._epoch
            if current is None:
                # First stamp seen: adopt the epoch (membership already
                # matches — this shard answered the routed request).
                self._epoch = stamped
                return
        if stamped <= current:
            return
        label = member_label(member)
        try:
            with self._member_lock(label):
                view = self._client(member).health()
        except (OSError, ServerError, ProtocolError):
            return  # best-effort: the next wrong-epoch answer will teach us
        self._adopt_view(view)

    # -- routing core --------------------------------------------------------

    def _candidates(self, fingerprint: str) -> list[Member]:
        """Failover order for *fingerprint*: live replicas first, then the
        live remainder of the preference list (availability beats
        compile-thrift when a whole replica set is dark), then — with
        everything down — the full list, because an error beats silently
        giving up and a shard may have come back."""
        preference = self.ring.preference(fingerprint)
        with self._lock:
            up = [m for m in preference if member_label(m) not in self._down]
        return up or preference

    def _call(
        self,
        fingerprint: str,
        fn: Callable[[ValidationClient, int | None], Any],
        handoff: bool = True,
    ) -> Any:
        """Run *fn* against a live replica of the owning set, failing over
        down the preference list; hand the artifact over first when
        possible.  *fn* receives the connection **and the epoch** to
        stamp on the request; a ``wrong-epoch`` answer refreshes the ring
        from the error object and re-resolves (bounded), so membership
        changes never require a client restart."""
        last_error: Exception | None = None
        for _refresh in range(_MAX_EPOCH_REFRESHES):
            candidates = self._candidates(fingerprint)
            owner = candidates[0]
            stale = False
            for member in candidates:
                label = member_label(member)
                if handoff:
                    self._ensure_artifact(member, fingerprint)
                client: ValidationClient | None = None
                wrong_epoch: ServerError | None = None
                with self._lock:
                    epoch = self._epoch
                try:
                    with self._member_lock(label):
                        client = self._client(member)
                        try:
                            result = fn(client, epoch)
                        except ServerError as error:
                            if error.code != "wrong-epoch":
                                raise
                            # The shard holds a newer view; its error
                            # object carries the refresh.  Drop the
                            # connection while still holding the member
                            # lock (a batch header rejection closes it
                            # server-side, and no peer thread can be
                            # mid-request on it under the lock).
                            self._drop_client_locked(label, client)
                            wrong_epoch = error
                except OSError as error:  # covers ConnectionError and timeouts
                    self._mark_down(member, client)
                    last_error = error
                    continue
                if wrong_epoch is not None:
                    self._adopt_view(wrong_epoch.reply.get("error") or {})
                    last_error = wrong_epoch
                    stale = True
                    break  # re-resolve placement under the new view
                with self._lock:
                    self._requests_by_member[label] += 1
                    if member is not owner:
                        self._failovers += 1
                compiled = self._note_schema(label, result)
                if compiled and self.ring.replica_count > 1:
                    # The one honest compile just happened: fan the
                    # artifact out to the rest of the replica set now, so
                    # killing this shard later loses nothing.
                    self._replicate(fingerprint)
                self._maybe_refresh(member, result)
                return result
            if not stale:
                break
        raise ShardUnavailableError(
            f"no reachable replica for fingerprint {fingerprint[:16]}...: "
            f"{last_error}",
            fingerprint=fingerprint,
        )

    def _note_schema(self, label: str, result: Any) -> bool:
        """Record which shard holds the schema a reply names; ``True``
        when the reply shows the shard compiled it just now."""
        reply = result[1] if isinstance(result, tuple) else result
        schema = reply.get("schema") if isinstance(reply, dict) else None
        if not isinstance(schema, dict):
            return False
        fingerprint = schema.get("fingerprint")
        if not isinstance(fingerprint, str):
            return False
        with self._lock:
            holders = self._holders.setdefault(fingerprint, set())
            holders.add(label)
            if schema.get("registry") == "miss":
                # The shard compiled: the one compile this schema gets.
                self._compiles_observed += 1
                return True
        return False

    def _replicate(self, fingerprint: str) -> None:
        """Fan the compiled artifact out to every replica of *fingerprint*.

        Best-effort, like all artifact movement: an unreachable replica
        simply compiles for itself if traffic ever reaches it cold.
        """
        for member in self.ring.owners(fingerprint):
            self._ensure_artifact(member, fingerprint)

    def _ensure_artifact(self, member: Member, fingerprint: str) -> None:
        """Move the compiled artifact to *member* when another shard has it.

        Best-effort: any failure (no holder, a holder gone dark, a
        transfer error) simply lets the target shard compile for itself —
        slower, never wrong.
        """
        label = member_label(member)
        with self._lock:
            holders = self._holders.get(fingerprint, set())
            if label in holders:
                return
            sources = [h for h in holders if h not in self._down and h != label]
        if not sources:
            return
        blob: bytes | None = None
        for source in sources:
            source_member = self._member_by_label(source)
            if source_member is None:
                continue
            source_client: ValidationClient | None = None
            try:
                with self._member_lock(source):
                    source_client = self._client(source_member)
                    blob = source_client.get_artifact(fingerprint)
                break
            except OSError:
                self._mark_down(source_member, source_client)
            except ProtocolError:
                return  # garbled transfer: let the target compile
            except Exception:
                # artifact-miss and kin: the holder hint was stale.
                with self._lock:
                    self._holders.get(fingerprint, set()).discard(source)
        if blob is None:
            return
        try:
            with self._member_lock(label):
                self._client(member).put_artifact(fingerprint, blob)
        except Exception:  # noqa: BLE001 - best-effort transfer
            return  # the routed call will fail over / compile as needed
        with self._lock:
            self._holders.setdefault(fingerprint, set()).add(label)
            self._handoffs += 1
            self._handoff_bytes += len(blob)

    def _member_by_label(self, label: str) -> Member | None:
        with self._lock:
            known = self._addresses.get(label)
        if known is not None:
            return known
        for member in self.ring.members:
            if member_label(member) == label:
                return member
        return None

    # -- the ops -------------------------------------------------------------

    def check(
        self,
        dtd: str,
        doc: str,
        algorithm: str | None = None,
        root: str | None = None,
        id: Any = None,
    ) -> dict[str, Any]:
        """Potential-validity check, served by any live replica of the
        schema's owning set (primary preferred)."""
        fingerprint = self.fingerprint(dtd, root)
        return self._call(
            fingerprint,
            lambda client, epoch: client.check(
                dtd, doc, algorithm=algorithm, root=root, id=id, epoch=epoch
            ),
        )

    def validate(
        self, dtd: str, doc: str, root: str | None = None, id: Any = None
    ) -> dict[str, Any]:
        """Standard DTD validation, routed like :meth:`check`."""
        fingerprint = self.fingerprint(dtd, root)
        return self._call(
            fingerprint,
            lambda client, epoch: client.validate(
                dtd, doc, root=root, id=id, epoch=epoch
            ),
        )

    def classify(
        self, dtd: str, root: str | None = None, id: Any = None
    ) -> dict[str, Any]:
        """Definition 6-8 classification, routed like :meth:`check`."""
        fingerprint = self.fingerprint(dtd, root)
        return self._call(
            fingerprint,
            lambda client, epoch: client.classify(
                dtd, root=root, id=id, epoch=epoch
            ),
        )

    def check_batch(
        self,
        dtd: str,
        docs: list[str],
        algorithm: str | None = None,
        root: str | None = None,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """Stream a whole corpus for one schema to a live owning replica."""
        fingerprint = self.fingerprint(dtd, root)
        return self._call(
            fingerprint,
            lambda client, epoch: client.check_batch(
                dtd, docs, algorithm=algorithm, root=root, epoch=epoch
            ),
        )

    def check_corpus(
        self,
        batches: list[tuple],
        algorithm: str | None = None,
        root: str | None = None,
    ) -> list[tuple[list[dict[str, Any]] | None, dict[str, Any]]]:
        """Check many schema batches, shards driven in parallel.

        Each batch is ``(dtd, docs)`` or ``(dtd, docs, root)`` — a
        per-batch root overrides the *root* default.  Batches are grouped
        by owning shard and each shard's groups run sequentially over its
        one connection while distinct shards run concurrently (one thread
        per shard) — the scale-out shape the E12 benchmark measures.

        Results come back in *batches* order.  A batch that failed —
        every candidate shard unreachable, a server rejection — does
        **not** abort the rest of the corpus (a dead shard mid-corpus
        used to raise away every other shard's finished work): its entry
        is ``(None, trailer)`` where the trailer is the structured error
        shape ``{"ok": False, "error": {"code": ..., "message": ...}}``,
        so callers distinguish per-batch failures positionally, exactly
        like per-item errors inside a batch.
        """
        normalized: list[tuple[str, list[str], str | None]] = [
            (entry[0], entry[1], entry[2] if len(entry) > 2 else root)
            for entry in batches
        ]
        by_member: dict[str, list[int]] = {}
        for index, (dtd, _docs, batch_root) in enumerate(normalized):
            label = member_label(
                self.ring.owner(self.fingerprint(dtd, batch_root))
            )
            by_member.setdefault(label, []).append(index)
        results: list[Any] = [None] * len(batches)

        def failure_entry(error: Exception) -> tuple[None, dict[str, Any]]:
            code = getattr(error, "code", None)
            if code is None:
                code = (
                    "unreachable"
                    if isinstance(error, (ConnectionError, OSError))
                    else "internal"
                )
            return (
                None,
                {"ok": False, "error": {"code": code, "message": str(error)}},
            )

        def run(indexes: list[int]) -> None:
            for index in indexes:
                dtd, docs, batch_root = normalized[index]
                try:
                    results[index] = self.check_batch(
                        dtd, docs, algorithm=algorithm, root=batch_root
                    )
                except Exception as error:  # noqa: BLE001 - surfaced in place
                    results[index] = failure_entry(error)

        threads = [
            threading.Thread(target=run, args=(indexes,), daemon=True)
            for indexes in by_member.values()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results

    def stats(self) -> dict[str, Any]:
        """Per-shard server stats plus the coordinator's own counters."""
        shards: dict[str, Any] = {}
        for member in self.ring.members:
            label = member_label(member)
            stats_client: ValidationClient | None = None
            try:
                with self._member_lock(label):
                    stats_client = self._client(member)
                    shards[label] = stats_client.stats()
            except OSError:
                self._mark_down(member, stats_client)
                shards[label] = None
        return {"shards": shards, "ring": self.ring_stats}

    @property
    def ring_stats(self) -> dict[str, Any]:
        """The coordinator's routing counters (JSON-ready)."""
        with self._lock:
            return {
                "members": [member_label(m) for m in self.ring.members],
                "down": sorted(self._down),
                "epoch": self._epoch,
                "epoch_refreshes": self._epoch_refreshes,
                "replica_count": self.ring.replica_count,
                "requests_by_member": dict(self._requests_by_member),
                "handoffs": self._handoffs,
                "handoff_bytes": self._handoff_bytes,
                "failovers": self._failovers,
                "compiles_observed": self._compiles_observed,
                "schemas_tracked": len(self._holders),
            }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except OSError:
                pass

    def __enter__(self) -> "ShardedClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
