"""The asyncio validation server.

:class:`ValidationServer` is the long-running serving front over the
service layer: one warm :class:`~repro.service.registry.SchemaRegistry`
(optionally backed by a persistent
:class:`~repro.service.store.ArtifactStore`) answers potential-validity
requests for many concurrent connections, speaking the newline-delimited
JSON protocol of :mod:`repro.server.protocol` over TCP and/or a Unix
domain socket.

Execution model
---------------
The event loop owns all registry and schema-resolution state; verdict
work is CPU-bound and runs off-loop:

* ``workers == 0`` — each check runs on a thread (``asyncio.to_thread``).
  The artifact is shared in-process; fine for tests and modest loads.
* ``workers > 0`` — checks run on a :class:`ProcessPoolExecutor` whose
  workers hold their own fingerprint-keyed artifact caches.  A task
  message normally carries only ``(fingerprint, document)``; the compiled
  artifact itself is shipped (pickled) to the pool **only when a worker
  reports a miss**, and workers with a disk store load by fingerprint
  without any shipping at all.  This is the batch layer's
  ship-the-artifact-once discipline extended to a long-lived pool.

Shutdown is graceful by default: :meth:`ValidationServer.stop` closes the
listeners, lets every in-flight request finish and its response flush,
then tears down connections and the pool.

:class:`ServerThread` runs a server on a dedicated event-loop thread —
the form the test suite, the benchmark, and embedders use.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import errno
import os
import pickle
import socket
import stat
import threading
from collections import Counter, OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import replace as dataclass_replace
from time import monotonic
from typing import Any

from repro.config import CheckerConfig, DEFAULT_CONFIG
from repro.core.classify import classify_dtd
from repro.core.coarse import encode_coarse
from repro.core.pv import PVChecker
from repro.dtd.parser import parse_dtd
from repro.errors import ReproError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, Stopwatch
from repro.obs.promtext import render as render_prometheus
from repro.server import protocol
from repro.server.client import ServerError, ValidationClient
from repro.server.gossip import DEFAULT_PROBE_INTERVAL, GossipAgent
from repro.server.placement import Member, PlacementView, parse_member
from repro.server.protocol import ProtocolError, Request
from repro.service.cache import VerdictCache
from repro.service.compiled import CompiledSchema
from repro.service.dispatch import DEFAULT_POLICY, BackendDispatcher, DispatchPolicy
from repro.service.registry import SchemaRegistry
from repro.service.store import ArtifactStore, decode_artifact, encode_artifact
from repro.validity.validator import DTDValidator
from repro.xmlmodel.parser import parse_xml

__all__ = ["ValidationServer", "ServerThread", "ArtifactMissError", "HANDLED_OPS"]

#: Every op :class:`ValidationServer` dispatches.  Kept in lockstep with
#: :data:`repro.server.protocol.OPS` (and with ``docs/PROTOCOL.md``) by a
#: test that diffs the three.
HANDLED_OPS = (
    "check",
    "classify",
    "validate",
    "stats",
    "check-batch",
    "put-artifact",
    "get-artifact",
    "get-coarse",
    "health",
    "ring-config",
    "metrics",
    "probe",
)

#: Socket timeout for the indirect-probe relay's reach attempt.
_PROBE_TIMEOUT = 2.0

#: Default for how many of the most-requested fingerprints ``stats``
#: reports — the list a joining shard's prefetch is computed from.
#: Configurable per server via ``hot_limit`` / ``serve --hot-limit``.
HOT_FINGERPRINTS = 32

#: The request phases the server times into ``repro_phase_seconds``.
_PHASES = ("parse", "queue", "decide", "verdict", "artifact")

#: Bound on the per-fingerprint request counter; past this the counter is
#: compacted to its hottest half (exact counts are a prefetch heuristic,
#: not an accounting invariant).
_HOT_COUNTER_SIZE = 4096

#: Bound on the (dtd text, root) -> fingerprint memo that lets warm
#: requests skip DTD re-parsing entirely.
_TEXT_INDEX_SIZE = 1024

#: Bound on each pool worker's fingerprint-keyed caches.
_POOL_CACHE_SIZE = 64

#: Above this many fingerprints the shipped-hint set is reset; correctness
#: is unaffected (a wrongly assumed-shipped artifact triggers the
#: ArtifactMissError retry, which always ships).
_SHIPPED_HINT_SIZE = 4096


class _BoundedCache(OrderedDict):
    """A small LRU mapping: inserting past *maxsize* evicts the oldest.

    The server and its pool workers key derived objects (dispatchers,
    checkers, validators, artifacts) by schema fingerprint; without a
    bound, every schema ever served would stay pinned in memory and
    defeat the registry's LRU budget.
    """

    def __init__(self, maxsize: int) -> None:
        super().__init__()
        self.maxsize = maxsize

    def __setitem__(self, key: Any, value: Any) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.maxsize:
            self.popitem(last=False)

    def get(self, key: Any, default: Any = None) -> Any:
        value = super().get(key, default)
        if key in self:
            self.move_to_end(key)
        return value


#: Sentinel :meth:`ValidationServer._read_line` returns for an over-limit
#: request line (distinct from ``None``, which means EOF/shutdown).
_OVERLONG = b"\x00overlong\x00"


def _remove_stale_unix_socket(path: str) -> None:
    """Unlink *path* when it is a socket nobody is listening on.

    A crashed server leaves its socket file behind, and binding over it
    raises ``EADDRINUSE`` even though no process serves it.  Probing with
    a connect distinguishes the two cases: connection refused (or a
    similar failure) means stale — remove it; a successful connect means
    another live server owns the path — leave it so the bind fails loudly.
    Non-socket files are never touched: clobbering a user's regular file
    because they mistyped a path would be worse than the bind error.
    """
    try:
        mode = os.stat(path).st_mode
    except OSError:
        return  # nothing there: the normal fresh-start case
    if not stat.S_ISSOCK(mode):
        return
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(1.0)
        probe.connect(path)
    except OSError:
        try:
            os.unlink(path)
        except OSError as error:
            if error.errno != errno.ENOENT:
                raise
    else:
        raise OSError(
            errno.EADDRINUSE,
            f"unix socket {path!r} is in use by a live server",
        )
    finally:
        probe.close()


class ArtifactMissError(Exception):
    """A pool worker does not hold the artifact for this fingerprint.

    Crosses the process boundary as the worker's way of asking the server
    to ship the pickled artifact along with the retry.
    """

    def __init__(self, fingerprint: str) -> None:
        super().__init__(fingerprint)
        self.fingerprint = fingerprint


# -- pool-worker state -------------------------------------------------------
#
# One artifact cache per worker process, keyed by fingerprint.  Module-level
# so the initializer and task function pickle by reference.

_POOL_STORE: ArtifactStore | None = None
_POOL_SCHEMAS: "_BoundedCache" = _BoundedCache(_POOL_CACHE_SIZE)
_POOL_DISPATCHERS: "_BoundedCache" = _BoundedCache(_POOL_CACHE_SIZE)
_POOL_CHECKERS: "_BoundedCache" = _BoundedCache(4 * _POOL_CACHE_SIZE)


def _init_pool_worker(store_dir: str | None) -> None:
    global _POOL_STORE
    _POOL_STORE = ArtifactStore(store_dir) if store_dir else None


def _pool_schema(fingerprint: str, blob: bytes | None) -> CompiledSchema:
    schema = _POOL_SCHEMAS.get(fingerprint)
    if schema is None and blob is not None:
        schema = pickle.loads(blob)
        _POOL_SCHEMAS[fingerprint] = schema
    if schema is None and _POOL_STORE is not None:
        schema = _POOL_STORE.load(fingerprint)
        if schema is not None:
            _POOL_SCHEMAS[fingerprint] = schema
    if schema is None:
        raise ArtifactMissError(fingerprint)
    return schema


def _dispatched_fields(
    dispatcher: BackendDispatcher, document: Any, doc_parse: float
) -> dict[str, Any]:
    """One ``auto`` dispatch (admission included) as response fields.

    Shared by the in-process thread path and the pool-worker path so the
    admission stage behaves identically on both; the server counts the
    admission metrics from these fields on its side of the process
    boundary (a pool worker's registry is invisible to scrapers).
    """
    inner: dict[str, float] = {}
    dispatched = dispatcher.check_document(document, timings=inner)
    decision = dispatched.decision
    timings: dict[str, Any] = {"doc_parse": doc_parse}
    timings.update(inner)
    timings["backend"] = decision.algorithm
    fields: dict[str, Any] = {
        "verdict": protocol.verdict_fields(dispatched.verdict),
        "algorithm": decision.algorithm,
        "reason": decision.reason,
        "timings": timings,
    }
    if decision.admission is not None:
        fields["admission"] = decision.admission
        if decision.admission_mismatch:
            fields["admission_mismatch"] = True
    return fields


def _pool_check(
    fingerprint: str,
    blob: bytes | None,
    doc_text: str,
    algorithm: str,
    config: CheckerConfig,
    policy: DispatchPolicy,
) -> dict[str, Any]:
    """Check one document in a pool worker; returns response fields.

    The worker times its own phases with its local clock and ships the
    *durations* back (floats pickle fine); the server derives queue-wait
    from its side of the boundary, so no cross-process clock is assumed.
    """
    schema = _pool_schema(fingerprint, blob)
    parse_watch = Stopwatch()
    try:
        document = parse_xml(doc_text)
    except ReproError as error:
        return {"error": ("bad-document", str(error))}
    doc_parse = parse_watch.seconds
    if algorithm == "auto":
        dispatcher = _POOL_DISPATCHERS.get(fingerprint)
        if dispatcher is None:
            dispatcher = BackendDispatcher(schema, policy=policy, config=config)
            _POOL_DISPATCHERS[fingerprint] = dispatcher
        return _dispatched_fields(dispatcher, document, doc_parse)
    key = (fingerprint, algorithm)
    checker = _POOL_CHECKERS.get(key)
    if checker is None:
        checker = schema.checker(algorithm, config)
        _POOL_CHECKERS[key] = checker
    verdict_watch = Stopwatch()
    verdict = checker.check_document(document)
    return {
        "verdict": protocol.verdict_fields(verdict),
        "algorithm": algorithm,
        "reason": None,
        "timings": {
            "doc_parse": doc_parse,
            "verdict": verdict_watch.seconds,
            "backend": algorithm,
        },
    }


class ValidationServer:
    """A long-running NDJSON potential-validity service.

    Dispatches every op of the wire protocol (:data:`HANDLED_OPS`;
    specified in full in ``docs/PROTOCOL.md``): the verdict ops
    ``check`` / ``classify`` / ``validate``, the streaming
    ``check-batch``, ``stats`` (including the ``hot`` most-requested
    fingerprint list that feeds a ring coordinator's join-prefetch),
    the artifact hand-off pair ``put-artifact`` / ``get-artifact`` (and
    the lightweight ``get-coarse`` admission-summary fetch), the
    ``health`` liveness probe, and ``ring-config``.  When a ring view
    has been published (:meth:`set_ring_view` or the ``ring-config``
    op), every success reply is stamped with the view's epoch and a
    request routed under an older epoch is answered ``wrong-epoch``
    together with the current membership.

    Parameters
    ----------
    registry:
        The warm artifact cache shared by every connection.  A fresh one
        is created when omitted (optionally backed by *store*).
    store:
        Persistent artifact store.  Attached to the registry (so restarts
        skip recompilation) and, when a process pool is used, passed to
        workers so they can load artifacts by fingerprint from disk.
    workers:
        ``0`` checks on threads in this process; ``N > 0`` uses a process
        pool of that size.
    default_algorithm:
        Backend when a request names none; ``"auto"`` (the default) routes
        through the shape dispatcher.
    admission:
        Overrides ``policy.admission`` (``"off"`` / ``"on"`` / ``"audit"``)
        — the coarse-to-fine pre-filter that runs before any verdict
        backend on ``auto``-dispatched checks.  The policy (admission
        mode included) pickles to pool workers, so the stage behaves
        identically on threads and on a process pool.
    verdict_cache:
        Entries in the verdict memo cache (``serve --verdict-cache N``);
        ``0`` (the default) disables it.  Repeat documents — same schema
        fingerprint, same bytes, same effective algorithm — are answered
        from the cache without parsing, the reply stamped ``"cached":
        true``; hits, misses and evictions feed
        ``repro_verdict_cache_total``.
    """

    def __init__(
        self,
        registry: SchemaRegistry | None = None,
        store: ArtifactStore | None = None,
        workers: int = 0,
        config: CheckerConfig = DEFAULT_CONFIG,
        policy: DispatchPolicy = DEFAULT_POLICY,
        default_algorithm: str = "auto",
        admission: str | None = None,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        slow_ms: float | None = None,
        hot_limit: int = HOT_FINGERPRINTS,
        gossip: bool = False,
        gossip_interval: float = DEFAULT_PROBE_INTERVAL,
        gossip_seeds: tuple[Member | str, ...] = (),
        verdict_cache: int = 0,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if verdict_cache < 0:
            raise ValueError("verdict_cache must be >= 0 (0 disables)")
        if gossip_interval <= 0:
            raise ValueError("gossip_interval must be > 0")
        if default_algorithm not in protocol.ALGORITHMS:
            raise ValueError(f"unknown default algorithm {default_algorithm!r}")
        if hot_limit < 1:
            raise ValueError("hot_limit must be >= 1")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError("slow_ms must be >= 0")
        if registry is None:
            registry = SchemaRegistry(store=store)
        elif store is not None and registry.store is None:
            registry.attach_store(store)
        self.registry = registry
        self.store = store if store is not None else registry.store
        self.workers = workers
        self.config = config
        if admission is not None:
            # replace() re-runs DispatchPolicy validation, so a bad mode
            # fails here, not on the first request.
            policy = dataclass_replace(policy, admission=admission)
        self.policy = policy
        self.default_algorithm = default_algorithm
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()
        self.slow_ms = slow_ms
        self.hot_limit = hot_limit
        # Handles are resolved once here, so the per-request cost of a
        # metric is a lock-guarded add, not a registry lookup.
        m = self.metrics
        self._m_requests = {
            op: m.counter("repro_requests_total", op=op) for op in protocol.OPS
        }
        self._m_latency = {
            op: m.histogram("repro_request_seconds", op=op)
            for op in protocol.OPS
        }
        self._m_errors = {
            code: m.counter("repro_errors_total", code=code)
            for code in protocol.ERROR_CODES
        }
        self._m_phases = {
            phase: m.histogram("repro_phase_seconds", phase=phase)
            for phase in _PHASES
        }
        self._m_verdict = {
            backend: m.histogram("repro_verdict_seconds", backend=backend)
            for backend in protocol.ALGORITHMS
            if backend != "auto"
        }
        self._m_dispatch = {
            backend: m.counter("repro_dispatch_total", backend=backend)
            for backend in (*protocol.ALGORITHMS, "coarse")
            if backend != "auto"
        }
        self._m_admission = {
            outcome: m.counter("repro_admission_total", outcome=outcome)
            for outcome in ("accept", "reject", "uncertain")
        }
        self._m_admission_seconds = m.histogram("repro_admission_seconds")
        self._m_admission_mismatch = m.counter(
            "repro_admission_mismatches_total"
        )
        self._m_cache = {
            outcome: m.counter("repro_verdict_cache_total", outcome=outcome)
            for outcome in ("hit", "miss", "evict")
        }
        self._m_parse_seconds = m.histogram("repro_parse_seconds")
        self._m_batch_items = m.counter("repro_batch_items_total")
        self._m_slow = m.counter("repro_slow_requests_total")
        self._m_traced = m.counter("repro_traced_requests_total")
        self._g_inflight = m.gauge("repro_inflight")
        self._g_connections = m.gauge("repro_connections")
        self.registry.attach_metrics(m)
        if self.store is not None:
            self.store.attach_observability(metrics=m, events=self.events)
        self._verdict_cache = (
            VerdictCache(verdict_cache) if verdict_cache > 0 else None
        )
        self._pool: ProcessPoolExecutor | None = None
        self._shipped: set[str] = set()
        # Derived-object caches hold compiled artifacts alive; bounding
        # them by the registry's own budget keeps a long-lived server's
        # memory proportional to maxsize, not to every schema ever seen.
        self._dispatchers: _BoundedCache = _BoundedCache(registry.maxsize)
        self._checkers: _BoundedCache = _BoundedCache(4 * registry.maxsize)
        self._validators: _BoundedCache = _BoundedCache(registry.maxsize)
        self._text_index: OrderedDict[tuple[str, str | None], str] = OrderedDict()
        self._dispatch_counts: Counter[str] = Counter()
        self._servers: list[asyncio.AbstractServer] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._closing: asyncio.Event | None = None
        self._unix_path: str | None = None
        self._tcp_address: tuple[str, int] | None = None
        self._requests = 0
        self._errors = 0
        self._batches = 0
        self._batch_items = 0
        # Verdict work currently executing off-loop — the load signal a
        # "least-inflight" routing client balances on, surfaced in stats.
        self._inflight = 0
        self._started_at: float | None = None
        # Per-fingerprint request counts: the "hot" list a joining shard's
        # prefetch is computed from.
        self._hot_counts: Counter[str] = Counter()
        # The published ring view — the shared placement core with the
        # server-side (strict) reconciliation discipline.  Epoch is None
        # until a coordinator (or the CLI's local-ring mode) pushes a
        # view; only superseding views replace it.
        self._placement = PlacementView()
        # Decentralized membership: when enabled, a GossipAgent (started
        # with the server, once its own address is known) probes peers
        # and mutates this very placement view — no coordinator needed.
        self._gossip_enabled = bool(gossip)
        self._gossip_interval = gossip_interval
        self._gossip_seeds = tuple(
            parse_member(seed) if isinstance(seed, str) else seed
            for seed in gossip_seeds
        )
        self._gossip: GossipAgent | None = None

    # -- endpoints -----------------------------------------------------------

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        """``(host, port)`` actually bound (port resolved when 0 was asked)."""
        return self._tcp_address

    @property
    def unix_path(self) -> str | None:
        return self._unix_path

    async def start(
        self,
        host: str | None = None,
        port: int | None = None,
        unix_path: str | None = None,
    ) -> None:
        """Bind the requested endpoints and begin accepting connections."""
        if host is None and unix_path is None:
            raise ValueError("need a TCP host/port or a unix socket path")
        self._closing = asyncio.Event()
        self._started_at = monotonic()
        if self.workers > 0 and self._pool is None:
            self._pool = self._make_pool()
        if host is not None:
            server = await asyncio.start_server(
                self._on_connection,
                host=host,
                port=port or 0,
                limit=protocol.MAX_LINE_BYTES,
            )
            sockname = server.sockets[0].getsockname()
            self._tcp_address = (sockname[0], sockname[1])
            self._servers.append(server)
        if unix_path is not None:
            _remove_stale_unix_socket(unix_path)
            server = await asyncio.start_unix_server(
                self._on_connection,
                path=unix_path,
                limit=protocol.MAX_LINE_BYTES,
            )
            self._unix_path = unix_path
            self._servers.append(server)
        if self._gossip_enabled and self._gossip is None:
            label = self._member_label()
            if label is not None:
                self._gossip = GossipAgent(
                    self._placement,
                    label,
                    seeds=self._gossip_seeds,
                    interval=self._gossip_interval,
                    metrics=self.metrics,
                    events=self.events,
                )
                self._gossip.start()

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or cancellation) ends the server."""
        assert self._closing is not None, "start() first"
        await self._closing.wait()

    async def stop(self, drain_timeout: float | None = 30.0) -> None:
        """Stop accepting, drain in-flight requests, tear everything down."""
        if self._gossip is not None:
            gossip = self._gossip
            self._gossip = None
            await asyncio.to_thread(gossip.stop)
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        if self._closing is not None:
            self._closing.set()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=drain_timeout)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            await asyncio.to_thread(pool.shutdown, True)
        if self._unix_path is not None:
            # Leave nothing behind: a lingering socket path would force
            # the next start() through the stale-socket probe (and, on a
            # crashed process, used to mean EADDRINUSE forever).
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
            self._unix_path = None

    # -- ring membership -----------------------------------------------------

    @property
    def placement(self) -> PlacementView:
        """The shared placement view (epoch, members, replica count)."""
        return self._placement

    @property
    def ring_view(self) -> tuple[int, list[str], int] | None:
        """The published ``(epoch, member labels, replica_count)``, if any."""
        return self._placement.as_tuple()

    def set_ring_view(
        self,
        epoch: int,
        members: list[str],
        replica_count: int = 1,
        read_policy: str | None = None,
    ) -> None:
        """Adopt a ring view (epoch-guarded; older epochs are rejected).

        The wire path is the ``ring-config`` op; embedders (the CLI's
        local-ring mode, tests) call this directly.  Delegates the
        reconciliation discipline to
        :meth:`~repro.server.placement.PlacementView.publish`: raises
        :class:`~repro.server.protocol.ProtocolError` with code
        ``wrong-epoch`` when *epoch* does not supersede the view already
        held (older, or equal with different contents); re-pushing the
        identical view is idempotent.
        """
        self._placement.publish(
            epoch, members, replica_count=replica_count,
            read_policy=read_policy,
        )

    def _view_details(self) -> dict[str, Any] | None:
        """The current view as ``wrong-epoch`` error-object fields."""
        return self._placement.details()

    def _check_epoch(self, request: Request) -> None:
        """Reject a request routed under an epoch older than this view.

        A request carrying no epoch (or arriving before any view was
        published) is always served — epochs tighten routing, they do not
        gate plain clients out.
        """
        self._placement.check_request_epoch(request.epoch)

    def _count_hot(self, fingerprint: str, requests: int = 1) -> None:
        self._hot_counts[fingerprint] += requests
        if len(self._hot_counts) > _HOT_COUNTER_SIZE:
            self._hot_counts = Counter(
                dict(self._hot_counts.most_common(_HOT_COUNTER_SIZE // 2))
            )

    # -- connection handling -------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._closing is not None
        try:
            while not self._closing.is_set():
                line = await self._read_line(reader)
                if line is None:  # EOF, shutdown, or an unrecoverable read
                    break
                if line is _OVERLONG:
                    writer.write(
                        protocol.encode(
                            protocol.error_payload(
                                "bad-request",
                                f"request line exceeds {protocol.MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line.strip():
                    continue  # blank keep-alive lines are ignored
                # Decode once here: the batch op changes the read loop
                # itself (items follow on this reader), so the branch must
                # see the real decoded op, not a byte sniff of the line.
                request: Request | None = None
                decode_error: ProtocolError | None = None
                try:
                    request = protocol.decode_request(line)
                except ProtocolError as error:
                    decode_error = error
                if request is not None and request.op == "check-batch":
                    self._requests += 1
                    if not await self._handle_batch(request, reader, writer):
                        break  # framing lost mid-batch: close
                    continue
                response = await self._handle_line(line, request, decode_error)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes | None:
        """One request line, or ``None`` on EOF/shutdown, racing the two.

        An idle connection is parked in ``readline``; racing the read
        against the closing event is what lets :meth:`stop` drain busy
        connections without waiting on idle ones forever.
        """
        assert self._closing is not None
        read = asyncio.ensure_future(reader.readline())
        closing = asyncio.ensure_future(self._closing.wait())
        done, pending = await asyncio.wait(
            {read, closing}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        if read not in done:
            return None
        try:
            line = read.result()
        except ValueError:  # stream limit overrun: cannot resync the framing
            return _OVERLONG
        except (ConnectionError, OSError):
            return None
        return line or None

    # -- request handling ----------------------------------------------------

    async def _handle_line(
        self,
        line: bytes,
        request: Request | None = None,
        decode_error: ProtocolError | None = None,
    ) -> dict[str, Any]:
        """One request line to one response object.

        The connection loop passes its already-decoded *request* (or the
        *decode_error* that decoding produced) so the line is parsed only
        once; called with just *line*, it decodes for itself.
        """
        watch = Stopwatch()
        self._requests += 1
        request_id: Any = None  # echoed even on errors, once decoded
        timings: dict[str, Any] = {}
        try:
            if decode_error is not None:
                raise decode_error
            if request is None:
                request = protocol.decode_request(line)
            request_id = request.id
            response = await self._dispatch_request(request, timings)
        except ProtocolError as error:
            self._errors += 1
            self._m_errors.get(error.code, self._m_errors["internal"]).inc()
            return protocol.error_payload(
                error.code, error.message, id=request_id, details=error.details
            )
        except Exception as error:  # noqa: BLE001 - a reply beats a disconnect
            self._errors += 1
            self._m_errors["internal"].inc()
            return protocol.error_payload(
                "internal", f"{type(error).__name__}: {error}", id=request_id
            )
        # The reply stamp and the latency histogram read one Stopwatch,
        # so the two can never disagree.
        response["elapsed_ms"] = watch.elapsed_ms
        self._observe_request(request.op, watch, timings)
        if request.trace is not None:
            self._m_traced.inc()
            response["trace"] = {
                "id": request.trace,
                "span": self._server_span(request.op, watch, timings),
            }
        self._note_slow(request.op, watch, request.trace, request_id)
        epoch = self._placement.epoch
        if epoch is not None:
            response.setdefault("epoch", epoch)
            response.setdefault("load", self._load_fields())
        if request_id is not None:
            response["id"] = request_id
        return response

    # -- instrumentation helpers ---------------------------------------------

    def _observe_request(
        self, op: str, watch: Stopwatch, timings: dict[str, Any]
    ) -> None:
        """Record one served request: op counter, latency, phase timers."""
        self._m_requests[op].inc()
        self._m_latency[op].observe(watch.seconds)
        self._observe_phases(timings)

    def _observe_phases(self, timings: dict[str, Any]) -> None:
        for phase in _PHASES:
            seconds = timings.get(phase)
            if seconds is not None:
                self._m_phases[phase].observe(seconds)
        backend = timings.get("backend")
        if backend in self._m_verdict and timings.get("verdict") is not None:
            self._m_verdict[backend].observe(timings["verdict"])
        admission = timings.get("admission")
        if admission is not None:
            self._m_admission_seconds.observe(admission)

    def _note_slow(
        self, op: str | None, watch: Stopwatch, trace: str | None, id: Any
    ) -> None:
        if self.slow_ms is None:
            return
        elapsed_ms = watch.elapsed_ms
        if elapsed_ms <= self.slow_ms:
            return
        self._m_slow.inc()
        fields: dict[str, Any] = {
            "member": self._member_label(),
            "op": op,
            "elapsed_ms": elapsed_ms,
            "slow_ms": self.slow_ms,
        }
        if trace is not None:
            fields["trace"] = trace
        if id is not None:
            fields["id"] = id
        self.events.emit("slow-request", **fields)

    def _member_label(self) -> str | None:
        if self._unix_path is not None:
            return self._unix_path
        if self._tcp_address is not None:
            return f"{self._tcp_address[0]}:{self._tcp_address[1]}"
        return None

    def _server_span(
        self, op: str, watch: Stopwatch, timings: dict[str, Any]
    ) -> dict[str, Any]:
        """The per-hop span a traced request's reply carries."""
        span: dict[str, Any] = {
            "member": self._member_label(),
            "op": op,
            "total_ms": watch.elapsed_ms,
        }
        for phase in _PHASES:
            seconds = timings.get(phase)
            if seconds is not None:
                span[f"{phase}_ms"] = round(seconds * 1000.0, 3)
        backend = timings.get("backend")
        if backend is not None:
            span["backend"] = backend
        return span

    async def _dispatch_request(
        self, request: Request, timings: dict[str, Any]
    ) -> dict[str, Any]:
        if request.op == "health":
            return self._op_health(request)
        if request.op == "metrics":
            return self._op_metrics()
        if request.op == "ring-config":
            return self._op_ring_config(request)
        if request.op == "probe":
            # Before the epoch gate: failure detection must keep working
            # while views disagree.
            return await self._op_probe(request)
        self._check_epoch(request)
        if request.op == "stats":
            return self._op_stats()
        if request.op == "put-artifact":
            return await self._op_put_artifact(request, timings)
        if request.op == "get-artifact":
            return await self._op_get_artifact(request, timings)
        if request.op == "get-coarse":
            return await self._op_get_coarse(request, timings)
        assert request.dtd is not None  # decode_request guarantees it
        parse_watch = Stopwatch()
        schema, disposition = self._resolve_schema(request.dtd, request.root)
        timings["parse"] = parse_watch.seconds
        self._count_hot(schema.fingerprint)
        if request.op == "check":
            return await self._op_check(request, schema, disposition, timings)
        if request.op == "classify":
            return self._op_classify(schema, disposition)
        if request.op == "validate":
            return await self._op_validate(request, schema, disposition, timings)
        raise ProtocolError("unsupported-op", f"unhandled op {request.op!r}")

    def _resolve_schema(
        self, dtd_text: str, root: str | None
    ) -> tuple[CompiledSchema, str]:
        """The compiled artifact for *dtd_text* plus how it was obtained.

        The text-level memo makes the warm path textual: a repeated request
        body never re-parses its DTD, never re-serializes for hashing —
        one dict probe and one registry probe.  Runs on the event loop, so
        the memo and hit accounting need no extra locking.
        """
        key = (dtd_text, root)
        fingerprint = self._text_index.get(key)
        if fingerprint is not None:
            schema = self.registry.lookup(fingerprint, count=True)
            if schema is not None:
                self._text_index.move_to_end(key)
                return schema, "hit"
        try:
            dtd = parse_dtd(dtd_text, root=root)
        except ReproError as error:
            raise ProtocolError("bad-dtd", str(error))
        before = self.registry.stats
        schema = self.registry.get(dtd)
        after = self.registry.stats
        if after.store_hits > before.store_hits:
            disposition = "store"
        elif after.misses > before.misses:
            disposition = "miss"
        else:
            disposition = "hit"
        self._text_index[key] = schema.fingerprint
        while len(self._text_index) > _TEXT_INDEX_SIZE:
            self._text_index.popitem(last=False)
        return schema, disposition

    def _schema_fields(
        self, schema: CompiledSchema, disposition: str
    ) -> dict[str, Any]:
        return {"fingerprint": schema.fingerprint, "registry": disposition}

    # -- ops -----------------------------------------------------------------

    async def _run_check(
        self,
        schema: CompiledSchema,
        doc_text: str,
        algorithm: str,
        timings: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """One verdict's raw fields, off-loop (thread or process pool).

        Brackets the off-loop work with the ``inflight`` gauge (the
        increments run on the event loop, so no lock is needed): the
        stats-visible load signal a ``least-inflight`` routing client
        balances on.  The off-loop wall clock minus the work the worker
        itself timed is the queue-wait phase — measured on this side of
        the boundary so process-pool workers need no shared clock.

        When the verdict cache is enabled, it is consulted here — on the
        event-loop side — so one shared cache fronts both the thread and
        the process-pool execution modes.  A hit skips parsing and
        checking entirely and returns a stamped copy of the memoized
        fields; parse errors are memoized too (they are just as
        deterministic as verdicts).
        """
        cache = self._verdict_cache
        key = None
        if cache is not None:
            mode = (
                f"auto:{self.policy.admission}" if algorithm == "auto" else algorithm
            )
            key = cache.key(schema.fingerprint, doc_text, mode)
            hit = cache.get(key)
            if hit is not None:
                self._m_cache["hit"].inc()
                fields = dict(hit)
                fields["cached"] = True
                return fields
            self._m_cache["miss"].inc()
        self._inflight += 1
        self._g_inflight.set(self._inflight)
        off_loop = Stopwatch()
        try:
            if self._pool is not None:
                fields = await self._pool_round_trip(schema, doc_text, algorithm)
            else:
                fields = await asyncio.to_thread(
                    self._inline_check, schema, doc_text, algorithm
                )
        finally:
            self._inflight -= 1
            self._g_inflight.set(self._inflight)
        if key is not None and cache is not None:
            stored = {k: v for k, v in fields.items() if k != "timings"}
            if cache.put(key, stored):
                self._m_cache["evict"].inc()
        inner = fields.pop("timings", None)
        if inner is not None and inner.get("doc_parse") is not None:
            self._m_parse_seconds.observe(inner["doc_parse"])
        if timings is not None and inner is not None:
            worked = sum(
                inner.get(key) or 0.0
                for key in ("doc_parse", "admission", "decide", "verdict")
            )
            timings["queue"] = max(0.0, off_loop.seconds - worked)
            # DTD resolution and document parsing are one "parse" phase.
            doc_parse = inner.get("doc_parse")
            if doc_parse is not None:
                timings["parse"] = timings.get("parse", 0.0) + doc_parse
            for key in ("admission", "decide", "verdict", "backend"):
                if inner.get(key) is not None:
                    timings[key] = inner[key]
        return fields

    async def _op_check(
        self,
        request: Request,
        schema: CompiledSchema,
        disposition: str,
        timings: dict[str, Any],
    ) -> dict[str, Any]:
        assert request.doc is not None
        algorithm = request.algorithm or self.default_algorithm
        fields = await self._run_check(schema, request.doc, algorithm, timings)
        error = fields.pop("error", None)
        if error is not None:
            raise ProtocolError(*error)
        cached = fields.pop("cached", False)
        if cached:
            # A replayed verdict: no backend ran, so the dispatch and
            # admission tallies stay untouched; the reply still carries
            # the memoized admission outcome.
            admission = fields.pop("admission", None)
            fields.pop("admission_mismatch", None)
        else:
            self._dispatch_counts[fields["algorithm"]] += 1
            self._count_dispatch(fields["algorithm"])
            admission = self._count_admission(fields, schema)
        response: dict[str, Any] = {
            "ok": True,
            "op": "check",
            **fields["verdict"],
            "algorithm": fields["algorithm"],
            "schema": self._schema_fields(schema, disposition),
        }
        if cached:
            response["cached"] = True
        if admission is not None:
            response["admission"] = admission
        if fields.get("reason"):
            response["dispatch_reason"] = fields["reason"]
        if request.coarse:
            response["coarse"] = self._coarse_stamp(schema)
        return response

    def _count_admission(
        self, fields: dict[str, Any], schema: CompiledSchema
    ) -> str | None:
        """Record one check's admission outcome (server-side: pool-worker
        registries are invisible to scrapers) and return it for the reply."""
        admission = fields.pop("admission", None)
        if admission is None:
            return None
        counter = self._m_admission.get(admission)
        if counter is not None:
            counter.inc()
        if fields.pop("admission_mismatch", False):
            self._m_admission_mismatch.inc()
            self.events.emit(
                "admission-mismatch",
                member=self._member_label(),
                fingerprint=schema.fingerprint,
                outcome=admission,
                backend=fields.get("algorithm"),
            )
        return admission

    def _coarse_stamp(self, schema: CompiledSchema) -> str:
        """The base64 admission summary a ``"coarse": true`` reply carries."""
        return base64.b64encode(encode_coarse(schema.coarse)).decode("ascii")

    def _count_dispatch(self, backend: str) -> None:
        counter = self._m_dispatch.get(backend)
        if counter is not None:
            counter.inc()

    def _inline_check(
        self, schema: CompiledSchema, doc_text: str, algorithm: str
    ) -> dict[str, Any]:
        parse_watch = Stopwatch()
        try:
            document = parse_xml(doc_text)
        except ReproError as error:
            return {"error": ("bad-document", str(error))}
        doc_parse = parse_watch.seconds
        if algorithm == "auto":
            dispatcher = self._dispatchers.get(schema.fingerprint)
            if dispatcher is None:
                dispatcher = BackendDispatcher(
                    schema, policy=self.policy, config=self.config
                )
                self._dispatchers[schema.fingerprint] = dispatcher
            return _dispatched_fields(dispatcher, document, doc_parse)
        key = (schema.fingerprint, algorithm)
        checker = self._checkers.get(key)
        if checker is None:
            checker = schema.checker(algorithm, self.config)
            self._checkers[key] = checker
        verdict_watch = Stopwatch()
        verdict = checker.check_document(document)
        return {
            "verdict": protocol.verdict_fields(verdict),
            "algorithm": algorithm,
            "reason": None,
            "timings": {
                "doc_parse": doc_parse,
                "verdict": verdict_watch.seconds,
                "backend": algorithm,
            },
        }

    def _make_pool(self) -> ProcessPoolExecutor:
        store_dir = str(self.store.directory) if self.store is not None else None
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_pool_worker,
            initargs=(store_dir,),
        )

    async def _pool_round_trip(
        self, schema: CompiledSchema, doc_text: str, algorithm: str
    ) -> dict[str, Any]:
        """Run a check on the pool, shipping the artifact only on a miss.

        A broken pool (a worker OOM-killed or SIGKILLed poisons the whole
        :class:`ProcessPoolExecutor`) is rebuilt once per request instead
        of condemning the long-running server to answer ``internal``
        forever.
        """
        loop = asyncio.get_running_loop()
        for attempt in (1, 2):
            pool = self._pool
            assert pool is not None
            blob = (
                None
                if schema.fingerprint in self._shipped
                else pickle.dumps(schema, protocol=pickle.HIGHEST_PROTOCOL)
            )
            try:
                try:
                    fields = await loop.run_in_executor(
                        pool,
                        _pool_check,
                        schema.fingerprint,
                        blob,
                        doc_text,
                        algorithm,
                        self.config,
                        self.policy,
                    )
                except ArtifactMissError:
                    # A different worker picked up the task than the one(s)
                    # seeded earlier; retry once with the artifact attached.
                    fields = await loop.run_in_executor(
                        pool,
                        _pool_check,
                        schema.fingerprint,
                        pickle.dumps(schema, protocol=pickle.HIGHEST_PROTOCOL),
                        doc_text,
                        algorithm,
                        self.config,
                        self.policy,
                    )
            except BrokenExecutor:
                if attempt == 2:
                    raise
                pool.shutdown(wait=False)
                self._shipped.clear()  # fresh workers hold no artifacts
                self._pool = self._make_pool()
                continue
            self._shipped.add(schema.fingerprint)
            if len(self._shipped) > _SHIPPED_HINT_SIZE:
                # The hint only avoids redundant shipping; resetting it is
                # always safe because a wrong "shipped" assumption is
                # healed by the ArtifactMissError retry above.
                self._shipped.clear()
            return fields
        raise AssertionError("unreachable")  # pragma: no cover

    # -- the streaming batch op ----------------------------------------------

    async def _handle_batch(
        self,
        request: Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """One streaming batch: header already decoded, items on *reader*.

        Item replies are written as each verdict lands, correlated by the
        item's ``id`` (its 0-based index when it carries none), and a
        trailer summarizes the batch.  Per-item defects (a bad document, a
        malformed item line) are structured item errors and the batch
        continues; defects that lose the framing — a bad header (the
        client may already have pipelined items this server cannot safely
        reinterpret), an over-limit item line, a mid-batch hangup — end
        the connection after an error reply, the documented disconnect.
        """
        watch = Stopwatch()
        self._batches += 1
        batch_timings: dict[str, Any] = {}
        schema: CompiledSchema | None = None
        disposition = "miss"
        try:
            self._check_epoch(request)
            assert request.dtd is not None  # decode_request guarantees it
            parse_watch = Stopwatch()
            schema, disposition = self._resolve_schema(request.dtd, request.root)
            batch_timings["parse"] = parse_watch.seconds
        except ProtocolError as error:
            self._errors += 1
            self._m_errors.get(error.code, self._m_errors["internal"]).inc()
            writer.write(
                protocol.encode(
                    protocol.error_payload(
                        error.code, error.message, id=request.id,
                        details=error.details,
                    )
                )
            )
            await writer.drain()
            return False
        except Exception as error:  # noqa: BLE001 - a reply beats a disconnect
            self._errors += 1
            self._m_errors["internal"].inc()
            writer.write(
                protocol.encode(
                    protocol.error_payload(
                        "internal",
                        f"{type(error).__name__}: {error}",
                        id=request.id,
                    )
                )
            )
            await writer.drain()
            return False
        algorithm = request.algorithm or self.default_algorithm
        remaining = request.count
        items = 0
        errors = 0
        while remaining is None or remaining > 0:
            line = await self._read_line(reader)
            if line is None:
                return False  # hangup or shutdown mid-batch
            if line is _OVERLONG:
                writer.write(
                    protocol.encode(
                        protocol.error_payload(
                            "bad-request",
                            "batch item line exceeds "
                            f"{protocol.MAX_LINE_BYTES} bytes",
                        )
                    )
                )
                await writer.drain()
                return False  # the stream cannot be re-framed
            if not line.strip():
                if remaining is None:
                    break  # the uncounted batch's blank-line terminator
                continue  # blank keep-alive lines inside a counted batch
            if remaining is not None:
                remaining -= 1
            index = items
            items += 1
            self._requests += 1
            self._batch_items += 1
            self._m_batch_items.inc()
            reply = await self._handle_batch_item(
                line, index, schema, algorithm, request.trace
            )
            if not reply.get("ok"):
                errors += 1
            writer.write(protocol.encode(reply))
            await writer.drain()
        self._count_hot(schema.fingerprint, max(items, 1))
        trailer: dict[str, Any] = {
            "ok": True,
            "op": "check-batch",
            "items": items,
            "errors": errors,
            "schema": self._schema_fields(schema, disposition),
            # The same Stopwatch feeds the trailer stamp and the latency
            # histogram, so the two can never disagree.
            "elapsed_ms": watch.elapsed_ms,
        }
        if request.coarse:
            trailer["coarse"] = self._coarse_stamp(schema)
        self._observe_request("check-batch", watch, batch_timings)
        if request.trace is not None:
            self._m_traced.inc()
            span = self._server_span("check-batch", watch, batch_timings)
            span["items"] = items
            trailer["trace"] = {"id": request.trace, "span": span}
        self._note_slow("check-batch", watch, request.trace, request.id)
        epoch = self._placement.epoch
        if epoch is not None:
            trailer["epoch"] = epoch
            trailer["load"] = self._load_fields()
        if request.id is not None:
            trailer["id"] = request.id
        writer.write(protocol.encode(trailer))
        await writer.drain()
        return True

    async def _handle_batch_item(
        self,
        line: bytes,
        index: int,
        schema: CompiledSchema,
        algorithm: str,
        trace: str | None = None,
    ) -> dict[str, Any]:
        """One item line to one ``check-batch-item`` reply (never raises)."""
        item_id: Any = index
        timings: dict[str, Any] = {}
        try:
            item = protocol.decode_batch_item(line)
            if item.id is not None:
                item_id = item.id
            fields = await self._run_check(schema, item.doc, algorithm, timings)
            error = fields.pop("error", None)
            if error is not None:
                raise ProtocolError(*error)
        except ProtocolError as error:
            self._errors += 1
            self._m_errors.get(error.code, self._m_errors["internal"]).inc()
            reply = protocol.error_payload(
                error.code, error.message, id=item_id, details=error.details
            )
            reply["op"] = "check-batch-item"
            return reply
        except Exception as error:  # noqa: BLE001 - a reply beats a disconnect
            self._errors += 1
            self._m_errors["internal"].inc()
            reply = protocol.error_payload(
                "internal", f"{type(error).__name__}: {error}", id=item_id
            )
            reply["op"] = "check-batch-item"
            return reply
        cached = fields.pop("cached", False)
        if cached:
            admission = fields.pop("admission", None)
            fields.pop("admission_mismatch", None)
        else:
            self._dispatch_counts[fields["algorithm"]] += 1
            self._count_dispatch(fields["algorithm"])
            admission = self._count_admission(fields, schema)
        self._observe_phases(timings)
        reply = {
            "ok": True,
            "op": "check-batch-item",
            "id": item_id,
            **fields["verdict"],
            "algorithm": fields["algorithm"],
        }
        if cached:
            reply["cached"] = True
        if admission is not None:
            reply["admission"] = admission
        if fields.get("reason"):
            reply["dispatch_reason"] = fields["reason"]
        if trace is not None:
            stub: dict[str, Any] = {"id": trace}
            for phase in ("queue", "verdict"):
                seconds = timings.get(phase)
                if seconds is not None:
                    stub[f"{phase}_ms"] = round(seconds * 1000.0, 3)
            reply["trace"] = stub
        return reply

    # -- artifact hand-off ops -----------------------------------------------

    async def _op_put_artifact(
        self, request: Request, timings: dict[str, Any]
    ) -> dict[str, Any]:
        """Seed a compiled artifact shipped by a ring coordinator.

        The payload is the :mod:`repro.service.store` file format (header +
        pickle), base64-encoded; decoding verifies magic, version, and the
        embedded fingerprint against the requested one, so a corrupt or
        mislabeled blob is a structured ``bad-artifact`` error, never a
        poisoned registry entry.  Unpickling, like the rest of the wire
        protocol, assumes a trusted network — see the protocol module's
        trust-model note.  Decode and disk write run off-loop: a
        multi-megabyte artifact must not stall other connections.
        """
        assert request.fingerprint is not None and request.artifact is not None
        fingerprint = request.fingerprint
        artifact = request.artifact

        def decode_and_store() -> str | None:
            try:
                blob = base64.b64decode(artifact.encode("ascii"), validate=True)
            except (binascii.Error, UnicodeEncodeError, ValueError):
                return None
            schema = decode_artifact(blob, fingerprint)
            if schema is None:
                return None
            self.registry.put(schema)
            if self.store is not None:
                try:
                    self.store.save(schema)
                    return "registry+store"
                except OSError:
                    pass  # an unwritable store degrades to memory-only seeding
            return "registry"

        artifact_watch = Stopwatch()
        stored = await asyncio.to_thread(decode_and_store)
        timings["artifact"] = artifact_watch.seconds
        if stored is None:
            raise ProtocolError(
                "bad-artifact",
                "artifact failed decoding or fingerprint verification",
            )
        return {
            "ok": True,
            "op": "put-artifact",
            "fingerprint": fingerprint,
            "stored": stored,
        }

    async def _op_get_artifact(
        self, request: Request, timings: dict[str, Any]
    ) -> dict[str, Any]:
        """Hand the compiled artifact for a fingerprint to a coordinator.

        Pickling (and a possible disk load) runs off-loop, like every
        other heavy path in this server.
        """
        assert request.fingerprint is not None
        fingerprint = request.fingerprint

        def load_and_encode() -> bytes | None:
            schema = self.registry.lookup(fingerprint)
            if schema is None and self.store is not None:
                schema = self.store.load(fingerprint)
                if schema is not None:
                    self.registry.put(schema)
            if schema is None:
                return None
            return encode_artifact(schema)

        artifact_watch = Stopwatch()
        blob = await asyncio.to_thread(load_and_encode)
        timings["artifact"] = artifact_watch.seconds
        if blob is None:
            raise ProtocolError(
                "artifact-miss",
                f"no artifact held for fingerprint {fingerprint!r}",
            )
        return {
            "ok": True,
            "op": "get-artifact",
            "fingerprint": fingerprint,
            "artifact": base64.b64encode(blob).decode("ascii"),
            "bytes": len(blob),
        }

    async def _op_get_coarse(
        self, request: Request, timings: dict[str, Any]
    ) -> dict[str, Any]:
        """Hand the few-hundred-byte admission summary to a routing client.

        The lightweight sibling of ``get-artifact``: a ring client caches
        this per fingerprint to pre-filter batches locally.  A possible
        disk load (and the summary build, for pre-v3 artifacts) runs
        off-loop.
        """
        assert request.fingerprint is not None
        fingerprint = request.fingerprint

        def load_and_encode() -> bytes | None:
            schema = self.registry.lookup(fingerprint)
            if schema is None and self.store is not None:
                schema = self.store.load(fingerprint)
                if schema is not None:
                    self.registry.put(schema)
            if schema is None:
                return None
            return encode_coarse(schema.coarse)

        artifact_watch = Stopwatch()
        blob = await asyncio.to_thread(load_and_encode)
        timings["artifact"] = artifact_watch.seconds
        if blob is None:
            raise ProtocolError(
                "artifact-miss",
                f"no artifact held for fingerprint {fingerprint!r}",
            )
        return {
            "ok": True,
            "op": "get-coarse",
            "fingerprint": fingerprint,
            "coarse": base64.b64encode(blob).decode("ascii"),
            "bytes": len(blob),
        }

    def _op_classify(
        self, schema: CompiledSchema, disposition: str
    ) -> dict[str, Any]:
        # The compiled artifact already carries the analysis; building the
        # report from it is pure formatting, safe on the event loop.
        report = classify_dtd(schema.dtd, analysis=schema.analysis)
        return {
            "ok": True,
            "op": "classify",
            "dtd_class": report.dtd_class.value,
            "element_count": report.element_count,
            "occurrence_count": report.occurrence_count,
            "recursive_elements": list(report.recursive_elements),
            "strong_recursive_elements": list(report.strong_recursive_elements),
            "unusable_elements": list(report.unusable_elements),
            "needs_depth_bound": report.needs_depth_bound,
            "summary": report.summary(),
            "schema": self._schema_fields(schema, disposition),
        }

    async def _op_validate(
        self,
        request: Request,
        schema: CompiledSchema,
        disposition: str,
        timings: dict[str, Any],
    ) -> dict[str, Any]:
        assert request.doc is not None

        def run() -> dict[str, Any]:
            try:
                document = parse_xml(request.doc)  # type: ignore[arg-type]
            except ReproError as error:
                return {"error": ("bad-document", str(error))}
            validator = self._validators.get(schema.fingerprint)
            if validator is None:
                validator = DTDValidator(schema.dtd)
                self._validators[schema.fingerprint] = validator
            verdict_watch = Stopwatch()
            report = validator.validate(document)
            return {
                "valid": report.valid,
                "issues": [str(issue) for issue in report.issues],
                "timings": {"verdict": verdict_watch.seconds},
            }

        self._inflight += 1
        self._g_inflight.set(self._inflight)
        try:
            fields = await asyncio.to_thread(run)
        finally:
            self._inflight -= 1
            self._g_inflight.set(self._inflight)
        inner = fields.pop("timings", None)
        if inner is not None:
            timings["verdict"] = inner["verdict"]
        error = fields.pop("error", None)
        if error is not None:
            raise ProtocolError(*error)
        return {
            "ok": True,
            "op": "validate",
            **fields,
            "schema": self._schema_fields(schema, disposition),
        }

    def _op_health(self, request: Request | None = None) -> dict[str, Any]:
        """The liveness probe: cheap, payload-free, always answerable.

        Carries the ring view so a client (or coordinator) that learns of
        a newer epoch from a reply stamp can fetch the full membership
        with one round trip.  With gossip enabled it is also the gossip
        exchange: any membership table the request piggybacks is merged
        first, and the reply carries this view's own — one round trip
        synchronizes both sides.
        """
        if (
            self._gossip is not None
            and request is not None
            and request.gossip is not None
        ):
            self._gossip.merge_wire(request.gossip)
        uptime = (
            monotonic() - self._started_at if self._started_at is not None else 0.0
        )
        view = self._view_details() or {}
        response: dict[str, Any] = {
            "ok": True,
            "op": "health",
            "status": "ok",
            "uptime_seconds": round(uptime, 3),
            "requests": self._requests,
            "inflight": self._inflight,
            "connections": len(self._conn_tasks),
            "epoch": view.get("epoch"),
            "members": view.get("members"),
            "replica_count": view.get("replica_count"),
            "read_policy": view.get("read_policy"),
        }
        if self._gossip is not None:
            response["gossip"] = self._placement.gossip_delta()
        return response

    async def _op_probe(self, request: Request) -> dict[str, Any]:
        """Indirect-probe relay: can *this* server reach ``target``?

        A gossip agent whose direct probe failed asks other members to
        try on its behalf before raising a suspicion — one flaky link
        must not take a healthy shard out of the ring.  Gossip tables
        ride along both ways, so every relay hop also spreads news.
        """
        target = request.target
        assert target is not None  # decode_request guarantees it
        if self._gossip is not None and request.gossip is not None:
            self._gossip.merge_wire(request.gossip)
        reachable = await asyncio.to_thread(self._reach_target, target)
        response: dict[str, Any] = {
            "ok": True,
            "op": "probe",
            "target": target,
            "reachable": reachable,
        }
        if self._gossip is not None:
            response["gossip"] = self._placement.gossip_delta()
        return response

    def _reach_target(self, target: str) -> bool:
        """One fresh short-timeout ``health`` round trip to *target*."""
        try:
            member = parse_member(target)
        except ValueError:
            return False
        try:
            client = ValidationClient.connect(member, timeout=_PROBE_TIMEOUT)
        except OSError:
            return False
        try:
            return bool(client.health().get("ok"))
        except (OSError, ProtocolError, ServerError):
            return False
        finally:
            try:
                client.close()
            except OSError:
                pass

    def _load_fields(self) -> dict[str, int]:
        """The server-truth load stamp success replies carry.

        ``inflight`` is verdict work currently executing; ``queue_depth``
        is the portion beyond worker capacity — what a new request would
        wait behind.
        """
        capacity = self.workers or (os.cpu_count() or 1)
        return {
            "inflight": self._inflight,
            "queue_depth": max(0, self._inflight - capacity),
        }

    def _op_ring_config(self, request: Request) -> dict[str, Any]:
        """Adopt a published ring view (the coordinator's push path)."""
        assert request.epoch is not None and request.members is not None
        self.set_ring_view(
            request.epoch,
            request.members,
            request.replica_count or 1,
            read_policy=request.read_policy,
        )
        return {"ok": True, "op": "ring-config", "epoch": request.epoch}

    def _op_stats(self) -> dict[str, Any]:
        dispatch = dict(self._dispatch_counts)
        uptime = (
            monotonic() - self._started_at if self._started_at is not None else 0.0
        )
        return {
            "ok": True,
            "op": "stats",
            "server": {
                "uptime_seconds": round(uptime, 3),
                "requests": self._requests,
                "errors": self._errors,
                "batches": self._batches,
                "batch_items": self._batch_items,
                "inflight": self._inflight,
                "connections": len(self._conn_tasks),
                "workers": self.workers,
                "default_algorithm": self.default_algorithm,
                "ring_epoch": self._placement.epoch,
                "hot_limit": self.hot_limit,
                "slow_ms": self.slow_ms,
                "verdict_cache": (
                    self._verdict_cache.stats
                    if self._verdict_cache is not None
                    else None
                ),
            },
            "registry": self.registry.stats.as_dict(),
            "store": self.store.stats.as_dict() if self.store is not None else None,
            "dispatch": dispatch,
            "hot": [
                [fingerprint, count]
                for fingerprint, count in self._hot_counts.most_common(
                    self.hot_limit
                )
            ],
        }

    def _op_metrics(self) -> dict[str, Any]:
        """The metrics scrape: a mergeable snapshot plus exposition text.

        Not epoch-gated — scrapers address a shard directly, not through
        ring routing.  Gauges that mirror live server state are set at
        snapshot time so the scrape never lags the truth.
        """
        self._g_inflight.set(self._inflight)
        self._g_connections.set(len(self._conn_tasks))
        snapshot = self.metrics.snapshot()
        return {
            "ok": True,
            "op": "metrics",
            "member": self._member_label(),
            "metrics": snapshot,
            "prometheus": render_prometheus(snapshot),
        }


class ServerThread:
    """Run a :class:`ValidationServer` on its own event-loop thread.

    The context-manager form the tests, the E11 benchmark, and the CI
    smoke job use::

        with ServerThread(unix_path=str(tmp / "pv.sock"), store=store) as handle:
            with ValidationClient.connect_unix(handle.unix_path) as client:
                client.check(dtd_text, doc_text)

    ``stop()`` (or leaving the ``with`` block) performs the server's
    graceful drain before the thread exits.
    """

    def __init__(
        self,
        server: ValidationServer | None = None,
        *,
        host: str | None = None,
        port: int = 0,
        unix_path: str | None = None,
        **server_kwargs: Any,
    ) -> None:
        if host is None and unix_path is None:
            host = "127.0.0.1"
        self.server = server if server is not None else ValidationServer(**server_kwargs)
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self._ready = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-validation-server",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start(
                host=self._host, port=self._port, unix_path=self._unix_path
            )
        except BaseException as error:  # surface bind errors to the caller
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def stop(self) -> None:
        """Request a graceful stop and wait for the thread to finish."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- endpoints -----------------------------------------------------------

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        return self.server.tcp_address

    @property
    def unix_path(self) -> str | None:
        return self.server.unix_path
