"""Pooled blocking connections to ring members, with liveness state.

:class:`ConnectionPool` is the one place the ring stack keeps sockets:
one cached :class:`~repro.server.client.ValidationClient` per member,
one lock per member (a blocking NDJSON connection serves one request at
a time), and the up/down marks that routing consults.  Both the data
plane (:class:`~repro.server.ring.ShardedClient` and its
:class:`~repro.server.scheduler.CorpusScheduler`) and the control plane
(:class:`~repro.server.coordinator.RingCoordinator`) lease connections
from it, so reconnect/mark-down behavior is defined exactly once.

The pool also remembers every address it has ever been told about,
keyed by label.  Ring membership may shrink (scale-in), but a departed
member can still be reachable and is exactly where hand-off artifacts
come from — placement and reachability are separate facts.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.obs.events import EventLog
from repro.server.client import ValidationClient
from repro.server.placement import Member, member_label

__all__ = ["ConnectionPool"]


class ConnectionPool:
    """One cached connection, one lock, and a liveness mark per member.

    Parameters
    ----------
    timeout:
        Per-connection socket timeout, seconds.
    connect:
        Connection factory, ``(member, timeout) -> ValidationClient``;
        injectable for tests.
    events:
        Optional :class:`~repro.obs.events.EventLog`; liveness
        transitions emit ``member-down`` / ``member-up`` events.

    Usage discipline: hold :meth:`lock` for the member across the whole
    request — acquire the client inside it, run the round trip, release.
    That serializes requests per connection (the NDJSON protocol is one
    request per reply on a plain socket) while distinct members proceed
    concurrently.
    """

    def __init__(
        self,
        timeout: float | None = 30.0,
        connect: Callable[[Member, float | None], ValidationClient] | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.timeout = timeout
        self.events = events if events is not None else EventLog()
        self._connect = connect or (
            lambda member, timeout: ValidationClient.connect(member, timeout=timeout)
        )
        self._lock = threading.Lock()
        self._member_locks: dict[str, threading.Lock] = {}
        self._clients: dict[str, ValidationClient] = {}
        self._addresses: dict[str, Member] = {}
        self._down: set[str] = set()
        self._quarantined: set[str] = set()

    # -- addresses -----------------------------------------------------------

    def remember(self, members: Iterable[Member]) -> None:
        """Record addresses for later lookup by label (idempotent)."""
        with self._lock:
            for member in members:
                self._addresses.setdefault(member_label(member), member)

    def address(self, label: str) -> Member | None:
        """The member address once known under *label*, if any."""
        with self._lock:
            return self._addresses.get(label)

    # -- liveness ------------------------------------------------------------

    @property
    def down(self) -> set[str]:
        """Labels currently marked unreachable (a copy)."""
        with self._lock:
            return set(self._down)

    def is_down(self, member: Member) -> bool:
        with self._lock:
            return member_label(member) in self._down

    def mark_up(self, member: Member) -> None:
        """Forget that *member* was unreachable (it is retried next call).

        A quarantined member (see :meth:`quarantine`) stays down: the
        quarantine is the stronger, sticky verdict of the membership
        layer and only :meth:`lift_quarantine` clears it.
        """
        label = member_label(member)
        with self._lock:
            if label in self._quarantined:
                return
            was_down = label in self._down
            self._down.discard(label)
        if was_down:
            self.events.emit("member-up", member=label)

    def mark_down(
        self, member: Member, failed: ValidationClient | None = None
    ) -> None:
        """Record a failure of *member*, closing the *failed* connection.

        Only the connection that actually failed is evicted: between a
        caller's failure and this call another thread may already have
        reconnected a healthy client under the member lock, and closing
        that one would abort its in-flight work and mark a live shard
        down for nothing.
        """
        label = member_label(member)
        went_down = False
        with self._lock:
            cached = self._clients.get(label)
            if failed is None or cached is failed:
                self._clients.pop(label, None)
                went_down = label not in self._down
                self._down.add(label)
            to_close = failed if failed is not None else cached
        if went_down:
            self.events.emit("member-down", member=label)
        if to_close is not None:
            try:
                to_close.close()
            except OSError:
                pass

    def quarantine(self, member: Member) -> None:
        """Mark *member* down **stickily** (the gossip/membership verdict).

        A plain :meth:`mark_down` is advisory — the next successful
        connect (or any :meth:`mark_up`) clears it.  That is exactly
        wrong for a member the membership layer has declared down: a
        pooled connection that was **mid-request when the verdict
        landed** returns successfully a moment later and would
        resurrect the member, re-routing traffic to a shard the ring
        has already moved on from.  Quarantine closes that race: the
        down mark survives replies and reconnects until
        :meth:`lift_quarantine` (issued when the membership layer sees
        the member alive again) releases it.
        """
        label = member_label(member)
        with self._lock:
            self._quarantined.add(label)
        self.mark_down(member)

    def lift_quarantine(self, member: Member) -> None:
        """Release a :meth:`quarantine` and mark the member up."""
        label = member_label(member)
        with self._lock:
            if label not in self._quarantined:
                return
            self._quarantined.discard(label)
        self.mark_up(member)

    def is_quarantined(self, member: Member) -> bool:
        with self._lock:
            return member_label(member) in self._quarantined

    # -- connections ---------------------------------------------------------

    def lock(self, member: Member) -> threading.Lock:
        """The per-member connection lock (created on first use)."""
        label = member_label(member)
        with self._lock:
            lock = self._member_locks.get(label)
            if lock is None:
                lock = self._member_locks[label] = threading.Lock()
            return lock

    def client(self, member: Member) -> ValidationClient:
        """The live connection for *member*, connecting on first use.

        Caller must hold :meth:`lock` for the member.
        """
        label = member_label(member)
        with self._lock:
            client = self._clients.get(label)
        if client is not None:
            return client
        client = self._connect(member, self.timeout)
        with self._lock:
            self._clients[label] = client
            self._addresses[label] = member
            # A successful connect is only advisory liveness: it clears
            # a plain down mark, never a quarantine (the membership
            # layer's sticky verdict — see :meth:`quarantine`).
            came_back = label in self._down and label not in self._quarantined
            if label not in self._quarantined:
                self._down.discard(label)
        if came_back:
            self.events.emit("member-up", member=label)
        return client

    def discard(self, member: Member, client: ValidationClient) -> None:
        """Evict and close a connection without marking the member down.

        Used after a ``wrong-epoch`` answer: the shard is alive and
        healthy (it just answered), but a rejected batch header closes
        the connection server-side, so the cached client must go.
        **Caller must hold the member's connection lock** — that is what
        guarantees no other thread is mid-request on this client, so
        closing it here cannot abort a healthy peer call (the hazard
        :meth:`mark_down` documents).
        """
        label = member_label(member)
        with self._lock:
            if self._clients.get(label) is client:
                self._clients.pop(label)
        try:
            client.close()
        except OSError:
            pass

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every pooled connection (liveness marks are kept)."""
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except OSError:
                pass

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
