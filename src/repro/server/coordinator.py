"""Live ring membership: health probing, epochs, and hot-artifact prefetch.

:class:`RingCoordinator` is the control plane of a validation ring.  The
data plane (:class:`~repro.server.ring.ShardedClient`) routes requests
and moves artifacts; the coordinator watches the shards themselves:

* **Health probing** — every member is probed with the payload-free
  ``health`` wire op.  A member failing :attr:`down_after` consecutive
  probes is marked down and dropped from the published ring; a member
  answering again is restored.  Probes run on demand
  (:meth:`probe_once`) or on a background thread (:meth:`start`).
* **Epoch publishing** — the published view lives in a
  :class:`~repro.server.placement.PlacementView` (the same placement
  core the client and the server consume).  Every membership change (a
  join, a leave, an up/down transition) adopts the new live member set
  under a bumped, monotonically increasing **epoch** and pushes it —
  epoch, live member labels, replica count, and the advertised read
  policy, if any — to every live shard with the ``ring-config`` op.
  Shards stamp the epoch into replies; clients routing under an older
  epoch get ``wrong-epoch`` plus the new view and re-resolve without
  restarting.  Two racing changes converge because shards and clients
  only ever adopt newer epochs.
* **Hot-artifact prefetch** — before a joining shard is published (and
  therefore before any client routes traffic to it), the coordinator
  aggregates every live shard's most-requested fingerprints (the ``hot``
  list in ``stats``), computes which of them the joiner will own under
  the new ring, and ships the top :attr:`prefetch` of those artifacts to
  the joiner with ``get-artifact``/``put-artifact``.  Scale-out therefore
  causes **zero compiles and zero cold misses** on the new shard's hot
  set: its first request is a registry hit.

The coordinator deliberately publishes only *live* members: a dead shard
must leave placement so reads fail over to its replicas immediately, and
the preference order of the survivors is untouched (the consistent-hash
stability property).

**Observer mode** (``observer=True``) demotes all of this to watching:
with gossip-enabled shards (``serve --gossip on``) membership truth
lives in the shards' own SWIM-style agents, and a coordinator pushing
``ring-config`` views would fight them.  An observer still probes
health every round — but instead of publishing it **adopts** any newer
view a shard's health reply carries, so :meth:`status` keeps serving an
operator dashboard (and :meth:`add_member`'s hot-artifact prefetch
keeps working) while the ring runs coordinator-less.  Killing an
observer changes nothing about membership convergence.
"""

from __future__ import annotations

import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable

from repro.obs.events import EventLog
from repro.obs.metrics import merge_snapshots
from repro.server.client import ServerError, ValidationClient
from repro.server.placement import (
    DEFAULT_VNODES,
    Member,
    PlacementView,
    ShardRing,
    member_label,
)
from repro.server.pool import ConnectionPool
from repro.server.protocol import ProtocolError, READ_POLICIES

__all__ = ["RingCoordinator"]


class RingCoordinator:
    """Watches shard health and publishes epoch-stamped ring views.

    Parameters
    ----------
    members:
        Initial shard addresses.  All are assumed up until a probe says
        otherwise; call :meth:`probe_once` (or :meth:`start`) to verify.
    replica_count:
        Replica-set size published to shards and used for prefetch
        placement.
    read_policy:
        Read policy advertised with every published view (``None`` =
        none advertised; routing clients then default to
        ``primary-first``).
    vnodes:
        Virtual nodes per member for placement computations.
    probe_interval:
        Seconds between background probe rounds (:meth:`start`).
    down_after:
        Consecutive probe failures before a member is marked down.
    prefetch:
        How many of a joiner's hottest owned fingerprints to ship to it
        before publishing the join (0 disables prefetch).
    timeout:
        Per-connection socket timeout for probes and artifact transfers.
    connect:
        Connection factory ``(member, timeout) -> ValidationClient``;
        injectable for tests.
    events:
        Optional :class:`~repro.obs.events.EventLog`; membership
        transitions emit ``member-up`` / ``member-down`` /
        ``member-joined`` / ``member-removed`` and every view push
        emits ``epoch-published``.
    observer:
        ``True`` watches without publishing: health probes adopt newer
        shard-held views (gossip is the membership authority) and no
        ``ring-config`` is ever pushed.
    """

    def __init__(
        self,
        members: Iterable[Member],
        replica_count: int = 1,
        read_policy: str | None = None,
        vnodes: int = DEFAULT_VNODES,
        probe_interval: float = 1.0,
        down_after: int = 2,
        prefetch: int = 8,
        timeout: float | None = 5.0,
        connect: Callable[[Member, float | None], ValidationClient] | None = None,
        events: EventLog | None = None,
        observer: bool = False,
    ) -> None:
        if replica_count < 1:
            raise ValueError("replica_count must be >= 1")
        if down_after < 1:
            raise ValueError("down_after must be >= 1")
        if read_policy is not None and read_policy not in READ_POLICIES:
            raise ValueError(
                f"unknown read policy {read_policy!r}; "
                f"expected one of {', '.join(READ_POLICIES)}"
            )
        self.replica_count = replica_count
        self.read_policy = read_policy
        self.vnodes = vnodes
        self.probe_interval = probe_interval
        self.down_after = down_after
        self.prefetch = prefetch
        self.timeout = timeout
        self.observer = bool(observer)
        self._pool = ConnectionPool(timeout=timeout, connect=connect)
        self._lock = threading.RLock()
        self._members: dict[str, Member] = {
            member_label(member): member for member in members
        }
        if not self._members:
            raise ValueError("a ring coordinator needs at least one member")
        self._pool.remember(self._members.values())
        self._up: set[str] = set(self._members)
        self._failures: Counter[str] = Counter()
        # The published view: the shared placement core, seeded at epoch
        # 1 over every initial member (all assumed up until probed).
        self._view = PlacementView(
            self._members.values(),
            replica_count=replica_count,
            vnodes=vnodes,
            epoch=1,
            read_policy=read_policy,
        )
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._prefetched = 0
        self._prefetched_bytes = 0
        self._publishes = 0
        self.events = events if events is not None else EventLog()
        # Ring-wide counter totals from the last scrape_metrics round,
        # and the change since the round before it.
        self._metric_totals: dict[str, float] = {}
        self._metric_deltas: dict[str, float] = {}

    # -- the view ------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current (latest published) ring epoch."""
        epoch = self._view.epoch
        assert epoch is not None  # the coordinator always stamps a view
        return epoch

    def live_members(self) -> list[Member]:
        """Addresses of the members currently marked up, label-sorted."""
        with self._lock:
            return [self._members[label] for label in sorted(self._up)]

    def ring(self) -> ShardRing:
        """The placement ring over the current live members."""
        return self._view.ring

    def status(self) -> dict[str, Any]:
        """A JSON-ready snapshot for operators (the ``ring-status`` CLI)."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "observer": self.observer,
                "replica_count": self.replica_count,
                "read_policy": self.read_policy,
                "members": sorted(self._members),
                "up": sorted(self._up),
                "down": sorted(set(self._members) - self._up),
                "prefetched_artifacts": self._prefetched,
                "prefetched_bytes": self._prefetched_bytes,
                "publishes": self._publishes,
                "metrics_deltas": dict(self._metric_deltas),
            }

    def _adopt_live(self, epoch: int) -> None:
        """Adopt the current live member set under *epoch* (placement's
        client discipline: only newer epochs win, memo invalidated)."""
        live = self.live_members()
        if live:
            self._view.adopt(
                live, epoch=epoch, replica_count=self.replica_count,
                read_policy=self.read_policy,
            )

    # -- connections ---------------------------------------------------------

    def _request(self, label: str, fn: Callable[[ValidationClient], Any]) -> Any:
        """Run *fn* over the pooled connection for *label*.

        Raises whatever the round trip raises.  Pool hygiene matches
        the failure class: a transport failure marks the member down
        (dropping the dead connection); a garbled reply drops the
        connection (its framing state is unknown) without a down mark;
        a structured :class:`ServerError` — e.g. the expected
        ``wrong-epoch`` during an epoch race — touches nothing, the
        connection is healthy and stays pooled.
        """
        member = self._member(label)
        client: ValidationClient | None = None
        try:
            with self._pool.lock(member):
                client = self._pool.client(member)
                try:
                    return fn(client)
                except ProtocolError:
                    # Still under the member lock: no peer can be
                    # mid-request on this connection while we drop it.
                    self._pool.discard(member, client)
                    raise
        except OSError:
            self._pool.mark_down(member, client)
            raise

    def _member(self, label: str) -> Member:
        with self._lock:
            member = self._members.get(label)
        if member is None:
            member = self._pool.address(label)
        return member if member is not None else label

    # -- probing -------------------------------------------------------------

    def probe_once(self) -> dict[str, dict[str, Any] | None]:
        """Probe every member's ``health`` once; apply up/down transitions.

        Probes run **concurrently** (one thread per member): a
        network-partitioned member whose connect hangs for the full
        socket timeout must not stall the round and delay down-detection
        of everyone else.  Returns each member's health reply (``None``
        for the unreachable).  Any liveness transition bumps the epoch
        and publishes the new view to the live shards.
        """
        with self._lock:
            labels = sorted(self._members)

        def probe(label: str) -> dict[str, Any] | None:
            try:
                return self._request(label, lambda client: client.health())
            except (OSError, ServerError, ProtocolError):
                return None

        if len(labels) == 1:
            replies = {labels[0]: probe(labels[0])}
        else:
            with ThreadPoolExecutor(max_workers=len(labels)) as pool:
                replies = dict(zip(labels, pool.map(probe, labels)))
        changed = False
        came_up: list[str] = []
        went_down: list[str] = []
        with self._lock:
            for label, reply in replies.items():
                if label not in self._members:
                    continue  # removed while the probe was in flight
                if reply is not None:
                    self._failures[label] = 0
                    if label not in self._up:
                        self._up.add(label)
                        came_up.append(label)
                        changed = True
                else:
                    self._failures[label] += 1
                    if (
                        label in self._up
                        and self._failures[label] >= self.down_after
                    ):
                        self._up.discard(label)
                        went_down.append(label)
                        changed = True
        for label in came_up:
            self.events.emit("member-up", member=label)
        for label in went_down:
            self.events.emit(
                "member-down", member=label, failures=self.down_after
            )
        if self.observer:
            # Watch, don't publish: the shards' gossip is the membership
            # authority.  Adopt the newest view any health reply carries
            # so status() tracks the ring's truth.
            for reply in replies.values():
                if isinstance(reply, dict):
                    self._view.adopt_fields(reply)
        elif changed:
            self._bump_and_publish()
        return replies

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.probe_interval):
            try:
                self.probe_once()
            except Exception:  # noqa: BLE001 - the probe loop must survive
                pass

    # -- membership changes --------------------------------------------------

    def add_member(self, member: Member) -> int:
        """Join *member* to the ring; returns the artifacts prefetched.

        The join is published only **after** the prefetch: the joiner
        receives its hottest owned artifacts while the old epoch still
        routes traffic away from it, so its first routed request is a
        warm registry hit, never a compile.
        """
        label = member_label(member)
        with self._lock:
            if label in self._members and label in self._up:
                return 0
            self._members[label] = member
        self._pool.remember([member])
        prefetched = self._prefetch_to(label) if self.prefetch else 0
        with self._lock:
            self._up.add(label)
            self._failures[label] = 0
        self.events.emit("member-joined", member=label, prefetched=prefetched)
        self._bump_and_publish()
        return prefetched

    def remove_member(self, member: Member) -> None:
        """Drop *member* from the ring and publish the shrink."""
        label = member_label(member)
        with self._lock:
            if self._members.pop(label, None) is None:
                return
            self._up.discard(label)
            self._failures.pop(label, None)
        self._pool.mark_down(member)
        self.events.emit("member-removed", member=label)
        self._bump_and_publish()

    def _bump_and_publish(self) -> None:
        if self.observer:
            return  # gossip owns the epoch; the next probe adopts it
        # Read-epoch + adopt must be atomic: two racing membership
        # changes (the probe thread vs. an embedder's add/remove) must
        # never publish the same epoch with different member sets.
        with self._lock:
            self._adopt_live(self.epoch + 1)
        self.publish()

    def publish(self, _leapfrog_retry: bool = True) -> int:
        """Push the current view to every live shard; returns successes.

        Best-effort: a shard that cannot be reached right now learns the
        view from the next probe round's publish, and clients it answers
        meanwhile still converge via the stale shard's older stamp being
        superseded on their next contact with any updated shard.

        An **observer** never publishes (returns 0): membership truth
        lives in the shards' gossip and a push would fight it.
        """
        if self.observer:
            return 0
        epoch = self.epoch
        with self._lock:
            labels = sorted(self._up)
        delivered = 0
        leapfrogged = False
        for label in labels:
            try:
                self._request(
                    label,
                    lambda client: client.ring_config(
                        epoch, labels, self.replica_count,
                        read_policy=self.read_policy,
                    ),
                )
                delivered += 1
            except ServerError as error:
                if error.code != "wrong-epoch":
                    continue  # the shard rejected the push; skip it
                # The shard holds an epoch ours does not supersede (a
                # racing coordinator moved ahead, or tied with a
                # different view).  Adopt its epoch as a floor so the
                # retry below supersedes it everywhere.
                stamped = (error.reply.get("error") or {}).get("epoch")
                if isinstance(stamped, int):
                    with self._lock:
                        if stamped >= self.epoch:
                            self._adopt_live(stamped + 1)
                            leapfrogged = True
            except (OSError, ProtocolError):
                pass  # marked down in the pool by _request
        with self._lock:
            self._publishes += 1
        self.events.emit(
            "epoch-published", epoch=epoch, members=labels,
            delivered=delivered,
        )
        if leapfrogged and _leapfrog_retry:
            # Re-publish once under the superseding epoch so the ring
            # converges now, not at the next membership transition.
            return self.publish(_leapfrog_retry=False)
        return delivered

    # -- metrics scraping ----------------------------------------------------

    def scrape_metrics(self) -> dict[str, Any]:
        """Scrape every live shard's ``metrics`` op and aggregate.

        Returns per-shard snapshots (``None`` for a shard that failed
        the scrape), their :func:`~repro.obs.metrics.merge_snapshots`
        merge, ring-wide counter totals by name (labels collapsed), and
        the change in each total since the previous scrape.  The deltas
        also ride along in :meth:`status` as ``metrics_deltas``, so an
        operator polling ``ring-status`` sees the ring's request rate
        without a separate scrape pipeline.
        """
        with self._lock:
            labels = sorted(self._up)
        shards: dict[str, Any] = {}
        reachable: list[dict[str, Any]] = []
        for label in labels:
            try:
                reply = self._request(label, lambda client: client.metrics())
            except (OSError, ServerError, ProtocolError):
                shards[label] = None
                continue
            snapshot = reply.get("metrics") or {}
            shards[label] = snapshot
            reachable.append(snapshot)
        merged = merge_snapshots(reachable)
        totals: dict[str, float] = {}
        for entry in merged["counters"]:
            totals[entry["name"]] = totals.get(entry["name"], 0.0) + entry["value"]
        with self._lock:
            previous = self._metric_totals
            deltas = {
                name: value - previous.get(name, 0.0)
                for name, value in totals.items()
            }
            self._metric_totals = totals
            self._metric_deltas = deltas
        return {
            "shards": shards,
            "merged": merged,
            "totals": totals,
            "deltas": deltas,
        }

    # -- hot-artifact prefetch -----------------------------------------------

    def _hot_fingerprints(self) -> tuple[Counter[str], dict[str, list[str]]]:
        """Aggregate live shards' hot lists: counts and who-holds-what."""
        counts: Counter[str] = Counter()
        holders: dict[str, list[str]] = {}
        with self._lock:
            labels = sorted(self._up)
        for label in labels:
            try:
                stats = self._request(label, lambda client: client.stats())
            except (OSError, ServerError, ProtocolError):
                continue
            for entry in stats.get("hot") or []:
                if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
                    continue
                fingerprint, count = entry
                if not isinstance(fingerprint, str) or not isinstance(count, int):
                    continue
                counts[fingerprint] += count
                holders.setdefault(fingerprint, []).append(label)
        return counts, holders

    def _prefetch_to(self, joiner_label: str) -> int:
        """Ship the joiner's hottest owned artifacts to it (best-effort)."""
        counts, holders = self._hot_fingerprints()
        if not counts:
            return 0
        with self._lock:
            future_members = [
                self._members[label]
                for label in sorted(self._up | {joiner_label})
            ]
        future_view = PlacementView(
            future_members,
            vnodes=self.vnodes,
            replica_count=self.replica_count,
        )
        owned = [
            fingerprint
            for fingerprint, _count in counts.most_common()
            if joiner_label
            in {member_label(m) for m in future_view.owners(fingerprint)}
        ]
        shipped = 0
        for fingerprint in owned[: self.prefetch]:
            blob: bytes | None = None
            for source in holders.get(fingerprint, []):
                try:
                    blob = self._request(
                        source,
                        lambda client: client.get_artifact(fingerprint),
                    )
                    break
                except (OSError, ServerError, ProtocolError):
                    continue
            if blob is None:
                continue
            try:
                self._request(
                    joiner_label,
                    lambda client: client.put_artifact(fingerprint, blob),
                )
            except (OSError, ServerError, ProtocolError):
                break  # an unreachable joiner cannot be prefetched
            shipped += 1
            with self._lock:
                self._prefetched += 1
                self._prefetched_bytes += len(blob)
        return shipped

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RingCoordinator":
        """Publish the initial view (observers skip the publish) and
        begin background probing."""
        self.publish()
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._probe_loop,
                name="repro-ring-coordinator",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop background probing and close every probe connection."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._pool.close()

    def __enter__(self) -> "RingCoordinator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
