"""Live ring membership: health probing, epochs, and hot-artifact prefetch.

:class:`RingCoordinator` is the control plane of a validation ring.  The
data plane (:class:`~repro.server.ring.ShardedClient`) routes requests
and moves artifacts; the coordinator watches the shards themselves:

* **Health probing** — every member is probed with the payload-free
  ``health`` wire op.  A member failing :attr:`down_after` consecutive
  probes is marked down and dropped from the published ring; a member
  answering again is restored.  Probes run on demand
  (:meth:`probe_once`) or on a background thread (:meth:`start`).
* **Epoch publishing** — every membership change (a join, a leave, an
  up/down transition) bumps a monotonically increasing **epoch** and
  pushes the new view — epoch, live member labels, replica count — to
  every live shard with the ``ring-config`` op.  Shards stamp the epoch
  into replies; clients routing under an older epoch get ``wrong-epoch``
  plus the new view and re-resolve without restarting.  Two racing
  changes converge because shards and clients only ever adopt newer
  epochs.
* **Hot-artifact prefetch** — before a joining shard is published (and
  therefore before any client routes traffic to it), the coordinator
  aggregates every live shard's most-requested fingerprints (the ``hot``
  list in ``stats``), computes which of them the joiner will own under
  the new ring, and ships the top :attr:`prefetch` of those artifacts to
  the joiner with ``get-artifact``/``put-artifact``.  Scale-out therefore
  causes **zero compiles and zero cold misses** on the new shard's hot
  set: its first request is a registry hit.

The coordinator deliberately publishes only *live* members: a dead shard
must leave placement so reads fail over to its replicas immediately, and
the preference order of the survivors is untouched (the consistent-hash
stability property).
"""

from __future__ import annotations

import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable

from repro.server.client import ServerError, ValidationClient
from repro.server.protocol import ProtocolError
from repro.server.ring import (
    DEFAULT_VNODES,
    Member,
    ShardRing,
    member_label,
)

__all__ = ["RingCoordinator"]


class RingCoordinator:
    """Watches shard health and publishes epoch-stamped ring views.

    Parameters
    ----------
    members:
        Initial shard addresses.  All are assumed up until a probe says
        otherwise; call :meth:`probe_once` (or :meth:`start`) to verify.
    replica_count:
        Replica-set size published to shards and used for prefetch
        placement.
    vnodes:
        Virtual nodes per member for placement computations.
    probe_interval:
        Seconds between background probe rounds (:meth:`start`).
    down_after:
        Consecutive probe failures before a member is marked down.
    prefetch:
        How many of a joiner's hottest owned fingerprints to ship to it
        before publishing the join (0 disables prefetch).
    timeout:
        Per-connection socket timeout for probes and artifact transfers.
    connect:
        Connection factory ``(member, timeout) -> ValidationClient``;
        injectable for tests.
    """

    def __init__(
        self,
        members: Iterable[Member],
        replica_count: int = 1,
        vnodes: int = DEFAULT_VNODES,
        probe_interval: float = 1.0,
        down_after: int = 2,
        prefetch: int = 8,
        timeout: float | None = 5.0,
        connect: Callable[[Member, float | None], ValidationClient] | None = None,
    ) -> None:
        if replica_count < 1:
            raise ValueError("replica_count must be >= 1")
        if down_after < 1:
            raise ValueError("down_after must be >= 1")
        self.replica_count = replica_count
        self.vnodes = vnodes
        self.probe_interval = probe_interval
        self.down_after = down_after
        self.prefetch = prefetch
        self.timeout = timeout
        self._connect = connect or (
            lambda member, timeout: ValidationClient.connect(member, timeout=timeout)
        )
        self._lock = threading.RLock()
        self._members: dict[str, Member] = {
            member_label(member): member for member in members
        }
        if not self._members:
            raise ValueError("a ring coordinator needs at least one member")
        self._up: set[str] = set(self._members)
        self._failures: Counter[str] = Counter()
        self._epoch = 1
        self._clients: dict[str, ValidationClient] = {}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._prefetched = 0
        self._prefetched_bytes = 0
        self._publishes = 0

    # -- the view ------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current (latest published) ring epoch."""
        with self._lock:
            return self._epoch

    def live_members(self) -> list[Member]:
        """Addresses of the members currently marked up, label-sorted."""
        with self._lock:
            return [self._members[label] for label in sorted(self._up)]

    def ring(self) -> ShardRing:
        """The placement ring over the current live members."""
        return ShardRing(
            self.live_members(),
            vnodes=self.vnodes,
            replica_count=self.replica_count,
        )

    def status(self) -> dict[str, Any]:
        """A JSON-ready snapshot for operators (the ``ring-status`` CLI)."""
        with self._lock:
            return {
                "epoch": self._epoch,
                "replica_count": self.replica_count,
                "members": sorted(self._members),
                "up": sorted(self._up),
                "down": sorted(set(self._members) - self._up),
                "prefetched_artifacts": self._prefetched,
                "prefetched_bytes": self._prefetched_bytes,
                "publishes": self._publishes,
            }

    # -- connections ---------------------------------------------------------

    def _client(self, label: str) -> ValidationClient:
        with self._lock:
            client = self._clients.get(label)
            if client is not None:
                return client
            member = self._members[label]
        client = self._connect(member, self.timeout)
        extra: ValidationClient | None = None
        with self._lock:
            cached = self._clients.get(label)
            if cached is not None:
                # A concurrent caller (probe thread vs. a membership op)
                # connected first; keep theirs, close ours.
                extra, client = client, cached
            else:
                self._clients[label] = client
        if extra is not None:
            try:
                extra.close()
            except OSError:
                pass
        return client

    def _drop_client(self, label: str) -> None:
        with self._lock:
            client = self._clients.pop(label, None)
        if client is not None:
            try:
                client.close()
            except OSError:
                pass

    # -- probing -------------------------------------------------------------

    def probe_once(self) -> dict[str, dict[str, Any] | None]:
        """Probe every member's ``health`` once; apply up/down transitions.

        Probes run **concurrently** (one thread per member): a
        network-partitioned member whose connect hangs for the full
        socket timeout must not stall the round and delay down-detection
        of everyone else.  Returns each member's health reply (``None``
        for the unreachable).  Any liveness transition bumps the epoch
        and publishes the new view to the live shards.
        """
        with self._lock:
            labels = sorted(self._members)

        def probe(label: str) -> dict[str, Any] | None:
            try:
                return self._client(label).health()
            except (OSError, ServerError, ProtocolError):
                self._drop_client(label)
                return None

        if len(labels) == 1:
            replies = {labels[0]: probe(labels[0])}
        else:
            with ThreadPoolExecutor(max_workers=len(labels)) as pool:
                replies = dict(zip(labels, pool.map(probe, labels)))
        changed = False
        with self._lock:
            for label, reply in replies.items():
                if label not in self._members:
                    continue  # removed while the probe was in flight
                if reply is not None:
                    self._failures[label] = 0
                    if label not in self._up:
                        self._up.add(label)
                        changed = True
                else:
                    self._failures[label] += 1
                    if (
                        label in self._up
                        and self._failures[label] >= self.down_after
                    ):
                        self._up.discard(label)
                        changed = True
        if changed:
            self._bump_and_publish()
        return replies

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.probe_interval):
            try:
                self.probe_once()
            except Exception:  # noqa: BLE001 - the probe loop must survive
                pass

    # -- membership changes --------------------------------------------------

    def add_member(self, member: Member) -> int:
        """Join *member* to the ring; returns the artifacts prefetched.

        The join is published only **after** the prefetch: the joiner
        receives its hottest owned artifacts while the old epoch still
        routes traffic away from it, so its first routed request is a
        warm registry hit, never a compile.
        """
        label = member_label(member)
        with self._lock:
            if label in self._members and label in self._up:
                return 0
            self._members[label] = member
        prefetched = self._prefetch_to(label) if self.prefetch else 0
        with self._lock:
            self._up.add(label)
            self._failures[label] = 0
        self._bump_and_publish()
        return prefetched

    def remove_member(self, member: Member) -> None:
        """Drop *member* from the ring and publish the shrink."""
        label = member_label(member)
        with self._lock:
            if self._members.pop(label, None) is None:
                return
            self._up.discard(label)
            self._failures.pop(label, None)
        self._drop_client(label)
        self._bump_and_publish()

    def _bump_and_publish(self) -> None:
        with self._lock:
            self._epoch += 1
        self.publish()

    def publish(self, _leapfrog_retry: bool = True) -> int:
        """Push the current view to every live shard; returns successes.

        Best-effort: a shard that cannot be reached right now learns the
        view from the next probe round's publish, and clients it answers
        meanwhile still converge via the stale shard's older stamp being
        superseded on their next contact with any updated shard.
        """
        with self._lock:
            epoch = self._epoch
            labels = sorted(self._up)
        delivered = 0
        leapfrogged = False
        for label in labels:
            try:
                self._client(label).ring_config(
                    epoch, labels, self.replica_count
                )
                delivered += 1
            except ServerError as error:
                if error.code != "wrong-epoch":
                    continue  # the shard rejected the push; skip it
                # The shard holds an epoch ours does not supersede (a
                # racing coordinator moved ahead, or tied with a
                # different view).  Adopt its epoch as a floor so the
                # retry below supersedes it everywhere.
                stamped = (error.reply.get("error") or {}).get("epoch")
                if isinstance(stamped, int):
                    with self._lock:
                        if stamped >= self._epoch:
                            self._epoch = stamped + 1
                            leapfrogged = True
            except (OSError, ProtocolError):
                self._drop_client(label)
        with self._lock:
            self._publishes += 1
        if leapfrogged and _leapfrog_retry:
            # Re-publish once under the superseding epoch so the ring
            # converges now, not at the next membership transition.
            return self.publish(_leapfrog_retry=False)
        return delivered

    # -- hot-artifact prefetch -----------------------------------------------

    def _hot_fingerprints(self) -> tuple[Counter[str], dict[str, list[str]]]:
        """Aggregate live shards' hot lists: counts and who-holds-what."""
        counts: Counter[str] = Counter()
        holders: dict[str, list[str]] = {}
        with self._lock:
            labels = sorted(self._up)
        for label in labels:
            try:
                stats = self._client(label).stats()
            except (OSError, ServerError, ProtocolError):
                self._drop_client(label)
                continue
            for entry in stats.get("hot") or []:
                if not (isinstance(entry, (list, tuple)) and len(entry) == 2):
                    continue
                fingerprint, count = entry
                if not isinstance(fingerprint, str) or not isinstance(count, int):
                    continue
                counts[fingerprint] += count
                holders.setdefault(fingerprint, []).append(label)
        return counts, holders

    def _prefetch_to(self, joiner_label: str) -> int:
        """Ship the joiner's hottest owned artifacts to it (best-effort)."""
        counts, holders = self._hot_fingerprints()
        if not counts:
            return 0
        with self._lock:
            future_members = [
                self._members[label]
                for label in sorted(self._up | {joiner_label})
            ]
        future_ring = ShardRing(
            future_members,
            vnodes=self.vnodes,
            replica_count=self.replica_count,
        )
        owned = [
            fingerprint
            for fingerprint, _count in counts.most_common()
            if joiner_label
            in {member_label(m) for m in future_ring.owners(fingerprint)}
        ]
        shipped = 0
        for fingerprint in owned[: self.prefetch]:
            blob: bytes | None = None
            for source in holders.get(fingerprint, []):
                try:
                    blob = self._client(source).get_artifact(fingerprint)
                    break
                except (OSError, ServerError, ProtocolError):
                    self._drop_client(source)
            if blob is None:
                continue
            try:
                self._client(joiner_label).put_artifact(fingerprint, blob)
            except (OSError, ServerError, ProtocolError):
                self._drop_client(joiner_label)
                break  # an unreachable joiner cannot be prefetched
            shipped += 1
            with self._lock:
                self._prefetched += 1
                self._prefetched_bytes += len(blob)
        return shipped

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RingCoordinator":
        """Publish the initial view and begin background probing."""
        self.publish()
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._probe_loop,
                name="repro-ring-coordinator",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop background probing and close every probe connection."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except OSError:
                pass

    def __enter__(self) -> "RingCoordinator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
