"""Read routing over a placement view: which replica serves this read?

:class:`Router` turns a :class:`~repro.server.placement.PlacementView`
and a :class:`~repro.server.pool.ConnectionPool` into an ordered
candidate list per fingerprint, under a pluggable **read policy**
(:data:`~repro.server.protocol.READ_POLICIES`):

* ``primary-first`` — every read goes to the fingerprint's primary
  replica; the rest of the replica set is failover only.  This is the
  compatibility default: placement is byte-for-byte what the ring
  served before read balancing existed.
* ``round-robin`` — reads rotate across the live replica set,
  per-fingerprint, so a hot schema's load spreads evenly over its R
  owners.
* ``least-inflight`` — reads go to the live replica carrying the least
  load.  The load signal is **server-reported truth** when available:
  servers holding a ring view stamp ``{"inflight", "queue_depth"}``
  into every success reply and ``health`` answer, and the client feeds
  each stamp back via :meth:`Router.note_load`.  A fresh report scores
  a member as *its* reported load plus whatever this client has sent it
  since the report — so two clients balancing over the same replicas
  see each other's traffic, which client-local counters never could.
  Client-local in-flight counters remain the cold-start fallback (no
  report yet, a stale report, or ``prefer_reported`` switched off).

Whatever the policy, candidates beyond the live replica set are the
live remainder of the preference list (availability beats read
balance when a whole replica set is dark) and, with everything down,
the full preference list — an error beats silently giving up, and a
shard may have come back.

A router constructed with ``policy=None`` follows the policy the ring
advertises in its published view (``ring-config``'s ``read_policy``
field), falling back to ``primary-first`` when none is advertised; an
explicit policy always wins over the advertised one.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from time import monotonic
from typing import Any

from repro.server.placement import Member, PlacementView, member_label
from repro.server.pool import ConnectionPool
from repro.server.protocol import READ_POLICIES

__all__ = [
    "DEFAULT_READ_POLICY",
    "READ_POLICIES",
    "REPORT_TTL",
    "Router",
]

#: The compatibility default: reads pin to the primary replica.
DEFAULT_READ_POLICY = "primary-first"

#: Bound on the per-fingerprint round-robin rotation table.
_ROTATION_SIZE = 1024

#: How long a server-reported load stamp stays authoritative, seconds.
#: Past this, ``least-inflight`` falls back to client-local counters —
#: a stale report (the member went quiet) must not pin routing forever.
REPORT_TTL = 5.0


class Router:
    """Orders read candidates per fingerprint under a read policy.

    The router owns the client-side load accounting the policies (and
    :meth:`stats snapshots <inflight>`) read: a per-member in-flight
    gauge (:meth:`begin` / :meth:`finish` bracket every routed call)
    and the per-member served-request counter.
    """

    def __init__(
        self,
        placement: PlacementView,
        pool: ConnectionPool,
        policy: str | None = None,
        metrics: Any | None = None,
    ) -> None:
        if policy is not None and policy not in READ_POLICIES:
            raise ValueError(
                f"unknown read policy {policy!r}; "
                f"expected one of {', '.join(READ_POLICIES)}"
            )
        self._placement = placement
        self._pool = pool
        self._explicit_policy = policy
        self._lock = threading.Lock()
        self._inflight: Counter[str] = Counter()
        self._requests: Counter[str] = Counter()
        self._rotation: OrderedDict[str, int] = OrderedDict()
        #: Whether ``least-inflight`` trusts fresh server-reported load
        #: stamps over client-local counters.  Public so benchmarks can
        #: build a client-counter-only control group.
        self.prefer_reported: bool = True
        # label -> (reported load, local inflight at report, timestamp):
        # the server's own inflight+queue_depth, plus the baseline that
        # lets the score add only the traffic sent *since* the report.
        self._reported: dict[str, tuple[int, int, float]] = {}
        # Optional observability mirror: served reads per member, as
        # repro_ring_reads_total{member=...} in a MetricsRegistry.
        # Handles are cached per label so the per-call cost is one dict
        # probe (see repro.obs.metrics).
        self._metrics = metrics
        self._read_counters: dict[str, Any] = {}

    # -- policy --------------------------------------------------------------

    @property
    def policy(self) -> str:
        """The effective policy: explicit, else ring-advertised, else
        :data:`DEFAULT_READ_POLICY`."""
        if self._explicit_policy is not None:
            return self._explicit_policy
        advertised = self._placement.read_policy
        if advertised in READ_POLICIES:
            return advertised
        return DEFAULT_READ_POLICY

    @policy.setter
    def policy(self, policy: str | None) -> None:
        if policy is not None and policy not in READ_POLICIES:
            raise ValueError(
                f"unknown read policy {policy!r}; "
                f"expected one of {', '.join(READ_POLICIES)}"
            )
        self._explicit_policy = policy

    # -- candidate ordering --------------------------------------------------

    def candidates(self, fingerprint: str) -> list[Member]:
        """Failover order for *fingerprint* under the current policy.

        Live replicas first (ordered by the policy), then the live
        remainder of the preference list, then — with everything down —
        the full list.
        """
        preference = self._placement.preference(fingerprint)
        replica_count = self._placement.replica_count
        owners = preference[:replica_count]
        rest = preference[replica_count:]
        down = self._pool.down
        live_owners = [m for m in owners if member_label(m) not in down]
        live_rest = [m for m in rest if member_label(m) not in down]
        ordered = self._order(fingerprint, live_owners) + live_rest
        return ordered or preference

    def owners(self, fingerprint: str) -> list[Member]:
        """The live replica set of *fingerprint*, policy-ordered (every
        replica when all are down) — what a corpus scheduler spreads
        windows over."""
        owners = self._placement.owners(fingerprint)
        down = self._pool.down
        live = [m for m in owners if member_label(m) not in down]
        return self._order(fingerprint, live) or owners

    def _order(self, fingerprint: str, live: list[Member]) -> list[Member]:
        if len(live) <= 1:
            return live
        policy = self.policy
        if policy == "round-robin":
            with self._lock:
                turn = self._rotation.get(fingerprint, 0)
                self._rotation[fingerprint] = turn + 1
                self._rotation.move_to_end(fingerprint)
                while len(self._rotation) > _ROTATION_SIZE:
                    self._rotation.popitem(last=False)
            start = turn % len(live)
            return live[start:] + live[:start]
        if policy == "least-inflight":
            now = monotonic()
            with self._lock:
                load = {
                    member_label(m): self._score_locked(member_label(m), now)
                    for m in live
                }
            # Stable: preference order breaks ties, so an idle ring
            # degrades to primary-first placement.
            return sorted(live, key=lambda m: load[member_label(m)])
        return live  # primary-first

    def _score_locked(self, label: str, now: float) -> int:
        """The least-inflight load score of *label* (lock held).

        A fresh server report wins: the member's own reported load plus
        the calls this client has put in flight since the report (its
        local in-flight delta over the report-time baseline).  Without
        a fresh report — cold start, stale stamp, or
        :attr:`prefer_reported` off — the client-local counter stands.
        """
        local = self._inflight[label]
        if self.prefer_reported:
            report = self._reported.get(label)
            if report is not None:
                reported, baseline, stamped_at = report
                if now - stamped_at <= REPORT_TTL:
                    return reported + max(0, local - baseline)
        return local

    # -- load accounting -----------------------------------------------------

    def note_load(self, member: Member, inflight: int, queue_depth: int = 0,
                  ) -> None:
        """Record a server-reported load stamp for *member*.

        Called by the ring client whenever a success reply or ``health``
        answer carries a ``"load"`` object.  The current client-local
        in-flight count is kept as the report's baseline, so scoring can
        add only the traffic sent after the server measured itself.
        """
        label = member_label(member)
        reported = max(0, int(inflight)) + max(0, int(queue_depth))
        with self._lock:
            self._reported[label] = (
                reported, self._inflight[label], monotonic()
            )

    def reported_load(self, member: Member) -> int | None:
        """The last fresh server-reported load of *member*, if any."""
        label = member_label(member)
        now = monotonic()
        with self._lock:
            report = self._reported.get(label)
            if report is None or now - report[2] > REPORT_TTL:
                return None
            return report[0]

    def begin(self, member: Member) -> None:
        """Note a routed call entering flight on *member*."""
        with self._lock:
            self._inflight[member_label(member)] += 1

    def finish(self, member: Member, served: bool = False) -> None:
        """Note a routed call leaving flight (*served* = it succeeded)."""
        label = member_label(member)
        with self._lock:
            self._inflight[label] -= 1
            if self._inflight[label] <= 0:
                del self._inflight[label]
            if served:
                self._requests[label] += 1
                if self._metrics is not None:
                    counter = self._read_counters.get(label)
                    if counter is None:
                        counter = self._read_counters[label] = (
                            self._metrics.counter(
                                "repro_ring_reads_total", member=label
                            )
                        )
                    counter.inc()

    @property
    def inflight(self) -> dict[str, int]:
        """Requests currently in flight per member label (a snapshot)."""
        with self._lock:
            return {label: n for label, n in self._inflight.items() if n > 0}

    @property
    def requests_by_member(self) -> dict[str, int]:
        """Requests served per member label (a snapshot)."""
        with self._lock:
            return dict(self._requests)

    def stats(self) -> dict[str, Any]:
        """JSON-ready routing counters."""
        with self._lock:
            return {
                "policy": self.policy,
                "inflight": {
                    label: n for label, n in self._inflight.items() if n > 0
                },
                "requests_by_member": dict(self._requests),
            }
