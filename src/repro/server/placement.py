"""The placement core: one source of truth for who owns which schema.

Every component of the ring stack answers the same two questions — *which
members form the ring right now* (an epoch-stamped view) and *which of
them own a given schema fingerprint* (consistent hashing).  This module
is the single home for both:

* :class:`ShardRing` — a consistent-hash ring with virtual nodes and
  replica sets.  Pure placement arithmetic: no sockets, no epochs.
* :class:`PlacementView` — an epoch-stamped, thread-safe view over a
  ring: the members, the replica count, an optional advertised read
  policy, and a bounded fingerprint→owners memo.  It carries **both**
  reconciliation disciplines of the wire protocol:

  - the *client* discipline (:meth:`PlacementView.adopt`): newer epochs
    win, older ones are ignored — how a routing client converges after a
    ``wrong-epoch`` reply or a newer reply stamp;
  - the *server* discipline (:meth:`PlacementView.publish` /
    :meth:`PlacementView.check_request_epoch`): a push that does not
    supersede the held view raises ``wrong-epoch`` carrying the current
    view, and so does a request routed under an older epoch;
  - the *gossip* discipline (:meth:`PlacementView.merge_delta` /
    :meth:`PlacementView.gossip_delta` and the local transitions
    :meth:`PlacementView.suspect` / :meth:`PlacementView.confirm_down` /
    :meth:`PlacementView.note_alive`): a SWIM-style membership table
    (status + incarnation per member, suspect → down → removed
    lifecycle, refutation by incarnation bump) whose merges commute, so
    coordinator-less rings converge to one view with no publisher.

:class:`~repro.server.ring.ShardedClient`,
:class:`~repro.server.coordinator.RingCoordinator`, and
:class:`~repro.server.server.ValidationServer` all consume this module
instead of keeping their own copies of view/epoch handling.

Every adoption path — a ``wrong-epoch`` reply, a ``health``-chased
newer stamp, an explicit refresh, a direct :attr:`PlacementView.ring`
mutation — invalidates the owners memo, so a stale memo can never route
a fingerprint to a member that already left the ring.

Addresses are either a Unix socket path (``str``) or a ``(host, port)``
tuple; :func:`parse_member` turns CLI-style ``host:port`` strings into
the latter.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from collections import OrderedDict
from typing import Any, Iterable

from repro.server.protocol import ProtocolError

__all__ = [
    "DEFAULT_VNODES",
    "KEEP_POLICY",
    "MEMBER_STATUSES",
    "Member",
    "PlacementView",
    "ShardRing",
    "member_label",
    "parse_member",
]

#: A shard address: a Unix socket path or a ``(host, port)`` pair.
Member = Any

#: Virtual nodes per member.  More vnodes smooth the key distribution
#: (the std-dev of shard load shrinks like 1/sqrt(vnodes)) at the cost
#: of a longer sorted point array; 64 keeps a 3-shard ring within a few
#: percent of even.
DEFAULT_VNODES = 64

#: Bound on a view's fingerprint -> owners memo.
_OWNERS_MEMO_SIZE = 4096

#: Sentinel for :meth:`PlacementView.adopt`'s *read_policy*: keep the
#: policy already held (callers that carry no policy information at
#: all, like a plain membership refresh).  ``None``, by contrast, means
#: "this view advertises no policy" and clears a previously learned one.
KEEP_POLICY: Any = object()

#: The member lifecycle of the gossip membership table, in supersession
#: rank order: at equal incarnation, a later status wins a merge
#: (``down`` > ``suspect`` > ``alive``); a higher incarnation always
#: wins regardless of status — which is how a falsely suspected member
#: refutes (it re-asserts ``alive`` under a bumped incarnation).
MEMBER_STATUSES = ("alive", "suspect", "down")

_STATUS_RANK = {status: rank for rank, status in enumerate(MEMBER_STATUSES)}


def _supersedes(proposed: tuple[str, int], current: tuple[str, int]) -> bool:
    """SWIM-style entry precedence: incarnation first, then status rank."""
    status, incarnation = proposed
    current_status, current_incarnation = current
    if incarnation != current_incarnation:
        return incarnation > current_incarnation
    return _STATUS_RANK[status] > _STATUS_RANK[current_status]


def member_label(member: Member) -> str:
    """The canonical display / hashing label of a member address."""
    if isinstance(member, tuple):
        host, port = member
        return f"{host}:{port}"
    return str(member)


def parse_member(text: str) -> Member:
    """A CLI address string to a member: ``host:port`` or a socket path.

    Anything containing a path separator (or with no colon at all) is a
    Unix socket path; otherwise the last colon splits host from port.  A
    colon-bearing, separator-free string whose port is not a number is a
    typo, not a path — it raises :class:`ValueError` so the CLI can
    report bad usage instead of failing to connect to a phantom socket.
    """
    if "/" in text or ":" not in text:
        return text
    host, _, port_text = text.rpartition(":")
    try:
        return (host, int(port_text))
    except ValueError:
        raise ValueError(f"bad ring address {text!r}: port {port_text!r} "
                         "is not a number")


def _point(token: str) -> int:
    """A stable 64-bit position on the ring for *token*."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """A consistent-hash ring with virtual nodes and replica sets.

    Keys (schema fingerprints, but any string works) map to the first
    member point at or clockwise after the key's own point.  Each member
    contributes *vnodes* points, so load spreads evenly and a membership
    change only remaps keys adjacent to the changed member's points.

    With ``replica_count=R`` each key maps to a **replica set** — the
    first R *distinct* members walking clockwise from the key
    (:meth:`owners`); the first is the primary.  Because the walk order
    is a pure function of the hash space, the set (and the failover
    order beyond it, :meth:`preference`) is deterministic and stays
    stable for surviving members under any membership change.  A ring
    smaller than R simply yields every member.

    Every membership mutation bumps :attr:`version`, the signal a
    :class:`PlacementView` uses to invalidate its owners memo.
    """

    def __init__(
        self,
        members: Iterable[Member] = (),
        vnodes: int = DEFAULT_VNODES,
        replica_count: int = 1,
    ) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        if replica_count < 1:
            raise ValueError("replica_count must be >= 1")
        self.vnodes = vnodes
        self.replica_count = replica_count
        self.version = 0
        self._members: dict[str, Member] = {}
        # Parallel arrays sorted by point: bisect runs on the ints alone.
        self._points: list[int] = []
        self._labels: list[str] = []
        for member in members:
            self.add(member)

    # -- membership ----------------------------------------------------------

    @property
    def members(self) -> list[Member]:
        """Current members, in label order (stable for display)."""
        return [self._members[label] for label in sorted(self._members)]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: object) -> bool:
        return member_label(member) in self._members

    def add(self, member: Member) -> None:
        """Add *member* (idempotent)."""
        label = member_label(member)
        if label in self._members:
            return
        self._members[label] = member
        pairs = list(zip(self._points, self._labels))
        pairs.extend(
            (_point(f"{label}#{vnode}"), label)
            for vnode in range(self.vnodes)
        )
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._labels = [entry for _, entry in pairs]
        self.version += 1

    def remove(self, member: Member) -> None:
        """Remove *member* (a no-op when absent)."""
        label = member_label(member)
        if label not in self._members:
            return
        kept = [
            (point, entry)
            for point, entry in zip(self._points, self._labels)
            if entry != label
        ]
        # Rebuild the point arrays before dropping the member record:
        # a concurrent reader walking the old arrays (a routed call
        # racing a scale event) then still resolves every label it
        # meets — it sees the pre-removal view, never a KeyError.
        self._points = [point for point, _ in kept]
        self._labels = [entry for _, entry in kept]
        self._members.pop(label, None)
        self.version += 1

    # -- placement -----------------------------------------------------------

    def owner(self, key: str) -> Member:
        """The primary owner of *key* (raises when the ring is empty)."""
        return self.preference(key)[0]

    def owners(self, key: str) -> list[Member]:
        """The replica set of *key*: its first ``replica_count`` distinct
        members in preference order (all members when the ring is
        smaller than the replica count).  ``owners(key)[0]`` is the
        primary; ``put-artifact`` fan-out targets the whole list."""
        return self.preference(key)[: self.replica_count]

    def preference(self, key: str) -> list[Member]:
        """Every member, in deterministic failover order for *key*.

        The first entry is the owner; the rest are the distinct members
        encountered walking the ring clockwise from the key's point —
        the order a coordinator tries when shards are unreachable, and
        the order that keeps failover placement as stable as primary
        placement under membership change.
        """
        # Snapshot the parallel arrays and the member map once: a racing
        # in-place mutation swaps in fresh lists, so this walk sees one
        # consistent (possibly just-superseded) view, and a label from a
        # stale array that no longer resolves is simply skipped.
        points, labels, members = self._points, self._labels, self._members
        if not points:
            raise ValueError("ring has no members")
        start = bisect_right(points, _point(key))
        seen: list[Member] = []
        seen_labels: set[str] = set()
        count = len(points)
        total = len(members)
        for offset in range(count):
            label = labels[(start + offset) % count]
            if label not in seen_labels:
                member = members.get(label)
                if member is None:
                    continue  # racing removal: the label left the map
                seen_labels.add(label)
                seen.append(member)
                if len(seen_labels) == total:
                    break
        if not seen:
            raise ValueError("ring has no members")
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ", ".join(sorted(self._members))
        return (
            f"ShardRing([{labels}], vnodes={self.vnodes}, "
            f"replica_count={self.replica_count})"
        )


class PlacementView:
    """An epoch-stamped, thread-safe placement view over a ring.

    Parameters
    ----------
    members:
        The view's members (addresses or labels).  May be empty for a
        server that has not been published a view yet.
    replica_count:
        Replica-set size R of the view.
    vnodes:
        Virtual nodes per member for the underlying ring.
    epoch:
        The view's epoch, or ``None`` for "no view published/learned
        yet" (requests are then never epoch-gated).
    read_policy:
        The read policy advertised with the view (``None`` = none
        advertised); a routing client with no explicit policy follows
        this.

    The view memoizes the full :meth:`preference` walk per fingerprint
    (bounded LRU); :meth:`owners` is a slice of it, so both the hot
    routing lookup and the replica-set lookup hit the memo.  The memo
    is invalidated on **every** adoption (:meth:`adopt`,
    :meth:`adopt_fields`, :meth:`publish`) and on any direct mutation
    of :attr:`ring` (tracked through :attr:`ShardRing.version`), so
    stale placement can never be served after a membership change,
    regardless of which path delivered it.
    """

    def __init__(
        self,
        members: Iterable[Member] = (),
        replica_count: int = 1,
        vnodes: int = DEFAULT_VNODES,
        epoch: int | None = None,
        read_policy: str | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._ring = ShardRing(members, vnodes=vnodes,
                               replica_count=replica_count)
        self._published: list[Member] = list(self._ring.members)
        self._epoch = epoch
        self._read_policy = read_policy
        self._refreshes = 0
        self._memo: OrderedDict[str, tuple[Member, ...]] = OrderedDict()
        self._memo_version = self._ring.version
        # The gossip membership table: label -> (status, incarnation).
        # ``alive`` and ``suspect`` members are in the ring; ``down``
        # members are out of it but stay in the table so the news keeps
        # spreading until they are purged (removed).
        self._membership: dict[str, tuple[str, int]] = {
            member_label(m): ("alive", 0) for m in self._ring.members
        }

    # -- the view ------------------------------------------------------------

    @property
    def ring(self) -> ShardRing:
        """The current placement ring.  Mutating it directly (tests and
        embedders do) is safe: the owners memo keys on the ring's
        version and drops itself on the next lookup."""
        with self._lock:
            return self._ring

    @property
    def epoch(self) -> int | None:
        with self._lock:
            return self._epoch

    @property
    def replica_count(self) -> int:
        return self.ring.replica_count

    @property
    def vnodes(self) -> int:
        return self.ring.vnodes

    @property
    def members(self) -> list[Member]:
        """The view's members as adopted/published (label-sorted)."""
        return self.ring.members

    @property
    def read_policy(self) -> str | None:
        with self._lock:
            return self._read_policy

    @property
    def refreshes(self) -> int:
        """How many epoch-stamped adoptions this view has performed."""
        with self._lock:
            return self._refreshes

    def __len__(self) -> int:
        return len(self.ring)

    # -- placement lookups ---------------------------------------------------

    def owners(self, key: str) -> list[Member]:
        """The replica set of *key* under the current view (memoized)."""
        preference = self.preference(key)
        return preference[: self.ring.replica_count]

    def preference(self, key: str) -> list[Member]:
        """Every member in deterministic failover order for *key*
        (memoized — this is the hot per-request lookup, and
        :meth:`owners` is its prefix)."""
        with self._lock:
            ring = self._ring
            if ring.version != self._memo_version:
                # The ring was mutated in place (scale events drive
                # add/remove directly): every cached walk is suspect.
                self._memo.clear()
                self._memo_version = ring.version
            cached = self._memo.get(key)
            if cached is not None:
                self._memo.move_to_end(key)
                return list(cached)
        preference = ring.preference(key)
        with self._lock:
            if self._ring is ring and ring.version == self._memo_version:
                self._memo[key] = tuple(preference)
                while len(self._memo) > _OWNERS_MEMO_SIZE:
                    self._memo.popitem(last=False)
        return preference

    def primary(self, key: str) -> Member:
        """The primary owner of *key*."""
        return self.ring.owner(key)

    # -- client-side reconciliation ------------------------------------------

    def adopt(
        self,
        members: Iterable[Member],
        epoch: int | None = None,
        replica_count: int | None = None,
        read_policy: str | None = KEEP_POLICY,
    ) -> bool:
        """Adopt a view (newer epochs win; older ones are ignored).

        An *epoch* older than the one already held returns ``False``
        untouched — two racing membership changes converge on the
        newest.  An empty member list is ignored too: an empty view
        routes nothing.  Adoption rebuilds the ring and **always**
        clears the owners memo.

        *read_policy* semantics: :data:`KEEP_POLICY` (the default)
        keeps whatever policy is already held — for callers that carry
        no policy information, like a plain membership refresh; a
        string adopts that policy; ``None`` clears the held one (the
        adopted view advertises no policy).
        """
        with self._lock:
            if (
                epoch is not None
                and self._epoch is not None
                and epoch < self._epoch
            ):
                return False
            new_ring = ShardRing(
                members,
                vnodes=self._ring.vnodes,
                replica_count=(
                    replica_count
                    if replica_count is not None
                    else self._ring.replica_count
                ),
            )
            if not len(new_ring):
                return False
            self._ring = new_ring
            self._published = list(new_ring.members)
            self._memo.clear()
            self._memo_version = new_ring.version
            self._reseed_membership_locked(new_ring.members)
            if epoch is not None:
                self._epoch = epoch
                self._refreshes += 1
            if read_policy is not KEEP_POLICY:
                self._read_policy = read_policy
            return True

    def adopt_fields(self, fields: dict[str, Any]) -> bool:
        """Adopt from a wire view: a ``wrong-epoch`` error object or a
        ``health`` reply.  Malformed fields are ignored (``False``).

        A wire view always names its advertised read policy when it has
        one, so an absent/invalid ``read_policy`` field means the ring
        advertises none — a previously learned policy is cleared, not
        kept (a ring reverted to default must take its clients along).
        """
        epoch = fields.get("epoch")
        members = fields.get("members")
        if not isinstance(epoch, int) or not isinstance(members, list):
            return False
        try:
            parsed = [parse_member(str(m)) for m in members if m]
        except ValueError:
            return False
        if not parsed:
            return False
        replica_count = fields.get("replica_count")
        read_policy = fields.get("read_policy")
        return self.adopt(
            parsed,
            epoch=epoch,
            replica_count=(
                replica_count if isinstance(replica_count, int) else None
            ),
            read_policy=(
                read_policy if isinstance(read_policy, str) else None
            ),
        )

    # -- server-side reconciliation ------------------------------------------

    def publish(
        self,
        epoch: int,
        members: list[str],
        replica_count: int = 1,
        read_policy: str | None = None,
    ) -> None:
        """Adopt a pushed view under the server discipline.

        Raises :class:`~repro.server.protocol.ProtocolError` with code
        ``wrong-epoch`` when *epoch* is older than the view already
        held, **or** equal to it with different contents — two
        publishers that raced to the same epoch with different
        membership must not silently diverge; the rejected one adopts a
        higher epoch and republishes, so the ring converges on one
        view.  Re-pushing the identical view is idempotent.
        """
        with self._lock:
            proposed = (epoch, list(members), replica_count, read_policy)
            if self._epoch is not None:
                current = (
                    self._epoch,
                    list(self._published),
                    self._ring.replica_count,
                    self._read_policy,
                )
                if epoch < self._epoch or (
                    epoch == self._epoch and proposed != current
                ):
                    raise ProtocolError(
                        "wrong-epoch",
                        f"ring-config epoch {epoch} does not supersede "
                        "the current view",
                        details=self._details_locked(),
                    )
            new_ring = ShardRing(
                members, vnodes=self._ring.vnodes, replica_count=replica_count
            )
            self._ring = new_ring
            self._published = list(members)
            self._memo.clear()
            self._memo_version = new_ring.version
            self._reseed_membership_locked(members)
            self._epoch = epoch
            self._read_policy = read_policy
            self._refreshes += 1

    def check_request_epoch(self, epoch: int | None) -> None:
        """Reject a request routed under an epoch older than this view.

        A request carrying no epoch (or arriving before any view was
        published) is always served — epochs tighten routing, they do
        not gate plain clients out.
        """
        with self._lock:
            current = self._epoch
            if current is None or epoch is None or epoch >= current:
                return
            details = self._details_locked()
        raise ProtocolError(
            "wrong-epoch",
            f"request epoch {epoch} is older than ring epoch {current}",
            details=details,
        )

    # -- gossip membership ----------------------------------------------------
    #
    # The SWIM-ish membership table underlying coordinator-less rings.
    # Each member is (status, incarnation); entries merge under
    # :func:`_supersedes` (higher incarnation wins, then later
    # lifecycle status), so concurrent deltas applied in any order
    # converge to the same table on every shard.  Epoch discipline:
    # merging a delta only ever adopts the *maximum* of the held and
    # carried epochs, while **local** detections (a down confirmation, a
    # join, a purge — anything that changes the live set first-hand)
    # bump to held+1, so the shard that witnessed a change mints the new
    # epoch exactly once and everyone else converges to it via merges.

    def _reseed_membership_locked(self, members: Iterable[Member]) -> None:
        """Reset the table to *members*, all alive, keeping known
        incarnations (a refuted member must not regress to 0)."""
        self._membership = {
            label: ("alive", self._membership.get(label, ("alive", 0))[1])
            for label in (member_label(m) for m in members)
        }

    def _live_labels_locked(self) -> list[str]:
        return sorted(
            label
            for label, (status, _inc) in self._membership.items()
            if status != "down"
        )

    def _rebuild_from_membership_locked(self, bump: bool) -> None:
        live = self._live_labels_locked()
        new_ring = ShardRing(
            (parse_member(label) for label in live),
            vnodes=self._ring.vnodes,
            replica_count=self._ring.replica_count,
        )
        self._ring = new_ring
        self._published = list(new_ring.members)
        self._memo.clear()
        self._memo_version = new_ring.version
        if bump:
            self._epoch = (self._epoch or 0) + 1
            self._refreshes += 1

    def membership(self) -> dict[str, tuple[str, int]]:
        """A snapshot of the table: label -> (status, incarnation)."""
        with self._lock:
            return dict(self._membership)

    def member_status(self, member: Member) -> tuple[str, int] | None:
        """The (status, incarnation) of *member*, or ``None`` if unknown."""
        with self._lock:
            return self._membership.get(member_label(member))

    def gossip_delta(self) -> dict[str, Any]:
        """The full table as a wire gossip payload (piggybacked on
        ``health``/``probe`` traffic).  Full-state gossip: at ring sizes
        where a coordinator was ever plausible, the whole table is a few
        hundred bytes and true anti-entropy beats delta bookkeeping."""
        with self._lock:
            return {
                "epoch": self._epoch,
                "members": [
                    {"member": label, "status": status, "incarnation": inc}
                    for label, (status, inc) in sorted(
                        self._membership.items()
                    )
                ],
            }

    def merge_delta(
        self,
        entries: Iterable[dict[str, Any]] | None,
        epoch: int | None = None,
    ) -> list[str]:
        """Merge a gossiped table; returns the labels whose entry changed.

        Malformed entries are skipped.  Stale entries (superseded by
        what the table already holds) are ignored, so merges commute and
        a wandering old delta can never resurrect a refuted suspicion.
        The carried *epoch* is adopted when it is newer than the held
        one; when the merge changes the **live set** under an epoch
        that does *not* supersede the held view (a joiner announcing
        itself at epoch 1 into an older, higher-epoch ring), this view
        mints held+1 itself — a membership change must always surface
        as a new epoch so reply stamps pull clients to the new view.
        """
        changed: list[str] = []
        with self._lock:
            live_before = self._live_labels_locked()
            for entry in entries or []:
                if not isinstance(entry, dict):
                    continue
                label = entry.get("member")
                status = entry.get("status")
                incarnation = entry.get("incarnation")
                if (
                    not isinstance(label, str)
                    or not label
                    or status not in MEMBER_STATUSES
                    or not isinstance(incarnation, int)
                    or incarnation < 0
                ):
                    continue
                try:
                    parse_member(label)
                except ValueError:
                    continue
                proposed = (status, incarnation)
                current = self._membership.get(label)
                if current is not None and not _supersedes(proposed, current):
                    continue
                self._membership[label] = proposed
                changed.append(label)
            carried_newer = isinstance(epoch, int) and (
                self._epoch is None or epoch > self._epoch
            )
            if carried_newer:
                self._epoch = epoch
                self._refreshes += 1
            if changed and self._live_labels_locked() != live_before:
                self._rebuild_from_membership_locked(bump=not carried_newer)
        return changed

    def suspect(self, member: Member) -> bool:
        """Locally suspect *member* (alive -> suspect at the same
        incarnation).  Suspects stay in the ring — routing still tries
        them until the suspicion is confirmed — so no epoch is minted."""
        label = member_label(member)
        with self._lock:
            current = self._membership.get(label)
            if current is None or current[0] != "alive":
                return False
            self._membership[label] = ("suspect", current[1])
        return True

    def confirm_down(self, member: Member) -> bool:
        """Confirm *member* down (suspect/alive -> down at the same
        incarnation); drops it from the ring and mints a new epoch."""
        label = member_label(member)
        with self._lock:
            current = self._membership.get(label)
            if current is None or current[0] == "down":
                return False
            self._membership[label] = ("down", current[1])
            self._rebuild_from_membership_locked(bump=True)
        return True

    def note_alive(self, member: Member) -> bool:
        """Assert *member* alive, first-hand.

        A suspected or down member is refuted under a bumped
        incarnation, so the assertion supersedes the suspicion wherever
        it has already gossiped.  An unknown member joins (alive,
        incarnation 0) and mints a new epoch, as does a down member
        coming back; a suspect one merely clears (it never left the
        ring).  Returns ``True`` when the entry changed.
        """
        label = member_label(member)
        with self._lock:
            current = self._membership.get(label)
            if current is None:
                self._membership[label] = ("alive", 0)
                self._rebuild_from_membership_locked(bump=True)
                return True
            status, incarnation = current
            if status == "alive":
                return False
            self._membership[label] = ("alive", incarnation + 1)
            if status == "down":
                self._rebuild_from_membership_locked(bump=True)
        return True

    def remove_member(self, member: Member) -> bool:
        """Purge *member* from the table outright (the end of the
        suspect -> down -> removed lifecycle, or an operator's scale-in).
        Mints a new epoch when the member was still in the ring."""
        label = member_label(member)
        with self._lock:
            current = self._membership.pop(label, None)
            if current is None:
                return False
            if current[0] != "down":
                self._rebuild_from_membership_locked(bump=True)
        return True

    # -- wire shapes ---------------------------------------------------------

    def _details_locked(self) -> dict[str, Any] | None:
        if self._epoch is None:
            return None
        details: dict[str, Any] = {
            "epoch": self._epoch,
            "members": [member_label(m) for m in self._published],
            "replica_count": self._ring.replica_count,
        }
        if self._read_policy is not None:
            details["read_policy"] = self._read_policy
        return details

    def details(self) -> dict[str, Any] | None:
        """The view as wire fields (``wrong-epoch`` error-object /
        ``health`` reply shape), or ``None`` before any epoch is held."""
        with self._lock:
            return self._details_locked()

    def as_tuple(self) -> tuple[int, list[str], int] | None:
        """The legacy ``(epoch, member labels, replica_count)`` shape."""
        with self._lock:
            if self._epoch is None:
                return None
            return (
                self._epoch,
                [member_label(m) for m in self._published],
                self._ring.replica_count,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            labels = ", ".join(
                member_label(m) for m in self._published
            )
            return (
                f"PlacementView(epoch={self._epoch}, [{labels}], "
                f"replica_count={self._ring.replica_count})"
            )
