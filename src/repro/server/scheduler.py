"""Replica-aware corpus scheduling: spread one schema over its owners.

The potential-validity checks of a corpus are embarrassingly parallel
per document, and with ``replica_count=R`` every schema's compiled
artifact lives on R shards — yet the pre-scheduler ring pinned a whole
schema's corpus to its primary owner, leaving R-1 warm replicas idle.
:class:`CorpusScheduler` exploits that freedom:

* Under ``primary-first`` (the compatibility default) it reproduces the
  classic placement **byte-for-byte**: batches grouped by primary
  owner, each owner's batches run sequentially over its one connection,
  distinct owners in parallel — exactly what
  :meth:`~repro.server.ring.ShardedClient.check_corpus` always did.
* Under ``round-robin`` / ``least-inflight`` it splits each schema's
  document list into fixed-size **windows** and lets every live owner
  of that schema pull windows from a shared queue.  Work-stealing gives
  straggler hand-off for free: a fast replica keeps pulling while a
  slow one holds only its in-flight window, and a replica that **dies
  mid-corpus** has its window re-queued onto the survivors — zero
  failed checks, zero recompiles (the artifact was fanned out at
  compile time).

Compile-once is preserved by a **seed window**: the first window of
each schema goes through the client's normal routed path, which
performs the one honest compile (or hand-off) and fans the artifact out
to the whole replica set *before* the remaining windows land on the
other owners — so balanced reads add zero compiles ring-wide.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any

from repro.server.placement import member_label
from repro.server.protocol import READ_POLICIES

__all__ = ["DEFAULT_WINDOW", "CorpusScheduler"]

#: Documents per scheduling window.  Small enough that a skewed corpus
#: yields several windows per schema (the unit of spreading and of
#: re-queue on replica death), large enough that the per-window batch
#: round trip stays amortized.
DEFAULT_WINDOW = 16


def _routed_batch(client: Any) -> Any:
    """The client's single-stream batch primitive.

    :meth:`ShardedClient.check_batch` delegates *to* this scheduler for
    balanced policies, so the scheduler must call the underlying
    single-stream :meth:`~repro.server.ring.ShardedClient.routed_batch`
    — never back into ``check_batch``.  Fakes and older clients without
    ``routed_batch`` fall back to ``check_batch`` unchanged.
    """
    return getattr(client, "routed_batch", client.check_batch)


def _failure_entry(error: Exception) -> tuple[None, dict[str, Any]]:
    """The structured per-batch failure shape of ``check_corpus``."""
    code = getattr(error, "code", None)
    if code is None:
        code = (
            "unreachable"
            if isinstance(error, (ConnectionError, OSError))
            else "internal"
        )
    return (
        None,
        {"ok": False, "error": {"code": code, "message": str(error)}},
    )


class CorpusScheduler:
    """Schedules a multi-schema corpus over a ring of replicated shards.

    Parameters
    ----------
    client:
        The :class:`~repro.server.ring.ShardedClient` to drive.  The
        scheduler uses its fingerprint memo, its single-stream
        ``routed_batch`` (seed windows and last-resort failover) and its
        ``batch_on_member`` (direct window placement), so every
        artifact-movement and epoch rule stays in one place.
    policy:
        Read policy for this corpus; ``None`` follows the client's
        router policy.
    window:
        Documents per scheduling window (balanced policies only).
    """

    def __init__(
        self,
        client: Any,
        policy: str | None = None,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if policy is not None and policy not in READ_POLICIES:
            raise ValueError(
                f"unknown read policy {policy!r}; "
                f"expected one of {', '.join(READ_POLICIES)}"
            )
        self._client = client
        self._policy = policy
        self.window = max(1, window)

    # -- entry point ---------------------------------------------------------

    def run(
        self,
        batches: list[tuple],
        algorithm: str | None = None,
        root: str | None = None,
    ) -> list[tuple[list[dict[str, Any]] | None, dict[str, Any]]]:
        """Check every batch; results come back in *batches* order.

        Each batch is ``(dtd, docs)`` or ``(dtd, docs, root)``.  A batch
        that failed outright does not abort the rest: its entry is
        ``(None, {"ok": False, "error": ...})``, exactly like the
        routed corpus path always surfaced per-batch failures.
        """
        normalized: list[tuple[str, list[str], str | None]] = [
            (entry[0], entry[1], entry[2] if len(entry) > 2 else root)
            for entry in batches
        ]
        # Fingerprint everything upfront (memoized): an unparseable DTD
        # raises ``bad-dtd`` here, identically under every policy, before
        # any shard sees a byte.
        fingerprints = [
            self._client.fingerprint(dtd, batch_root)
            for dtd, _docs, batch_root in normalized
        ]
        policy = self._policy or self._client.read_policy
        if policy == "primary-first":
            return self._run_primary_first(normalized, fingerprints, algorithm)
        return self._run_balanced(normalized, fingerprints, algorithm)

    # -- the compatibility path ----------------------------------------------

    def _run_primary_first(
        self,
        normalized: list[tuple[str, list[str], str | None]],
        fingerprints: list[str],
        algorithm: str | None,
    ) -> list[tuple[list[dict[str, Any]] | None, dict[str, Any]]]:
        """Pin each schema to its primary: the classic corpus placement.

        Batches are grouped by owning shard and each shard's groups run
        sequentially over its one connection while distinct shards run
        concurrently (one thread per shard).
        """
        client = self._client
        by_member: dict[str, list[int]] = {}
        for index, fingerprint in enumerate(fingerprints):
            label = member_label(client.placement.primary(fingerprint))
            by_member.setdefault(label, []).append(index)
        results: list[Any] = [None] * len(normalized)

        def run(indexes: list[int]) -> None:
            for index in indexes:
                dtd, docs, batch_root = normalized[index]
                try:
                    results[index] = _routed_batch(client)(
                        dtd, docs, algorithm=algorithm, root=batch_root
                    )
                except Exception as error:  # noqa: BLE001 - surfaced in place
                    results[index] = _failure_entry(error)

        threads = [
            threading.Thread(target=run, args=(indexes,), daemon=True)
            for indexes in by_member.values()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results

    # -- the balanced path ---------------------------------------------------

    def _run_balanced(
        self,
        normalized: list[tuple[str, list[str], str | None]],
        fingerprints: list[str],
        algorithm: str | None,
    ) -> list[tuple[list[dict[str, Any]] | None, dict[str, Any]]]:
        results: list[Any] = [None] * len(normalized)
        # Concurrency is bounded by ring size, not corpus size: one
        # batch in flight per member keeps every shard busy, and a
        # thousand-schema corpus must not spawn a thousand threads
        # (each batch already adds up to R window workers of its own).
        concurrency = max(1, min(
            len(normalized), len(self._client.placement.members)
        ))
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            futures = [
                pool.submit(
                    self._run_batch,
                    index,
                    normalized[index],
                    fingerprints[index],
                    algorithm,
                    results,
                )
                for index in range(len(normalized))
            ]
        for index, future in enumerate(futures):
            try:
                future.result()
            except Exception as error:  # noqa: BLE001 - surfaced in place
                results[index] = _failure_entry(error)
        return results

    def _run_batch(
        self,
        index: int,
        batch: tuple[str, list[str], str | None],
        fingerprint: str,
        algorithm: str | None,
        results: list[Any],
    ) -> None:
        client = self._client
        dtd, docs, root = batch
        started = perf_counter()
        # Seed window through the routed path: the one honest compile
        # (or hand-off) happens here, and the client fans the artifact
        # out to the whole replica set before any other owner sees a
        # window — balanced reads must add zero compiles.
        seed_count = min(self.window, len(docs))
        try:
            seed_replies, seed_trailer = _routed_batch(client)(
                dtd, docs[:seed_count], algorithm=algorithm, root=root
            )
        except Exception as error:  # noqa: BLE001 - surfaced in place
            results[index] = _failure_entry(error)
            return
        replies: list[dict[str, Any] | None] = [None] * len(docs)
        replies[:seed_count] = seed_replies
        trailers: list[dict[str, Any]] = [seed_trailer]
        windows: deque[tuple[int, list[str]]] = deque(
            (offset, docs[offset : offset + self.window])
            for offset in range(seed_count, len(docs), self.window)
        )
        if windows:
            error = self._spread_windows(
                fingerprint, dtd, root, algorithm, windows, replies, trailers
            )
            if error is not None:
                results[index] = _failure_entry(error)
                return
        results[index] = (
            replies,
            self._merge_trailers(len(docs), trailers, started),
        )

    def _spread_windows(
        self,
        fingerprint: str,
        dtd: str,
        root: str | None,
        algorithm: str | None,
        windows: deque[tuple[int, list[str]]],
        replies: list[dict[str, Any] | None],
        trailers: list[dict[str, Any]],
    ) -> Exception | None:
        """Drain *windows* over every live owner; ``None`` on success.

        Work-stealing workers, one per live owner: each pulls the next
        window, runs it on its own shard, and repeats.  A worker whose
        shard dies re-queues its window for the survivors and exits; a
        non-transport server rejection aborts the batch (retrying it
        elsewhere would loop forever).  Windows left over after every
        owner died fall back to the client's routed path, which fails
        over beyond the replica set.
        """
        client = self._client
        lock = threading.Lock()
        rejection: list[Exception] = []
        # Telemetry is optional: the scheduler drives any client with
        # the routed-batch surface, including test fakes without the
        # observability attributes.
        telemetry = getattr(client, "telemetry", None)
        events = getattr(client, "events", None)
        requeues = (
            telemetry.counter("repro_ring_requeues_total")
            if telemetry is not None else None
        )
        steals = (
            telemetry.counter("repro_ring_steals_total")
            if telemetry is not None else None
        )
        placement = getattr(client, "placement", None)
        primary_label = (
            member_label(placement.primary(fingerprint))
            if placement is not None else None
        )

        def worker(member: Any) -> None:
            label = member_label(member)
            while True:
                with lock:
                    if rejection or not windows:
                        return
                    offset, window_docs = windows.popleft()
                try:
                    window_replies, trailer = client.batch_on_member(
                        member,
                        dtd,
                        window_docs,
                        algorithm=algorithm,
                        root=root,
                        fingerprint=fingerprint,
                    )
                except (ConnectionError, OSError):
                    # The shard died mid-corpus: hand the window back to
                    # the survivors (zero failed checks) and retire this
                    # worker — batch_on_member already marked it down.
                    with lock:
                        windows.appendleft((offset, window_docs))
                    if requeues is not None:
                        requeues.inc()
                    if events is not None:
                        events.emit(
                            "window-requeued",
                            member=label,
                            offset=offset,
                            docs=len(window_docs),
                        )
                    return
                except Exception as error:  # noqa: BLE001 - surfaced in place
                    # A non-transport rejection (a ServerError, a garbled
                    # reply): retrying it elsewhere would loop forever,
                    # so it aborts the batch — never silently drops the
                    # window.
                    with lock:
                        rejection.append(error)
                    return
                if steals is not None and primary_label is not None:
                    if label != primary_label:
                        steals.inc()
                with lock:
                    replies[offset : offset + len(window_replies)] = (
                        window_replies
                    )
                    trailers.append(trailer)

        owners = client.router.owners(fingerprint)
        workers = [
            threading.Thread(target=worker, args=(member,), daemon=True)
            for member in owners[: max(1, min(len(owners), len(windows)))]
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        if rejection:
            return rejection[0]
        # Every owner died with windows still queued: the routed path
        # fails over down the full preference list (or raises the
        # structured unreachable error for the failure entry).
        while windows:
            offset, window_docs = windows.popleft()
            try:
                window_replies, trailer = _routed_batch(client)(
                    dtd, window_docs, algorithm=algorithm, root=root
                )
            except Exception as error:  # noqa: BLE001 - surfaced in place
                return error
            replies[offset : offset + len(window_replies)] = window_replies
            trailers.append(trailer)
        return None

    def _merge_trailers(
        self, items: int, trailers: list[dict[str, Any]], started: float
    ) -> dict[str, Any]:
        """One corpus-level trailer from the per-window server trailers.

        Keeps the shape routed callers rely on (``items`` / ``errors`` /
        ``schema`` / ``elapsed_ms``) and adds ``windows`` so operators
        can see the spread.  ``registry`` reports ``"miss"`` if any
        window compiled (at most the seed window can), else the seed's
        disposition.  ``elapsed_ms`` is the batch's **wall clock** —
        windows run concurrently on R shards, so summing their server
        times would overstate it by up to R×; the summed server-side
        time rides along as ``server_ms``.
        """
        errors = sum(trailer.get("errors", 0) for trailer in trailers)
        schema = dict(trailers[0].get("schema") or {})
        if any(
            (trailer.get("schema") or {}).get("registry") == "miss"
            for trailer in trailers
        ):
            schema["registry"] = "miss"
        merged: dict[str, Any] = {
            "ok": True,
            "op": "check-batch",
            "items": items,
            "errors": errors,
            "schema": schema,
            "elapsed_ms": round((perf_counter() - started) * 1000.0, 3),
            "server_ms": round(
                sum(trailer.get("elapsed_ms", 0.0) for trailer in trailers), 3
            ),
            "windows": len(trailers),
        }
        epochs = [t["epoch"] for t in trailers if isinstance(t.get("epoch"), int)]
        if epochs:
            merged["epoch"] = max(epochs)
        return merged
