"""XML substrate: a lightweight DOM, parser, serializer and the paper's operators.

Built from scratch (no stdlib XML machinery) so the reproduction controls
exactly the behaviours the paper relies on:

* :mod:`repro.xmlmodel.tree` — mutable element/text tree with the
  structural edit operations of the editorial process (wrap a contiguous
  child range in a new element, unwrap an element, text edits),
* :mod:`repro.xmlmodel.lexer` / :mod:`repro.xmlmodel.parser` —
  well-formedness parsing (the paper's "XML string"),
* :mod:`repro.xmlmodel.serialize` — canonical text output,
* :mod:`repro.xmlmodel.delta` — the ``delta_T`` and ``Delta_T`` operators of
  Sections 3.1 and 4.
"""

from repro.xmlmodel.tree import XmlDocument, XmlElement, XmlText
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serialize import to_xml
from repro.xmlmodel.delta import (
    SIGMA,
    content_symbols,
    delta_symbols,
    delta_tokens,
)

__all__ = [
    "XmlDocument",
    "XmlElement",
    "XmlText",
    "parse_xml",
    "to_xml",
    "SIGMA",
    "content_symbols",
    "delta_symbols",
    "delta_tokens",
]
